"""Legacy setup shim so `pip install -e .` works without network access
(the offline environment lacks the `wheel` package needed for PEP 517
editable installs)."""

from setuptools import setup

setup()
