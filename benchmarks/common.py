"""Shared infrastructure for the benchmark suite.

Every table/figure bench builds on the same prepared designs, timing
helpers and the multi-core CPU model.

Host-substitution note (DESIGN.md §2): the paper's CPU baseline machine
has 40 cores / 80 threads; this environment exposes a single core, so CPU
worker counts beyond the physical cores are *modeled*: the per-lane
simulation time is measured for real on a sample of lanes, then the batch
time for W workers is ``lanes * t_lane / min(W, modeled_cores) * (1 +
imbalance)``, matching the embarrassingly parallel fork model of §2.3
("fork multiple Verilator processes and run independent stimulus in
parallel" — no cross-process communication).  RTLflow numbers are always
measured, never modeled.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import RTLFlow
from repro.baselines.essent import EssentSim
from repro.baselines.scalargen import generate_scalar_model
from repro.baselines.verilator import VerilatorSim
from repro.core.simulator import BatchSimulator
from repro.designs import DesignBundle, get_design
from repro.gpu.device import SimulatedDevice
from repro.pipeline.scheduler import PipelineSimulator
from repro.resilience import atomic_write_json, atomic_write_text
from repro.stimulus.batch import StimulusBatch, TextStimulusBatch

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

# Scale presets: (stimulus counts, cycle counts) per experiment family.
# "quick" keeps `pytest benchmarks/ --benchmark-only` in CI territory;
# "default" is the harness default; "paper" stretches toward the paper's
# axes (hours on this host — use deliberately).
SCALES = {
    "quick": {"stim": [16, 64], "cycles": [50], "mcmc_iters": 6},
    "default": {"stim": [32, 128, 512], "cycles": [100, 400], "mcmc_iters": 20},
    "paper": {"stim": [256, 1024, 4096], "cycles": [1000, 10000], "mcmc_iters": 150},
}

# Fork-model parameters for the modeled multi-core CPU host.
FORK_STARTUP_S = 0.05  # per-worker process spawn + compile amortization
PARALLEL_IMBALANCE = 0.05  # straggler overhead of static lane chunking

# Device projection factor (DESIGN.md §2): our "GPU" kernels run on one
# CPU core, so absolute device-side times are projected by the bandwidth
# ratio of the paper's device to this host's single core.  RTL simulation
# kernels are memory-bound integer code; an RTX A6000 sustains ~768 GB/s
# of DRAM bandwidth versus ~15 GB/s for a single desktop core, so the
# projection is 768/15 ≈ 50x.  This is calibrated from hardware specs,
# NOT from the paper's reported speedups (no circularity).  Experiments
# always report the raw host-measured time alongside the projection.
DEVICE_COMPUTE_SCALE = 50.0


@dataclass
class PreparedDesign:
    name: str
    bundle: DesignBundle
    flow: RTLFlow
    memories: Dict[str, List[int]] = field(default_factory=dict)

    @property
    def graph(self):
        return self.flow.graph


_CACHE: Dict[Tuple, PreparedDesign] = {}


def load_design(name: str, **params) -> PreparedDesign:
    """Prepare (and cache) one benchmark design."""
    key = (name, tuple(sorted(params.items())))
    if key in _CACHE:
        return _CACHE[key]
    bundle = get_design(name, **params)
    flow = RTLFlow.from_source(bundle.source, bundle.top)
    memories: Dict[str, List[int]] = {}

    class _Collector:
        def load_memory(self, mem_name, values, lane=None):
            memories[mem_name] = list(int(v) for v in np.asarray(values).ravel())

    bundle.preload(_Collector())
    prep = PreparedDesign(name=name, bundle=bundle, flow=flow, memories=memories)
    _CACHE[key] = prep
    return prep


# ---------------------------------------------------------------------------
# RTLflow timing (always measured)
# ---------------------------------------------------------------------------


def make_batch_sim(
    prep: PreparedDesign,
    n: int,
    executor: str = "graph",
    use_mcmc: bool = False,
    device: Optional[SimulatedDevice] = None,
) -> BatchSimulator:
    model = prep.flow.compile(use_mcmc=use_mcmc)
    sim = BatchSimulator(model, n, executor=executor, device=device)
    for mem, vals in prep.memories.items():
        sim.load_memory(mem, vals)
    return sim


def time_rtlflow(
    prep: PreparedDesign,
    n: int,
    cycles: int,
    executor: str = "graph",
    use_mcmc: bool = False,
    seed: int = 1,
    device: Optional[SimulatedDevice] = None,
) -> Tuple[float, Dict[str, np.ndarray]]:
    """Wall seconds for one full RTLflow batch run (plus outputs)."""
    sim = make_batch_sim(prep, n, executor=executor, use_mcmc=use_mcmc, device=device)
    stim = prep.bundle.make_stimulus(n, cycles, seed)
    t0 = time.perf_counter()
    outs = sim.run(stim)
    return time.perf_counter() - t0, outs


def time_rtlflow_projected(
    prep: PreparedDesign,
    n: int,
    cycles: int,
    executor: str = "graph",
    use_mcmc: bool = False,
    seed: int = 1,
    compute_scale: float = DEVICE_COMPUTE_SCALE,
) -> Tuple[float, float, Dict[str, np.ndarray]]:
    """(host_wall_seconds, projected_device_seconds, outputs).

    The projection replaces the kernel busy time (measured on this host's
    single core) with ``busy / compute_scale`` and adds the modeled CUDA
    launch overheads — the simulated-A6000 elapsed time of DESIGN.md §2.
    Host-side work (everything that is not kernel execution) stays at its
    measured cost.
    """
    device = SimulatedDevice()
    wall, outs = time_rtlflow(
        prep, n, cycles, executor=executor, use_mcmc=use_mcmc, seed=seed,
        device=device,
    )
    busy = device.stats.busy_seconds
    projected = (
        max(0.0, wall - busy)
        + busy / compute_scale
        + device.stats.overhead_seconds
    )
    return wall, projected, outs


def time_rtlflow_pipeline(
    prep: PreparedDesign,
    n: int,
    cycles: int,
    groups: int = 4,
    cpu_workers: int = 4,
    pipeline: bool = True,
    seed: int = 1,
    text_inputs: bool = True,
):
    """Virtual-time pipeline run; returns the PipelineSimulator report."""
    model = prep.flow.compile()
    pipe = PipelineSimulator(
        model, n, groups=groups, cpu_workers=cpu_workers, pipeline=pipeline
    )
    for mem, vals in prep.memories.items():
        pipe.load_memory(mem, vals)
    stim = prep.bundle.make_stimulus(n, cycles, seed)
    src = TextStimulusBatch(stim.to_texts()) if text_inputs else stim
    outs = pipe.run_virtual(src, cycles=cycles)
    return pipe.report, outs


# ---------------------------------------------------------------------------
# CPU baselines: measured per-lane, modeled across workers
# ---------------------------------------------------------------------------


_SPEC_CACHE: Dict[str, object] = {}


def _scalar_spec_ns(prep: PreparedDesign):
    """Generated scalar source compiled once per design (like one forked
    Verilator/ESSENT process compiling once and simulating many lanes)."""
    key = id(prep)
    if key not in _SPEC_CACHE:
        spec = generate_scalar_model(prep.graph)
        ns: Dict = {}
        exec(compile(spec.source, f"<scalar:{spec.top}>", "exec"), ns)
        _SPEC_CACHE[key] = (spec, ns)
    return _SPEC_CACHE[key]


def measure_lane_seconds(
    prep: PreparedDesign,
    cycles: int,
    engine: str = "verilator",
    sample_lanes: int = 2,
    seed: int = 1,
) -> float:
    """Measured wall seconds to simulate ONE stimulus for ``cycles``.

    Source compilation is amortized (a forked worker compiles once and
    runs its whole lane chunk); one warmup lane runs before timing.
    """
    stim = prep.bundle.make_stimulus(sample_lanes, cycles, seed)
    graph = prep.graph
    spec, ns = _scalar_spec_ns(prep)

    def run_lane(lane: int) -> None:
        if engine == "verilator":
            sim = VerilatorSim(spec, dict(ns))
        elif engine == "essent":
            sim = EssentSim(graph, spec, dict(ns))
        else:
            raise ValueError(engine)
        for mem, vals in prep.memories.items():
            sim.load_memory(mem, vals)
        for step in stim.lane(lane):
            sim.cycle(step)

    run_lane(0)  # warmup
    t0 = time.perf_counter()
    for lane in range(sample_lanes):
        run_lane(lane)
    return (time.perf_counter() - t0) / sample_lanes


def modeled_cpu_batch_seconds(
    lane_seconds: float, n: int, workers: int, modeled_cores: Optional[int] = None
) -> float:
    """Fork-model batch time for ``n`` lanes on ``workers`` processes."""
    if workers <= 0:
        raise ValueError("workers must be positive")
    effective = workers if modeled_cores is None else min(workers, modeled_cores)
    per_worker = lane_seconds * n / effective
    return per_worker * (1.0 + PARALLEL_IMBALANCE) + FORK_STARTUP_S * min(
        workers, n
    ) / max(1, workers)


# ---------------------------------------------------------------------------
# Result persistence
# ---------------------------------------------------------------------------


def save_result(name: str, payload: Dict) -> str:
    """Atomic write (temp + fsync + rename): a crash mid-run never leaves
    a truncated result file clobbering a previous good one."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    return atomic_write_json(path, payload, default=str)


def save_text(name: str, text: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    return atomic_write_text(path, text + "\n")
