"""Fusion bench: fused flat-program executor vs per-node graph replay.

The ``graph-fused`` executor compiles each partition's kernel schedule
into one straight-line generated program (docs/fusion.md) and stores
1-bit signals bit-packed across the batch axis, so a simulated cycle is
a single launch of a few fused kernels instead of hundreds of per-node
dispatches.  This bench measures that end to end: for each design it
times ``graph`` (per-node replay) against ``graph-fused`` under the
fairness protocol of ``bench_ablation_activity._batch_times`` (per
variant warm-up, interleaved repeats) and checks the two executors are
**bit-identical** on every watched output before reporting a speedup.

Running as a script writes ``BENCH_fusion.json`` at the repo root;
``--smoke`` selects the reduced CI configuration.
"""

import argparse
import json
import os
import time

import numpy as np
import pytest

from benchmarks.bench_ablation_activity import _batch_times, _uniform_stim
from benchmarks.common import load_design
from repro.resilience import atomic_write_json
from repro.stimulus.generator import random_batch

DESIGNS = ("counter", "crypto", "spinal")
EXECUTORS = ("graph", "graph-fused")


def _design_stim(prep, n: int, cycles: int, seed: int = 0):
    """Random stimulus for any registered design (reset held one cycle)."""
    if prep.name == "counter":
        return _uniform_stim(n, cycles, 1.0, seed=seed)
    return random_batch(prep.graph.design, n, cycles, seed=seed)


def _outputs(model, n, stim, executor, backend=None):
    from repro.core.simulator import BatchSimulator

    sim = BatchSimulator(model, n, executor=executor, backend=backend)
    sim.run(stim)
    return {
        s.name: np.asarray(sim.get(s.name)).copy()
        for s in model.design.outputs
    }


def check_bit_identity(model, n, stim, backend=None):
    """Assert fused output batches equal the unfused executor's, bit for bit."""
    base = _outputs(model, n, stim, "graph")
    fused = _outputs(model, n, stim, "graph-fused", backend=backend)
    for name, want in base.items():
        got = fused[name]
        if not np.array_equal(want, got):
            bad = int(np.flatnonzero(want != got)[0])
            raise AssertionError(
                f"fused executor ({backend or 'numpy'}) diverged on output "
                f"{name!r} at lane {bad}: {want[bad]!r} != {got[bad]!r}"
            )
    return sorted(base)


def _backend_fused_time(model, n, stim, backend, repeats):
    """Best-of-``repeats`` fused-executor time under ``backend``.

    Mirrors ``_batch_times``'s per-variant warm-up (one untimed run pays
    the lowering cost) for a single executor/backend pair.
    """
    from repro.core.simulator import BatchSimulator

    BatchSimulator(model, n, executor="graph-fused", backend=backend).run(stim)
    best = None
    for _ in range(max(1, repeats)):
        sim = BatchSimulator(model, n, executor="graph-fused", backend=backend)
        t0 = time.perf_counter()
        sim.run(stim)
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best


# The verifier is opt-in and runs off-cycle, so turning it on must not
# slow the default simulation path beyond timer noise: 2% relative plus
# a 2ms absolute floor for very short runs on shared runners.
VERIFY_GUARD_REL = 0.02
VERIFY_GUARD_ABS = 0.002


def run_verify_guard(model, n, stim, repeats, sanitized_lanes=256):
    """Verifier-off vs verifier-on timings of the default fused path.

    "On" means what ``repro run --verify`` does once, off-cycle: a full
    static ``verify_model`` pass before the timed run.  Off/on repeats
    are interleaved (same fairness rationale as ``_batch_times``) and
    the best of ``max(3, repeats)`` is kept.  The runtime sanitizer is
    also timed — at a reduced lane count, since it intentionally trades
    throughput for per-task footprint checking — and reported without
    gating.

    Returns ``(t_off, t_on, verify_seconds, t_sanitized, n_sanitized)``
    and asserts the guard: ``t_on <= t_off * 1.02 + 2ms``.
    """
    from repro.core.simulator import BatchSimulator
    from repro.verify import verify_model

    def timed_run(executor, run_stim, lanes):
        sim = BatchSimulator(model, lanes, executor=executor)
        t0 = time.perf_counter()
        sim.run(run_stim)
        return time.perf_counter() - t0

    # Warm-up: untimed default run + one verify pass (lazy imports, rule
    # registration, fused-source compile) so neither side is charged
    # one-time costs.
    timed_run("graph-fused", stim, n)
    report = verify_model(model)
    assert report.clean, report.format_text()

    t_off = t_on = verify_s = None
    for _ in range(max(3, repeats)):
        dt = timed_run("graph-fused", stim, n)
        t_off = dt if t_off is None else min(t_off, dt)
        t0 = time.perf_counter()
        verify_model(model)
        vs = time.perf_counter() - t0
        verify_s = vs if verify_s is None else min(verify_s, vs)
        dt = timed_run("graph-fused", stim, n)
        t_on = dt if t_on is None else min(t_on, dt)

    n_s = min(n, sanitized_lanes)
    stim_s = stim.lanes(0, n_s)
    timed_run("sanitize", stim_s, n_s)  # warm-up
    t_san = timed_run("sanitize", stim_s, n_s)

    assert t_on <= t_off * (1 + VERIFY_GUARD_REL) + VERIFY_GUARD_ABS, (
        f"verifier-on default path regressed: off={t_off * 1e3:.2f}ms "
        f"on={t_on * 1e3:.2f}ms (guard: {VERIFY_GUARD_REL:.0%} + "
        f"{VERIFY_GUARD_ABS * 1e3:.0f}ms)"
    )
    return t_off, t_on, verify_s, t_san, n_s


def run_fusion_bench(n: int = 8192, cycles: int = 300, repeats: int = 3,
                     designs=DESIGNS, backend: str = "numpy"):
    """Time graph vs graph-fused per design; returns the report payload.

    With a non-default ``backend`` each design additionally gets a
    backend-lowered fused leg: a fresh bit-identity check against the
    per-node executor plus a ``batch_fused_{backend}_seconds`` timing
    (the default ``batch_fused_seconds`` stays the numpy lowering, so
    historical reports remain comparable).
    """
    results = []
    for name in designs:
        prep = load_design(name)
        model = prep.flow.compile()
        stim = _design_stim(prep, n, cycles)
        # Identity check at a small ragged batch (exercises tail-bit
        # handling) so the check never dominates the timed portion.
        n_check = min(n, 257)
        stim_check = _design_stim(prep, n_check, cycles)
        checked = check_bit_identity(model, n_check, stim_check)
        timed = _batch_times(model, n, stim, EXECUTORS, repeats)
        t_full, _ = timed["graph"]
        t_fused, _ = timed["graph-fused"]
        t_off, t_on, verify_s, t_san, n_s = run_verify_guard(
            model, n, stim, repeats)
        rec = {
            "design": name,
            "batch_full_seconds": t_full,
            "batch_fused_seconds": t_fused,
            "fused_speedup": t_full / t_fused,
            "bit_identical_outputs": checked,
            "verifier_off_seconds": t_off,
            "verifier_on_seconds": t_on,
            "verify_pass_seconds": verify_s,
            "batch_sanitized_seconds": t_san,
            "sanitized_lanes": n_s,
        }
        if backend != "numpy":
            check_bit_identity(model, n_check, stim_check, backend=backend)
            rec[f"batch_fused_{backend}_seconds"] = _backend_fused_time(
                model, n, stim, backend, repeats)
        results.append(rec)
    return {
        "bench": "fusion",
        "n": n,
        "cycles": cycles,
        "repeats": repeats,
        "backend": backend,
        "results": results,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="reduced CI configuration (small n, fewer cycles)")
    ap.add_argument("--n", type=int, default=None)
    ap.add_argument("--cycles", type=int, default=None)
    ap.add_argument("--repeats", type=int, default=None)
    ap.add_argument("--designs", nargs="*", default=None)
    ap.add_argument("--backend", default="numpy",
                    help="also time graph-fused under this lowering backend "
                         "(see docs/backends.md); numpy disables the extra leg")
    ap.add_argument("--out", default=os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_fusion.json",
    ))
    args = ap.parse_args(argv)
    if args.smoke:
        n, cycles, repeats = 1024, 100, 2
    else:
        n, cycles, repeats = 8192, 300, 3
    payload = run_fusion_bench(
        n=args.n or n,
        cycles=args.cycles or cycles,
        repeats=args.repeats or repeats,
        designs=tuple(args.designs) if args.designs else DESIGNS,
        backend=args.backend,
    )
    atomic_write_json(args.out, payload)
    print(f"wrote {args.out}")
    for rec in payload["results"]:
        print(
            f"  {rec['design']:<10} "
            f"full={rec['batch_full_seconds'] * 1e3:7.1f}ms "
            f"fused={rec['batch_fused_seconds'] * 1e3:7.1f}ms "
            f"speedup={rec['fused_speedup']:.2f}x "
            f"verify={rec['verify_pass_seconds'] * 1e3:5.1f}ms "
            f"sanitized={rec['batch_sanitized_seconds'] * 1e3:7.1f}ms"
            f"@{rec['sanitized_lanes']}"
        )
    return 0


# -- tests --------------------------------------------------------------------


def test_fusion_report_shape(tmp_path):
    payload = run_fusion_bench(n=128, cycles=30, repeats=1, designs=("counter",))
    out = tmp_path / "BENCH_fusion.json"
    atomic_write_json(str(out), payload)
    loaded = json.loads(out.read_text())
    assert loaded["bench"] == "fusion"
    (rec,) = loaded["results"]
    assert rec["design"] == "counter"
    assert rec["batch_fused_seconds"] > 0
    assert rec["fused_speedup"] > 0
    assert rec["bit_identical_outputs"]
    assert rec["verifier_off_seconds"] > 0
    assert rec["verifier_on_seconds"] > 0
    assert rec["batch_sanitized_seconds"] > 0


def test_verifier_does_not_slow_default_path():
    # run_verify_guard asserts t_on <= t_off * 1.02 + 2ms internally.
    prep = load_design("counter")
    model = prep.flow.compile()
    n = 1024
    stim = _uniform_stim(n, 100, 1.0)
    t_off, t_on, verify_s, t_san, n_s = run_verify_guard(model, n, stim, 3)
    assert verify_s > 0 and t_san > 0 and n_s <= n


@pytest.mark.parametrize("name", DESIGNS)
def test_fused_bit_identical_outputs(name):
    prep = load_design(name)
    model = prep.flow.compile()
    stim = _design_stim(prep, 67, 25, seed=5)
    assert check_bit_identity(model, 67, stim)


def test_fused_faster_than_full_on_counter():
    prep = load_design("counter")
    model = prep.flow.compile()
    n = 4096
    stim = _uniform_stim(n, 200, 1.0)
    timed = _batch_times(model, n, stim, EXECUTORS, 3)
    t_full, _ = timed["graph"]
    t_fused, _ = timed["graph-fused"]
    # Acceptance criterion is 3x at n=8192; at this reduced size require a
    # conservative win so the test stays robust on noisy shared runners.
    assert t_fused < t_full, (t_fused, t_full)


if __name__ == "__main__":
    raise SystemExit(main())
