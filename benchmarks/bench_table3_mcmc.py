"""Table 3: GPU-aware MCMC partitioning vs default (hard-coded) weights.

Checks Algorithm 1's deliverable: the sampled weight vector must yield a
partition whose *measured-in-operating-conditions* cost is no worse than
the Verilator-style hard-coded weights, and usually better (the paper
reports 2.8–5.8% on NVDLA).
"""

import pytest

from benchmarks.common import load_design
from benchmarks.harness import run_table3
from repro.partition.mcmc import Estimator, MCMCPartitioner
from repro.partition.merge import partition
from repro.partition.weights import WeightVector


@pytest.fixture(scope="module")
def nvdla():
    return load_design("nvdla", pes=4)


def test_mcmc_sampling_speed(benchmark, nvdla):
    """Cost of one sampling iteration (propose + compile + run)."""
    est = Estimator(nvdla.graph, n_stimulus=32, cycles=4, seed=0)
    weights = WeightVector.ones(nvdla.graph)

    def one_iteration():
        tg = partition(nvdla.graph, weights=weights)
        return est.estimate_cost(tg)

    cost = benchmark.pedantic(one_iteration, rounds=3, iterations=1)
    assert cost > 0


def test_mcmc_beats_or_matches_default(nvdla):
    graph = nvdla.graph
    est = Estimator(graph, n_stimulus=32, cycles=6, seed=1, repeats=2)
    opt = MCMCPartitioner(
        graph, estimator=est, max_iter=12, max_unimproved=5, seed=1,
        target_weight=32.0,
    )
    result = opt.optimize()

    # Evaluate both final weight vectors with a fresh estimator (same
    # stimulus/cycles) to avoid self-serving noise; min over 2 trials.
    judge = Estimator(graph, n_stimulus=32, cycles=6, seed=2, repeats=3)
    default_cost = min(
        judge.estimate_cost(partition(graph, target_weight=32.0))
        for _ in range(2)
    )
    mcmc_cost = min(
        judge.estimate_cost(
            partition(graph, weights=result.weights, target_weight=32.0)
        )
        for _ in range(2)
    )
    # Timing noise exists; require "no worse than 30% regression" and
    # record the typical improvement in EXPERIMENTS.md.
    assert mcmc_cost <= default_cost * 1.3, (mcmc_cost, default_cost)


def test_unimproved_early_stop(nvdla):
    est = Estimator(nvdla.graph, n_stimulus=16, cycles=3, seed=3)
    opt = MCMCPartitioner(
        nvdla.graph, estimator=est, max_iter=100, max_unimproved=3, seed=3
    )
    result = opt.optimize()
    assert result.iterations < 100  # stopped by MAX_UNIMPROVED


def test_table3_harness():
    out = run_table3("quick")
    assert "Table 3" in out
