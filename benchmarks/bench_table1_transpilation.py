"""Table 1: transpilation statistics and speed.

Regenerates the paper's transpiled-code comparison (LOC, cyclomatic
complexity per function, token counts, transpile time) for the three
bundled designs, and benchmarks the RTLflow transpile path itself.
"""

import pytest

from benchmarks.common import load_design
from benchmarks.harness import run_table1
from repro.analysis.metrics import code_metrics, transpilation_row
from repro.core.codegen import KernelCodegen
from repro.partition.merge import partition


@pytest.mark.parametrize("name,params", [
    ("riscv_mini", {}),
    ("spinal", {"taps": 4}),
    ("nvdla", {"pes": 4}),
])
def test_transpile_speed(benchmark, name, params):
    """How fast is kernel code transpilation (partition + codegen + compile)?"""
    prep = load_design(name, **params)
    graph = prep.graph

    def transpile_once():
        tg = partition(graph)
        return KernelCodegen(tg).compile()

    model = benchmark.pedantic(transpile_once, rounds=3, iterations=1)
    assert model.task_fns


def test_table1_row_properties():
    """The paper's Table 1 directional facts hold for every design."""
    for name, params in [("riscv_mini", {}), ("spinal", {"taps": 4}),
                         ("nvdla", {"pes": 4})]:
        prep = load_design(name, **params)
        row = transpilation_row(prep.graph)
        v, f = row["verilator"], row["rtlflow"]
        # RTLflow emits more tokens (explicit index arithmetic per access —
        # the paper: 3.2M -> 10.4M tokens on NVDLA) ...
        assert f.tokens > v.tokens, name
        # ... but *lower* cyclomatic complexity per function: control flow
        # becomes straight-line vector selects (paper: 16.4 -> 4.8 on NVDLA).
        assert f.cc_avg < v.cc_avg, name
        # And both transpile in seconds, not minutes, at this scale.
        assert v.transpile_seconds < 30
        assert f.transpile_seconds < 30


def test_code_metrics_unit():
    src = "def f(x):\n    return 1 if x else 2\n\ndef g():\n    return 0\n"
    m = code_metrics(src)
    assert m.functions == 2
    assert m.cc_avg == pytest.approx(1.5)
    assert m.loc == 4


def test_table1_harness(capsys):
    out = run_table1("quick")
    assert "Table 1" in out
    assert "riscv_mini" in out
