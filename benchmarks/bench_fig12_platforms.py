"""Figure 12: runtime across hardware platforms (CPU worker sweep vs GPU).

CPU workers are modeled from a measured per-lane time (single-core host;
see benchmarks.common); RTLflow is measured.  Paper claims checked:
monotone CPU scaling with workers, and the GPU point beating the largest
modeled CPU configuration at batch scale.
"""

import pytest

from benchmarks.common import (
    load_design,
    measure_lane_seconds,
    modeled_cpu_batch_seconds,
    time_rtlflow,
)
from benchmarks.harness import run_fig12

CYCLES = 40
N = 1024


@pytest.fixture(scope="module")
def nvdla():
    return load_design("nvdla", pes=4)


def test_lane_measurement(benchmark, nvdla):
    benchmark.pedantic(
        lambda: measure_lane_seconds(nvdla, CYCLES, sample_lanes=1),
        rounds=3, iterations=1,
    )


def test_worker_scaling_monotone(nvdla):
    lane = measure_lane_seconds(nvdla, CYCLES)
    times = [
        modeled_cpu_batch_seconds(lane, N, w) for w in (1, 4, 16, 40, 80)
    ]
    assert all(a >= b for a, b in zip(times, times[1:])), times


def test_gpu_beats_80cpu_at_batch_scale(nvdla):
    from benchmarks.common import time_rtlflow_projected

    lane = measure_lane_seconds(nvdla, CYCLES)
    cpu80 = modeled_cpu_batch_seconds(lane, N, 80)
    cpu1 = modeled_cpu_batch_seconds(lane, N, 1)
    host, projected, _ = time_rtlflow_projected(nvdla, N, CYCLES)
    # Host-measured batch run must already beat the single-CPU baseline;
    # the projected device point must beat the modeled 80-thread host
    # (the paper's headline ordering).
    assert host < cpu1, (host, cpu1)
    assert projected < cpu80, (projected, cpu80)


def test_fig12_harness():
    out = run_fig12("quick")
    assert "Figure 12" in out
    assert "RTLflow" in out
