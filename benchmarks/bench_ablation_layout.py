"""Ablation: GPU memory layout strategies (§3.1.2, Fig. 6/7).

The paper rejects two layouts before settling on the four fixed-width
pools with `offset*N + tid` indexing:

1. **one fixed-width uint8 array** — wide variables split across several
   strided locations (Fig. 6): loading a 16-bit variable touches two
   non-adjacent stripes -> uncoalesced;
2. **per-variable dynamic allocation** — allocation overhead and
   fragmentation.

This bench reproduces those comparisons with numpy as the memory system:
the batch axis is the coalescing axis, so the paper's access patterns map
to contiguous-slice vs strided/gathered access.
"""

import numpy as np
import pytest

N = 1 << 14  # stimulus
VARS = 48  # 16-bit variables


@pytest.fixture(scope="module")
def pooled():
    """The paper's layout: one uint16 pool, variable v at [v*N:(v+1)*N]."""
    rng = np.random.default_rng(0)
    return rng.integers(0, 1 << 16, VARS * N, dtype=np.uint16)


@pytest.fixture(scope="module")
def bytewise():
    """Fig. 6's rejected layout: one uint8 array, each 16-bit variable in
    two byte stripes (sum1/sum2)."""
    rng = np.random.default_rng(0)
    return rng.integers(0, 256, 2 * VARS * N, dtype=np.uint8)


@pytest.fixture(scope="module")
def fragmented():
    """Per-variable allocation: many small independent arrays."""
    rng = np.random.default_rng(0)
    return [
        rng.integers(0, 1 << 16, N, dtype=np.uint16) for _ in range(VARS)
    ]


def _work_pooled(pool):
    acc = np.zeros(N, dtype=np.uint64)
    for v in range(VARS):
        acc += pool[v * N : (v + 1) * N].astype(np.uint64, copy=False)
    return acc


def _work_bytewise(arr):
    acc = np.zeros(N, dtype=np.uint64)
    for v in range(VARS):
        lo = arr[(2 * v) * N : (2 * v + 1) * N].astype(np.uint64, copy=False)
        hi = arr[(2 * v + 1) * N : (2 * v + 2) * N].astype(np.uint64, copy=False)
        acc += (hi << np.uint64(8)) | lo
    return acc


def _work_fragmented(arrays):
    acc = np.zeros(N, dtype=np.uint64)
    for a in arrays:
        acc += a.astype(np.uint64, copy=False)
    return acc


def test_pooled_layout(benchmark, pooled):
    benchmark(_work_pooled, pooled)


def test_bytewise_layout(benchmark, bytewise):
    benchmark(_work_bytewise, bytewise)


def test_fragmented_layout(benchmark, fragmented):
    benchmark(_work_fragmented, fragmented)


def test_bytewise_is_slower_than_pooled(pooled, bytewise):
    """Fig. 6's claim: reconstructing wide values from byte stripes loses
    to native-width pools."""
    import time

    def best(fn, arg):
        t = []
        for _ in range(5):
            t0 = time.perf_counter()
            fn(arg)
            t.append(time.perf_counter() - t0)
        return min(t)

    t_pool = best(_work_pooled, pooled)
    t_byte = best(_work_bytewise, bytewise)
    assert t_byte > t_pool, (t_byte, t_pool)


def test_allocation_overhead_of_fragmented_layout():
    """Per-variable allocation pays per-array overhead the pools avoid
    ('significant memory allocation overheads', §3.1)."""
    import time

    def alloc_pooled():
        return np.zeros(VARS * N, dtype=np.uint16)

    def alloc_fragmented():
        return [np.zeros(N, dtype=np.uint16) for _ in range(VARS)]

    def best(fn):
        t = []
        for _ in range(5):
            t0 = time.perf_counter()
            fn()
            t.append(time.perf_counter() - t0)
        return min(t)

    assert best(alloc_fragmented) > best(alloc_pooled)


def test_aos_interleaving_is_slower():
    """AoS (tid-major) vs the paper's SoA (offset-major): batch reads of
    one variable become strided."""
    import time

    rng = np.random.default_rng(1)
    soa = rng.integers(0, 1 << 16, VARS * N, dtype=np.uint16)
    aos = np.ascontiguousarray(
        soa.reshape(VARS, N).T
    ).ravel()  # tid-major: variable v of lane t at [t*VARS + v]

    def read_soa():
        acc = np.zeros(N, dtype=np.uint64)
        for v in range(VARS):
            acc += soa[v * N : (v + 1) * N].astype(np.uint64, copy=False)
        return acc

    def read_aos():
        acc = np.zeros(N, dtype=np.uint64)
        for v in range(VARS):
            acc += aos[v :: VARS].astype(np.uint64)  # strided gather
        return acc

    def best(fn):
        t = []
        for _ in range(5):
            t0 = time.perf_counter()
            fn()
            t.append(time.perf_counter() - t0)
        return min(t)

    t_soa, t_aos = best(read_soa), best(read_aos)
    assert np.array_equal(read_soa(), read_aos())
    assert t_aos > t_soa, (t_aos, t_soa)
