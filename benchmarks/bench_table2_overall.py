"""Table 2: overall elapsed time, Verilator (80 threads) vs RTLflow.

Quick-scale regeneration of the headline comparison.  The paper's claims
this bench checks:

* RTLflow scales sub-linearly in #stimulus (vectorized batch axis) while
  the CPU baseline scales linearly;
* there is a break-even batch size above which RTLflow wins even against
  the modeled 80-thread CPU host.
"""

import pytest

from benchmarks.common import (
    load_design,
    measure_lane_seconds,
    modeled_cpu_batch_seconds,
    time_rtlflow,
)
from benchmarks.harness import PAPER_CPU_WORKERS, run_table2

CYCLES = 60


@pytest.fixture(scope="module")
def spinal():
    return load_design("spinal", taps=4)


def test_rtlflow_run(benchmark, spinal):
    """Benchmark the measured RTLflow side of Table 2."""
    benchmark.pedantic(
        lambda: time_rtlflow(spinal, 128, CYCLES), rounds=3, iterations=1
    )


def test_rtlflow_scales_sublinearly(spinal):
    t_small, _ = time_rtlflow(spinal, 32, CYCLES)
    t_big, _ = time_rtlflow(spinal, 32 * 16, CYCLES)
    # 16x the stimulus must cost far less than 16x the time (paper Fig 13:
    # 16x stimulus -> ~4x time at the large end; at laptop sizes the batch
    # axis is almost free).
    assert t_big < t_small * 8, (t_small, t_big)


def test_cpu_baseline_scales_linearly(spinal):
    lane = measure_lane_seconds(spinal, CYCLES)
    t1 = modeled_cpu_batch_seconds(lane, 512, PAPER_CPU_WORKERS)
    t2 = modeled_cpu_batch_seconds(lane, 512 * 8, PAPER_CPU_WORKERS)
    t3 = modeled_cpu_batch_seconds(lane, 512 * 16, PAPER_CPU_WORKERS)
    # Past the constant fork/startup term the marginal cost per stimulus
    # is constant: the 8->16x increment equals the 1->8x increment per lane.
    marginal_a = (t2 - t1) / (512 * 7)
    marginal_b = (t3 - t2) / (512 * 8)
    assert marginal_a == pytest.approx(marginal_b, rel=0.05)
    assert t3 > t1


def test_break_even_exists(spinal):
    """Above some batch size the projected device beats the modeled
    80-thread host (the paper's Table 2 break-even, 256-1024 stimulus)."""
    from benchmarks.common import time_rtlflow_projected

    lane = measure_lane_seconds(spinal, CYCLES)
    n = 64
    won = False
    while n <= 16384:
        cpu = modeled_cpu_batch_seconds(lane, n, PAPER_CPU_WORKERS)
        _, projected, _ = time_rtlflow_projected(spinal, n, CYCLES)
        if projected < cpu:
            won = True
            break
        n *= 4
    assert won, "RTLflow never overtook the modeled CPU baseline"


def test_table2_harness():
    out = run_table2("quick")
    assert "Table 2" in out
    assert "speed-up" in out
