"""Figure 2: set_inputs vs evaluate breakdown and GPU utilization.

Paper claim: without pipelining, the CPU-side set_inputs share grows with
the number of stimulus and GPU utilization falls.
"""

import pytest

from benchmarks.common import load_design, time_rtlflow_pipeline
from benchmarks.harness import run_fig2

CYCLES = 30


@pytest.fixture(scope="module")
def nvdla():
    return load_design("nvdla", pes=4)


def test_breakdown_capture(benchmark, nvdla):
    benchmark.pedantic(
        lambda: time_rtlflow_pipeline(nvdla, 128, CYCLES, pipeline=False),
        rounds=3, iterations=1,
    )


def test_set_inputs_grows_with_stimulus(nvdla):
    r_small, _ = time_rtlflow_pipeline(nvdla, 64, CYCLES, pipeline=False)
    r_large, _ = time_rtlflow_pipeline(nvdla, 1024, CYCLES, pipeline=False)
    assert r_large.set_inputs_seconds > r_small.set_inputs_seconds * 4


def test_utilization_declines_with_stimulus(nvdla):
    r_small, _ = time_rtlflow_pipeline(nvdla, 64, CYCLES, pipeline=False)
    r_large, _ = time_rtlflow_pipeline(nvdla, 2048, CYCLES, pipeline=False)
    assert (
        r_large.sequential_utilization <= r_small.sequential_utilization + 0.01
    )


def test_fig2_harness():
    out = run_fig2("quick")
    assert "Figure 2" in out
    assert "GPU utilization" in out
