"""Figures 14 & 15: partition shapes and utilization curves."""

import pytest

from benchmarks.common import load_design, time_rtlflow_pipeline
from benchmarks.harness import run_fig14, run_fig15
from repro.partition.merge import partition
from repro.partition.weights import WeightVector

CYCLES = 30


@pytest.fixture(scope="module")
def spinal():
    return load_design("spinal", taps=4)


def test_partition_speed(benchmark, spinal):
    benchmark.pedantic(lambda: partition(spinal.graph), rounds=5, iterations=1)


def test_fig14_wider_levels_from_smaller_tasks(spinal):
    """Fig 14's observation: the GPU-aware partition favours many parallel
    tasks per level.  Mechanically, raising weights makes tasks smaller
    and levels wider."""
    coarse = partition(spinal.graph, target_weight=1e9)
    w = WeightVector.ones(spinal.graph)
    for t in w.types:
        w.values[t] = 40.0
    fine = partition(spinal.graph, weights=w, target_weight=64.0)
    assert fine.max_concurrency() >= coarse.max_concurrency()
    assert fine.n_comb_tasks >= coarse.n_comb_tasks


def test_dot_output(spinal):
    dot = partition(spinal.graph).to_dot()
    assert dot.startswith("digraph")


def test_fig15_pipeline_utilization_not_worse(spinal):
    r, _ = time_rtlflow_pipeline(spinal, 256, CYCLES)
    assert r.pipelined_utilization >= r.sequential_utilization - 0.01


def test_fig14_harness():
    out = run_fig14("quick")
    assert "Figure 14" in out


def test_fig15_harness():
    out = run_fig15("quick")
    assert "Figure 15" in out
