"""Benchmark suite configuration.

Each ``bench_table*/bench_fig*`` module regenerates one table or figure of
the paper at "quick" scale (so ``pytest benchmarks/ --benchmark-only``
stays minutes, not hours) and asserts the qualitative property the paper
claims.  The full paper-style sweeps are produced by
``python -m benchmarks.harness --all --scale default``.
"""

import os
import sys

# Make `import benchmarks.common` work when pytest is run from the repo root.
sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

collect_ignore_glob = ["results/*"]
