"""Ablation: activity factor vs engine choice (§2.2-2.3 + future work).

The paper's conclusion plans evaluation over "a wide range of design
sizes and activity factors".  This bench sweeps the stimulus activity of
the counter/SoC designs and shows the §2.3 trade-off directly:

* the event-driven (ESSENT-like) engine wins at LOW activity (it skips
  quiescent logic),
* the full-cycle engine wins at HIGH activity (no bookkeeping),
* the batch engine is activity-insensitive (it always evaluates
  everything — but for all stimulus at once).
"""

import time

import numpy as np
import pytest

from benchmarks.common import load_design
from repro.baselines.essent import EssentSim
from repro.baselines.verilator import VerilatorSim
from repro.baselines.scalargen import generate_scalar_model
from repro.stimulus.batch import StimulusBatch

CYCLES = 300


def _stim_with_activity(design, activity: float, cycles: int, seed: int = 0):
    """Counter stimulus whose enable toggles with probability ``activity``."""
    rng = np.random.default_rng(seed)
    en = (rng.random((cycles, 1)) < activity).astype(np.uint64)
    rst = np.zeros((cycles, 1), dtype=np.uint64)
    rst[0, 0] = 1
    return StimulusBatch({"rst": rst, "en": en})


@pytest.fixture(scope="module")
def counter():
    return load_design("counter")


def _lane_time(engine_factory, prep, stim) -> float:
    best = None
    for _ in range(3):
        sim = engine_factory()
        t0 = time.perf_counter()
        for step in stim.lane(0):
            sim.cycle(step)
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best


def test_essent_skip_rate_tracks_activity(counter):
    graph = counter.graph
    spec = generate_scalar_model(graph)
    rates = {}
    for activity in (0.02, 0.98):
        sim = EssentSim(graph, spec)
        stim = _stim_with_activity(counter.graph.design, activity, CYCLES)
        for step in stim.lane(0):
            sim.cycle(step)
        rates[activity] = sim.activity_factor
    assert rates[0.02] < rates[0.98], rates


def test_event_driven_wins_at_low_activity(counter):
    graph = counter.graph
    spec = generate_scalar_model(graph)
    stim = _stim_with_activity(counter.graph.design, 0.01, CYCLES)
    t_essent = _lane_time(lambda: EssentSim(graph, spec), counter, stim)
    t_veril = _lane_time(lambda: VerilatorSim(spec), counter, stim)
    # At 1% activity the event-driven engine must not lose badly; on this
    # tiny design constant costs dominate, so require parity within 2x.
    assert t_essent < t_veril * 2.0, (t_essent, t_veril)


def test_full_cycle_wins_at_high_activity(counter):
    graph = counter.graph
    spec = generate_scalar_model(graph)
    stim = _stim_with_activity(counter.graph.design, 1.0, CYCLES)
    t_essent = _lane_time(lambda: EssentSim(graph, spec), counter, stim)
    t_veril = _lane_time(lambda: VerilatorSim(spec), counter, stim)
    # Full activity: skipping never pays, bookkeeping always costs.
    assert t_veril < t_essent, (t_veril, t_essent)


def test_batch_engine_activity_insensitive(counter):
    from benchmarks.common import time_rtlflow
    from repro.core.simulator import BatchSimulator

    model = counter.flow.compile()
    times = {}
    for activity in (0.02, 0.98):
        rng = np.random.default_rng(1)
        n = 64
        en = (rng.random((CYCLES, n)) < activity).astype(np.uint64)
        rst = np.zeros((CYCLES, n), dtype=np.uint64)
        rst[0] = 1
        stim = StimulusBatch({"rst": rst, "en": en})
        best = None
        for _ in range(3):
            sim = BatchSimulator(model, n)
            t0 = time.perf_counter()
            sim.run(stim)
            dt = time.perf_counter() - t0
            best = dt if best is None else min(best, dt)
        times[activity] = best
    lo, hi = sorted(times.values())
    assert hi / lo < 1.5, times  # full-cycle: work independent of activity


def test_activity_sweep_benchmark(benchmark, counter):
    graph = counter.graph
    spec = generate_scalar_model(graph)
    stim = _stim_with_activity(counter.graph.design, 0.5, CYCLES)

    def run():
        sim = EssentSim(graph, spec)
        for step in stim.lane(0):
            sim.cycle(step)
        return sim.activity_factor

    benchmark.pedantic(run, rounds=3, iterations=1)
