"""Ablation: activity factor vs engine choice (§2.2-2.3 + future work).

The paper's conclusion plans evaluation over "a wide range of design
sizes and activity factors".  This bench sweeps the stimulus activity of
the counter/SoC designs and shows the §2.3 trade-off directly:

* the event-driven (ESSENT-like) engine wins at LOW activity (it skips
  quiescent logic),
* the full-cycle engine wins at HIGH activity (no bookkeeping),
* the batch engine is activity-insensitive (it always evaluates
  everything — but for all stimulus at once),
* the ``graph-conditional`` batch executor (docs/activity.md) recovers
  the event-driven win *inside* the batch engine: under batch-uniform
  control activity it beats the unconditional executor at low activity
  and stays within noise of it at full activity.

Running this file as a script (``python benchmarks/bench_ablation_activity.py``)
sweeps the executors over activity factors and writes ``BENCH_activity.json``
at the repo root; ``--smoke`` selects the reduced CI configuration.
"""

import argparse
import json
import os
import time

import numpy as np
import pytest

from benchmarks.common import load_design
from repro.resilience import atomic_write_json
from repro.baselines.essent import EssentSim
from repro.baselines.verilator import VerilatorSim
from repro.baselines.scalargen import generate_scalar_model
from repro.stimulus.batch import StimulusBatch

CYCLES = 300
SWEEP_ACTIVITIES = (0.02, 0.1, 0.5, 1.0)


def _stim_with_activity(design, activity: float, cycles: int, seed: int = 0):
    """Counter stimulus whose enable toggles with probability ``activity``."""
    rng = np.random.default_rng(seed)
    en = (rng.random((cycles, 1)) < activity).astype(np.uint64)
    rst = np.zeros((cycles, 1), dtype=np.uint64)
    rst[0, 0] = 1
    return StimulusBatch({"rst": rst, "en": en})


@pytest.fixture(scope="module")
def counter():
    return load_design("counter")


def _lane_time(engine_factory, prep, stim) -> float:
    best = None
    for _ in range(3):
        sim = engine_factory()
        t0 = time.perf_counter()
        for step in stim.lane(0):
            sim.cycle(step)
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best


def test_essent_skip_rate_tracks_activity(counter):
    graph = counter.graph
    spec = generate_scalar_model(graph)
    rates = {}
    for activity in (0.02, 0.98):
        sim = EssentSim(graph, spec)
        stim = _stim_with_activity(counter.graph.design, activity, CYCLES)
        for step in stim.lane(0):
            sim.cycle(step)
        rates[activity] = sim.activity_factor
    assert rates[0.02] < rates[0.98], rates


def test_event_driven_wins_at_low_activity(counter):
    graph = counter.graph
    spec = generate_scalar_model(graph)
    stim = _stim_with_activity(counter.graph.design, 0.01, CYCLES)
    t_essent = _lane_time(lambda: EssentSim(graph, spec), counter, stim)
    t_veril = _lane_time(lambda: VerilatorSim(spec), counter, stim)
    # At 1% activity the event-driven engine must not lose badly; on this
    # tiny design constant costs dominate, so require parity within 2x.
    assert t_essent < t_veril * 2.0, (t_essent, t_veril)


def test_full_cycle_wins_at_high_activity(counter):
    graph = counter.graph
    spec = generate_scalar_model(graph)
    stim = _stim_with_activity(counter.graph.design, 1.0, CYCLES)
    t_essent = _lane_time(lambda: EssentSim(graph, spec), counter, stim)
    t_veril = _lane_time(lambda: VerilatorSim(spec), counter, stim)
    # Full activity: skipping never pays, bookkeeping always costs.
    assert t_veril < t_essent, (t_veril, t_essent)


def test_batch_engine_activity_insensitive(counter):
    from benchmarks.common import time_rtlflow
    from repro.core.simulator import BatchSimulator

    model = counter.flow.compile()
    times = {}
    for activity in (0.02, 0.98):
        rng = np.random.default_rng(1)
        n = 64
        en = (rng.random((CYCLES, n)) < activity).astype(np.uint64)
        rst = np.zeros((CYCLES, n), dtype=np.uint64)
        rst[0] = 1
        stim = StimulusBatch({"rst": rst, "en": en})
        best = None
        for _ in range(3):
            sim = BatchSimulator(model, n)
            t0 = time.perf_counter()
            sim.run(stim)
            dt = time.perf_counter() - t0
            best = dt if best is None else min(best, dt)
        times[activity] = best
    lo, hi = sorted(times.values())
    assert hi / lo < 1.5, times  # full-cycle: work independent of activity


# -- conditional-executor sweep (emits BENCH_activity.json) -------------------


def _uniform_stim(n: int, cycles: int, activity: float, seed: int = 0):
    """Batch-uniform counter stimulus: one Bernoulli enable row shared by
    every lane.

    The dirty set is batch-global (a task re-runs if ANY lane changed), so
    independent per-lane activity ``a`` gives effective batch activity
    ``1 - (1 - a)^N`` — indistinguishable from 1.0 at useful N.  Uniform
    control activity is the regime where conditional replay pays; see
    docs/activity.md.
    """
    rng = np.random.default_rng(seed)
    row = rng.random((cycles, 1)) < activity
    en = np.repeat(row, n, axis=1).astype(np.uint64)
    rst = np.zeros((cycles, n), dtype=np.uint64)
    rst[0] = 1
    return StimulusBatch({"rst": rst, "en": en})


def _batch_times(model, n, stim, executors, repeats):
    """Fair comparative timing of batch executors.

    Two fairness rules (the old ``_batch_time`` violated both):

    * **per-variant warm-up** — each executor gets one untimed run first,
      so one-time costs (``compile()`` of generated source, numpy/cache
      warm-up, lazy imports) are paid by every variant, not just charged
      to whichever ran first;
    * **interleaved repeats** — repeat ``r`` runs every executor back to
      back before repeat ``r+1``, so drift on a shared runner (thermal
      throttling, noisy neighbours) hits all variants alike instead of
      biasing the fixed back-to-back order.

    Returns ``{executor: (best_seconds, last_sim)}``.
    """
    from repro.core.simulator import BatchSimulator

    out = {ex: [None, None] for ex in executors}
    for ex in executors:  # warm-up: untimed, fresh sim
        BatchSimulator(model, n, executor=ex).run(stim)
    for _ in range(repeats):
        for ex in executors:
            sim = BatchSimulator(model, n, executor=ex)
            t0 = time.perf_counter()
            sim.run(stim)
            dt = time.perf_counter() - t0
            slot = out[ex]
            slot[0] = dt if slot[0] is None else min(slot[0], dt)
            slot[1] = sim
    return {ex: (best, sim) for ex, (best, sim) in out.items()}


def run_activity_sweep(
    n: int = 8192,
    cycles: int = CYCLES,
    activities=SWEEP_ACTIVITIES,
    repeats: int = 3,
    include_event_driven: bool = True,
):
    """Sweep executors over activity factors; returns the report payload."""
    counter = load_design("counter")
    model = counter.flow.compile()
    graph = counter.graph
    spec = generate_scalar_model(graph) if include_event_driven else None
    results = []
    for activity in activities:
        stim = _uniform_stim(n, cycles, activity)
        rec = {"activity": activity}
        timed = _batch_times(
            model, n, stim,
            ("graph", "graph-conditional", "graph-fused"), repeats,
        )
        t_full, _ = timed["graph"]
        t_cond, sim = timed["graph-conditional"]
        t_fused, _ = timed["graph-fused"]
        rec["batch_full_seconds"] = t_full
        rec["batch_conditional_seconds"] = t_cond
        rec["batch_fused_seconds"] = t_fused
        rec["conditional_over_full"] = t_cond / t_full
        rec["fused_over_full"] = t_fused / t_full
        rec["skip_rate"] = sim.executor.skip_rate
        if include_event_driven:
            # One lane through the scalar event-driven engine, scaled to
            # the batch size: the cost the batch engine amortizes away.
            esim = EssentSim(graph, spec)
            t0 = time.perf_counter()
            for step in stim.lane(0):
                esim.cycle(step)
            t_lane = time.perf_counter() - t0
            rec["event_driven_lane_seconds"] = t_lane
            rec["event_driven_batch_estimate_seconds"] = t_lane * n
        results.append(rec)
    return {
        "bench": "activity_ablation",
        "design": "counter",
        "n": n,
        "cycles": cycles,
        "repeats": repeats,
        "results": results,
    }


def write_report(payload, path: str) -> None:
    # Atomic: an interrupted sweep never truncates a previous report.
    atomic_write_json(path, payload)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="reduced CI configuration (small n, fewer cycles)")
    ap.add_argument("--n", type=int, default=None)
    ap.add_argument("--cycles", type=int, default=None)
    ap.add_argument("--repeats", type=int, default=None)
    ap.add_argument("--out", default=os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_activity.json",
    ))
    args = ap.parse_args(argv)
    if args.smoke:
        n, cycles, repeats = 1024, 100, 2
    else:
        n, cycles, repeats = 8192, CYCLES, 3
    payload = run_activity_sweep(
        n=args.n or n,
        cycles=args.cycles or cycles,
        repeats=args.repeats or repeats,
    )
    write_report(payload, args.out)
    print(f"wrote {args.out}")
    for rec in payload["results"]:
        print(
            f"  activity={rec['activity']:<5} "
            f"full={rec['batch_full_seconds'] * 1e3:7.1f}ms "
            f"cond={rec['batch_conditional_seconds'] * 1e3:7.1f}ms "
            f"fused={rec['batch_fused_seconds'] * 1e3:7.1f}ms "
            f"cond/full={rec['conditional_over_full']:.3f} "
            f"fused/full={rec['fused_over_full']:.3f} "
            f"skip={rec['skip_rate']:.3f}"
        )
    return 0


def test_conditional_executor_beats_full_batch_at_low_activity(counter):
    model = counter.flow.compile()
    n = 4096
    stim = _uniform_stim(n, 200, 0.05)
    timed = _batch_times(model, n, stim, ("graph", "graph-conditional"), 3)
    t_full, _ = timed["graph"]
    t_cond, sim = timed["graph-conditional"]
    assert sim.executor.skip_rate > 0.5, sim.executor.skip_rate
    assert t_cond < t_full, (t_cond, t_full)


def test_conditional_executor_near_parity_at_full_activity(counter):
    model = counter.flow.compile()
    n = 4096
    stim = _uniform_stim(n, 200, 1.0)
    timed = _batch_times(model, n, stim, ("graph", "graph-conditional"), 3)
    t_full, _ = timed["graph"]
    t_cond, _ = timed["graph-conditional"]
    # Acceptance bound is 10%; leave headroom for shared-runner noise.
    assert t_cond < t_full * 1.25, (t_cond, t_full)


def test_sweep_report_shape(tmp_path, counter):
    payload = run_activity_sweep(
        n=256, cycles=40, activities=(0.1, 1.0), repeats=1,
        include_event_driven=False,
    )
    out = tmp_path / "BENCH_activity.json"
    write_report(payload, str(out))
    loaded = json.loads(out.read_text())
    assert loaded["bench"] == "activity_ablation"
    assert [r["activity"] for r in loaded["results"]] == [0.1, 1.0]
    for rec in loaded["results"]:
        assert rec["batch_conditional_seconds"] > 0
        assert rec["batch_fused_seconds"] > 0
        assert rec["fused_over_full"] > 0
        assert 0.0 <= rec["skip_rate"] <= 1.0


def test_activity_sweep_benchmark(benchmark, counter):
    graph = counter.graph
    spec = generate_scalar_model(graph)
    stim = _stim_with_activity(counter.graph.design, 0.5, CYCLES)

    def run():
        sim = EssentSim(graph, spec)
        for step in stim.lane(0):
            sim.cycle(step)
        return sim.activity_factor

    benchmark.pedantic(run, rounds=3, iterations=1)


if __name__ == "__main__":
    raise SystemExit(main())
