"""Experiment harness: regenerates every table and figure of the paper.

Usage::

    python -m benchmarks.harness --experiment table2 [--scale default]
    python -m benchmarks.harness --all --scale quick

Each experiment prints a paper-style table and writes its rows to
``benchmarks/results/<experiment>.json`` (plus ``.txt`` for the rendered
table); EXPERIMENTS.md records paper-vs-measured for every experiment.

Scales: ``quick`` (seconds per experiment), ``default`` (a few minutes),
``paper`` (stretches toward the paper's axes; hours on a laptop).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Tuple

import numpy as np

from benchmarks.common import (
    DEVICE_COMPUTE_SCALE,
    SCALES,
    PreparedDesign,
    load_design,
    make_batch_sim,
    measure_lane_seconds,
    modeled_cpu_batch_seconds,
    save_result,
    save_text,
    time_rtlflow,
    time_rtlflow_pipeline,
    time_rtlflow_projected,
)
from repro import obs
from repro.analysis.metrics import transpilation_row
from repro.analysis.report import format_table
from repro.gpu.device import SimulatedDevice
from repro.gpu.timeline import TimelineSpan, render_timeline
from repro.obs import Tracer
from repro.partition.mcmc import Estimator
from repro.partition.merge import partition
from repro.utils.timing import format_duration

PAPER_CPU_WORKERS = 80  # the paper's Machine 1 (80 threads)

# Benchmark designs per experiment family (sizes tuned per scale).
_DESIGN_PARAMS = {
    "quick": {"riscv": {}, "spinal": {"taps": 4}, "nvdla": {"pes": 4}},
    "default": {"riscv": {}, "spinal": {"taps": 8}, "nvdla": {"pes": 8}},
    "paper": {"riscv": {}, "spinal": {"taps": 16}, "nvdla": {"pes": 32}},
}


def _designs(scale: str, names=("spinal", "nvdla")) -> List[PreparedDesign]:
    params = _DESIGN_PARAMS[scale]
    out = []
    for n in names:
        key = "riscv" if n == "riscv_mini" else n
        out.append(load_design(n, **params.get(key, {})))
    return out


# ---------------------------------------------------------------------------
# Table 1: transpilation statistics
# ---------------------------------------------------------------------------


def run_table1(scale: str = "default") -> str:
    rows = []
    payload = {}
    for prep in _designs(scale, ("riscv_mini", "spinal", "nvdla")):
        verilog_loc = sum(
            1 for l in prep.bundle.source.splitlines()
            if l.strip() and not l.strip().startswith("//")
        )
        r = transpilation_row(prep.graph)
        v, f = r["verilator"], r["rtlflow"]
        rows.append(
            [
                prep.name,
                verilog_loc,
                r["design"]["ast_nodes"],
                v.loc, f"{v.cc_avg:.1f}", v.tokens,
                f"{v.transpile_seconds * 1000:.0f}ms",
                f.loc, f"{f.cc_avg:.1f}", f.tokens,
                f"{f.transpile_seconds * 1000:.0f}ms",
            ]
        )
        payload[prep.name] = {
            "verilog_loc": verilog_loc,
            "ast_nodes": r["design"]["ast_nodes"],
            "verilator": v.as_row(),
            "rtlflow": f.as_row(),
        }
    text = format_table(
        ["design", "Verilog LOC", "#AST nodes",
         "V.LOC", "V.CC", "V.#Tok", "V.T_trans",
         "R.LOC", "R.CC", "R.#Tok", "R.T_trans"],
        rows,
        title="Table 1: transpiled-code statistics (V = Verilator-style scalar, "
              "R = RTLflow batch)",
    )
    save_result("table1", payload)
    save_text("table1", text)
    return text


# ---------------------------------------------------------------------------
# Table 2: overall Verilator-80t vs RTLflow
# ---------------------------------------------------------------------------


def run_table2(scale: str = "default") -> str:
    cfg = SCALES[scale]
    rows = []
    payload = []
    for prep in _designs(scale, ("spinal", "nvdla")):
        for cycles in cfg["cycles"]:
            lane_s = measure_lane_seconds(prep, cycles)
            # Span the break-even point: the paper's Table 2 starts below
            # it (256 stimulus) and ends far above (65536).
            for n in [s * 8 for s in cfg["stim"]] + [cfg["stim"][-1] * 32]:
                cpu_s = modeled_cpu_batch_seconds(lane_s, n, PAPER_CPU_WORKERS)
                host_s, proj_s, _ = time_rtlflow_projected(prep, n, cycles)
                speedup = cpu_s / proj_s
                rows.append(
                    [prep.name, n, cycles,
                     format_duration(cpu_s), format_duration(host_s),
                     format_duration(proj_s), f"{speedup:.1f}x"]
                )
                payload.append(
                    {"design": prep.name, "stimulus": n, "cycles": cycles,
                     "verilator_s": cpu_s, "rtlflow_host_s": host_s,
                     "rtlflow_projected_s": proj_s, "speedup": speedup}
                )
    text = format_table(
        ["design", "#stimulus", "#cycles", "Verilator(80t, modeled)",
         "RTLflow(host)", "RTLflow(projected A6000)", "speed-up"],
        rows,
        title="Table 2: elapsed simulation time, Verilator 80 threads vs "
              f"RTLflow (device projection x{DEVICE_COMPUTE_SCALE:.0f}, "
              "see benchmarks/common.py)",
    )
    save_result("table2", payload)
    save_text("table2", text)
    return text


# ---------------------------------------------------------------------------
# Table 3: MCMC partitioning vs default weights
# ---------------------------------------------------------------------------


def run_table3(scale: str = "default") -> str:
    cfg = SCALES[scale]
    prep = _designs(scale, ("nvdla",))[0]
    graph = prep.graph

    iters = cfg["mcmc_iters"]
    est_n = min(cfg["stim"])
    result = prep.flow.optimize_partition(
        n_stimulus=est_n, cycles=8, max_iter=iters, max_unimproved=max(4, iters // 3)
    )

    rows = []
    payload = {"mcmc": {
        "iterations": result.iterations,
        "evaluations": result.evaluations,
        "initial_cost": result.initial_cost,
        "best_cost": result.best_cost,
        "improvement": result.improvement,
    }, "rows": []}
    for cycles in cfg["cycles"]:
        for n in cfg["stim"][-2:]:
            # Simulated device seconds with measured kernel times at this
            # n; min over trials (timing noise on a shared host can exceed
            # the partitioning gap in a single estimate).
            est = Estimator(graph, n_stimulus=n, cycles=cycles, seed=3,
                            repeats=3)
            default_cost = min(
                est.estimate_cost(partition(graph)) for _ in range(2)
            )
            mcmc_cost = min(
                est.estimate_cost(partition(graph, weights=result.weights))
                for _ in range(2)
            )
            imp = (default_cost - mcmc_cost) / default_cost
            rows.append(
                [n, cycles, f"{default_cost:.3f}s", f"{mcmc_cost:.3f}s",
                 f"{imp * 100:+.1f}%"]
            )
            payload["rows"].append(
                {"stimulus": n, "cycles": cycles,
                 "default_s": default_cost, "mcmc_s": mcmc_cost,
                 "improvement": imp}
            )
    text = format_table(
        ["#stimulus", "#cycles", "RTLflow^-g (default)", "RTLflow (MCMC)",
         "improvement"],
        rows,
        title=f"Table 3: GPU-aware MCMC partitioning on {prep.name} "
              f"({result.iterations} sampling iterations)",
    )
    save_result("table3", payload)
    save_text("table3", text)
    return text


# ---------------------------------------------------------------------------
# Table 4: CUDA Graph vs stream execution
# ---------------------------------------------------------------------------


def run_table4(scale: str = "default") -> str:
    cfg = SCALES[scale]
    n = cfg["stim"][-1]
    rows = []
    payload = []
    for prep in _designs(scale, ("spinal", "nvdla")):
        # Launch overheads accumulate with cycle count (the paper uses
        # 10K-500K cycles here), so run the long-cycle configurations.
        for cycles in (cfg["cycles"][-1], cfg["cycles"][-1] * 4):
            # Best of two trials per executor: wall noise on a shared host
            # can exceed the scheduling gap at small scales.
            def run(executor):
                best = None
                for _ in range(2):
                    dev = SimulatedDevice()
                    wall, _ = time_rtlflow(prep, n, cycles, executor=executor,
                                           device=dev)
                    total = wall + dev.stats.overhead_seconds
                    busy = dev.stats.busy_seconds
                    # Projection (DESIGN.md §2): kernel compute runs on the
                    # device at the spec-calibrated scale; the scheduling
                    # bookkeeping (wall - busy) and the modeled CUDA call
                    # latencies stay at host cost — exactly the fraction
                    # CUDA Graph eliminates.
                    projected = (
                        max(0.0, wall - busy)
                        + busy / DEVICE_COMPUTE_SCALE
                        + dev.stats.overhead_seconds
                    )
                    if best is None or total < best[0]:
                        best = (total, projected, dev)
                return best

            stream_total, stream_proj, stream_dev = run("stream")
            graph_total, graph_proj, graph_dev = run("graph")
            rows.append(
                [prep.name, n, cycles,
                 f"{stream_total:.2f}s", f"{graph_total:.2f}s",
                 f"{stream_total / graph_total:.1f}x",
                 f"{stream_proj:.2f}s", f"{graph_proj:.2f}s",
                 f"{stream_proj / graph_proj:.1f}x"]
            )
            payload.append(
                {"design": prep.name, "stimulus": n, "cycles": cycles,
                 "stream_s": stream_total, "graph_s": graph_total,
                 "stream_projected_s": stream_proj,
                 "graph_projected_s": graph_proj,
                 "stream_cuda_calls": stream_dev.stats.kernel_launches
                 + stream_dev.stats.event_ops,
                 "graph_launches": graph_dev.stats.graph_launches}
            )
    text = format_table(
        ["design", "#stimulus", "#cycles", "stream(host)", "graph(host)",
         "host speed-up", "stream(projected)", "graph(projected)",
         "projected speed-up"],
        rows,
        title="Table 4: CUDA Graph vs stream-based execution "
              "(host-measured and projected-device times)",
    )
    save_result("table4", payload)
    save_text("table4", text)
    return text


# ---------------------------------------------------------------------------
# Table 5 / Fig 15: pipeline scheduling
# ---------------------------------------------------------------------------


def run_table5(scale: str = "default") -> str:
    cfg = SCALES[scale]
    cycles = cfg["cycles"][0]
    rows = []
    payload = []
    for prep in _designs(scale, ("spinal", "nvdla")):
        # The pipeline matters in the input-bound regime (large batches).
        for n in [s * 4 for s in cfg["stim"]]:
            report, _ = time_rtlflow_pipeline(prep, n, cycles, groups=4,
                                              cpu_workers=4)
            seq = report.sequential_makespan
            pipe = report.pipelined_makespan
            imp = (seq - pipe) / seq if seq else 0.0
            rows.append(
                [prep.name, n, cycles, f"{seq:.3f}s", f"{pipe:.3f}s",
                 f"{imp * 100:+.1f}%"]
            )
            payload.append(
                {"design": prep.name, "stimulus": n, "cycles": cycles,
                 "sequential_s": seq, "pipelined_s": pipe, "improvement": imp}
            )
    text = format_table(
        ["design", "#stimulus", "#cycles", "RTLflow^-p", "RTLflow (pipeline)",
         "improvement"],
        rows,
        title="Table 5: pipeline scheduling vs per-cycle set_inputs barrier "
              "(virtual-time schedule of measured stage durations)",
    )
    save_result("table5", payload)
    save_text("table5", text)
    return text


def run_fig15(scale: str = "default") -> str:
    cfg = SCALES[scale]
    cycles = cfg["cycles"][0]
    rows = []
    payload = []
    for prep in _designs(scale, ("spinal", "nvdla")):
        for n in [s * 4 for s in cfg["stim"]]:
            report, _ = time_rtlflow_pipeline(prep, n, cycles)
            rows.append(
                [prep.name, n,
                 f"{report.sequential_utilization * 100:.1f}%",
                 f"{report.pipelined_utilization * 100:.1f}%"]
            )
            payload.append(
                {"design": prep.name, "stimulus": n,
                 "util_no_pipeline": report.sequential_utilization,
                 "util_pipeline": report.pipelined_utilization}
            )
    text = format_table(
        ["design", "#stimulus", "GPU util (RTLflow^-p)", "GPU util (RTLflow)"],
        rows,
        title="Figure 15: GPU utilization with and without pipeline scheduling",
    )
    save_result("fig15", payload)
    save_text("fig15", text)
    return text


# ---------------------------------------------------------------------------
# Fig 2: set_inputs / evaluate breakdown
# ---------------------------------------------------------------------------


def run_fig2(scale: str = "default") -> str:
    cfg = SCALES[scale]
    cycles = cfg["cycles"][0]
    prep = _designs(scale, ("nvdla",))[0]
    rows = []
    payload = []
    # The paper's axis is 1024..16384 stimulus — the regime where CPU-side
    # decode overtakes device evaluation; scale the preset counts up.
    for n in [s * 8 for s in cfg["stim"]]:
        report, _ = time_rtlflow_pipeline(
            prep, n, cycles, pipeline=False, text_inputs=True
        )
        rows.append(
            [n, f"{report.set_inputs_seconds:.3f}s",
             f"{report.evaluate_seconds:.3f}s",
             f"{report.sequential_utilization * 100:.1f}%"]
        )
        payload.append(
            {"stimulus": n,
             "set_inputs_s": report.set_inputs_seconds,
             "evaluate_s": report.evaluate_seconds,
             "gpu_utilization": report.sequential_utilization}
        )
    from repro.analysis.plots import ascii_stacked_bars

    bars = ascii_stacked_bars(
        [str(p["stimulus"]) for p in payload],
        {
            "set_inputs": [p["set_inputs_s"] for p in payload],
            "evaluate": [p["evaluate_s"] for p in payload],
        },
    )
    text = format_table(
        ["#stimulus", "set inputs (CPU)", "evaluate design (GPU)",
         "GPU utilization"],
        rows,
        title="Figure 2: runtime breakdown without pipeline scheduling "
              f"({prep.name}, {cycles} cycles)",
    ) + "\n\n" + bars
    save_result("fig2", payload)
    save_text("fig2", text)
    return text


# ---------------------------------------------------------------------------
# Fig 12: hardware platform sweep
# ---------------------------------------------------------------------------


def run_fig12(scale: str = "default") -> str:
    cfg = SCALES[scale]
    prep = _designs(scale, ("nvdla",))[0]
    n = cfg["stim"][-1] * 8  # the batch regime, where the GPU point wins
    cycles = cfg["cycles"][0]
    lane_s = measure_lane_seconds(prep, cycles)
    serial = modeled_cpu_batch_seconds(lane_s, n, 1)
    rows = []
    payload = []
    for workers in (1, 4, 16, 40, 80):
        t = modeled_cpu_batch_seconds(lane_s, n, workers)
        rows.append(
            [f"{workers} CPU", format_duration(t), f"{serial / t:.1f}x"]
        )
        payload.append({"platform": f"{workers}cpu", "seconds": t,
                        "speedup_vs_1cpu": serial / t})
    host_s, proj_s, _ = time_rtlflow_projected(prep, n, cycles)
    rows.append(
        ["1 GPU, host-measured", format_duration(host_s),
         f"{serial / host_s:.1f}x"]
    )
    rows.append(
        ["1 GPU, projected A6000 (RTLflow)", format_duration(proj_s),
         f"{serial / proj_s:.1f}x"]
    )
    payload.append({"platform": "gpu_host", "seconds": host_s,
                    "speedup_vs_1cpu": serial / host_s})
    payload.append({"platform": "gpu_projected", "seconds": proj_s,
                    "speedup_vs_1cpu": serial / proj_s})
    text = format_table(
        ["platform", "runtime", "speed-up vs 1 CPU"],
        rows,
        title=f"Figure 12: {prep.name} with {n} stimulus, {cycles} cycles "
              "(CPU workers modeled from measured per-lane time)",
    )
    save_result("fig12", payload)
    save_text("fig12", text)
    return text


# ---------------------------------------------------------------------------
# Fig 13: runtime growth over #stimulus (riscv-mini)
# ---------------------------------------------------------------------------


def run_fig13(scale: str = "default") -> str:
    cfg = SCALES[scale]
    prep = load_design("riscv_mini")
    cycles = cfg["cycles"][0]
    v_lane = measure_lane_seconds(prep, cycles, engine="verilator")
    e_lane = measure_lane_seconds(prep, cycles, engine="essent")
    stim_counts = sorted(set(cfg["stim"] + [cfg["stim"][-1] * 4]))
    rows = []
    payload = []
    for n in stim_counts:
        v = modeled_cpu_batch_seconds(v_lane, n, PAPER_CPU_WORKERS)
        e = modeled_cpu_batch_seconds(e_lane, n, PAPER_CPU_WORKERS)
        g_host, g_proj, _ = time_rtlflow_projected(prep, n, cycles)
        rows.append([n, f"{v:.3f}s", f"{e:.3f}s", f"{g_host:.3f}s",
                     f"{g_proj:.3f}s"])
        payload.append({"stimulus": n, "verilator_s": v, "essent_s": e,
                        "rtlflow_host_s": g_host, "rtlflow_projected_s": g_proj})
    from repro.analysis.plots import ascii_lineplot

    plot = ascii_lineplot(
        {
            "Verilator": [(p["stimulus"], p["verilator_s"]) for p in payload],
            "ESSENT": [(p["stimulus"], p["essent_s"]) for p in payload],
            "RTLflow": [(p["stimulus"], p["rtlflow_projected_s"]) for p in payload],
        },
        logx=True, logy=True, xlabel="#stimulus", ylabel="sec",
    )
    text = format_table(
        ["#stimulus", "Verilator(80t)", "ESSENT(80 procs)", "RTLflow(host)",
         "RTLflow(projected)"],
        rows,
        title=f"Figure 13: runtime growth over #stimulus (riscv-mini, "
              f"{cycles} cycles)",
    ) + "\n\n" + plot
    save_result("fig13", payload)
    save_text("fig13", text)
    return text


# ---------------------------------------------------------------------------
# Fig 14: partition shapes, default vs MCMC
# ---------------------------------------------------------------------------


def run_fig14(scale: str = "default") -> str:
    prep = _designs(scale, ("spinal",))[0]
    graph = prep.graph
    default_tg = partition(graph)
    cfg = SCALES[scale]
    result = prep.flow.optimize_partition(
        n_stimulus=min(cfg["stim"]), cycles=8,
        max_iter=cfg["mcmc_iters"], max_unimproved=max(4, cfg["mcmc_iters"] // 3),
    )
    mcmc_tg = partition(graph, weights=result.weights)
    rows = []
    for name, tg in (("default", default_tg), ("GPU-aware (MCMC)", mcmc_tg)):
        s = tg.stats()
        rows.append(
            [name, s["comb_tasks"], s["levels"], s["max_width"],
             f"{s['avg_width']:.1f}", f"{s['avg_task_nodes']:.1f}"]
        )
    save_text("fig14_default_dot", default_tg.to_dot())
    save_text("fig14_mcmc_dot", mcmc_tg.to_dot())
    text = format_table(
        ["partition", "comb tasks", "levels", "max concurrency",
         "avg concurrency", "avg nodes/task"],
        rows,
        title=f"Figure 14: task-graph shape on {prep.name} "
              "(DOT files in benchmarks/results/)",
    )
    save_result("fig14", {"rows": rows})
    save_text("fig14", text)
    return text


# ---------------------------------------------------------------------------
# Figs 9/10/16: execution timelines
# ---------------------------------------------------------------------------


def run_timelines(scale: str = "quick") -> str:
    prep = _designs(scale, ("spinal",))[0]
    n, cycles = 32, 3
    out = []

    # Fig 10: stream vs graph launch timeline.
    for kind in ("stream", "graph"):
        tracer = Tracer(enabled=True)
        device = SimulatedDevice(tracer=tracer)
        sim = make_batch_sim(prep, n, executor=kind, device=device)
        stim = prep.bundle.make_stimulus(n, cycles, 1)
        sim.run(stim)
        out.append(f"--- Fig 10 ({kind} execution, {cycles} cycles) ---")
        out.append(
            f"kernel launches: {device.stats.kernel_launches}, "
            f"graph launches: {device.stats.graph_launches}, "
            f"event ops: {device.stats.event_ops}, "
            f"sync calls: {device.stats.sync_calls}"
        )

    # Fig 16: pipeline timeline from the virtual schedule, rebuilt from the
    # *measured* per-(group, cycle) stage durations of a real run with
    # text-decoded stimulus (the input-bound regime the figure depicts).
    from repro.pipeline.virtualtime import makespan_pipelined, makespan_sequential

    report, _ = time_rtlflow_pipeline(
        prep, 512, 8, groups=4, cpu_workers=2, text_inputs=True
    )
    cpu = report.cpu_stage_seconds
    gpu = report.gpu_stage_seconds
    for name, fn in (("without pipeline", makespan_sequential),
                     ("with pipeline", makespan_pipelined)):
        res = fn(cpu, gpu, 2)
        spans = [TimelineSpan(r, lbl, s, e) for r, lbl, s, e in res.spans]
        out.append(f"--- Fig 16 ({name}): makespan {res.makespan * 1e3:.2f} ms, "
                   f"GPU util {res.gpu_utilization:.0%} ---")
        out.append(render_timeline(spans, width=88))
    text = "\n".join(out)
    save_text("timelines", text)
    return text


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

EXPERIMENTS: Dict[str, Callable[[str], str]] = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "fig2": run_fig2,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "fig14": run_fig14,
    "fig15": run_fig15,
    "timelines": run_timelines,
}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--experiment", "-e", choices=sorted(EXPERIMENTS),
                    action="append", default=None)
    ap.add_argument("--all", action="store_true")
    ap.add_argument("--scale", choices=sorted(SCALES), default="default")
    ap.add_argument("--trace-json", default=None, metavar="PATH",
                    help="capture a Chrome-trace JSON across the "
                         "selected experiments")
    ap.add_argument("--metrics-json", default=None, metavar="PATH",
                    help="capture a metrics snapshot JSON across the "
                         "selected experiments")
    args = ap.parse_args(argv)
    names = sorted(EXPERIMENTS) if args.all else (args.experiment or [])
    if not names:
        ap.error("pass --experiment NAME (repeatable) or --all")

    def run_all() -> None:
        tracer = obs.get_tracer()
        for name in names:
            t0 = time.perf_counter()
            print(f"\n>>> {name} (scale={args.scale})")
            with tracer.span(name, resource="harness"):
                print(EXPERIMENTS[name](args.scale))
            print(f"[{name} took {time.perf_counter() - t0:.1f}s]")

    if args.trace_json or args.metrics_json:
        with obs.capture() as (tracer, metrics):
            run_all()
        if args.trace_json:
            tracer.write_chrome_trace(args.trace_json)
            print(f"wrote {args.trace_json}")
        if args.metrics_json:
            metrics.write_json(
                args.metrics_json,
                extra={"kernels": obs.kernel_time_summary(tracer)},
            )
            print(f"wrote {args.metrics_json}")
    else:
        run_all()
    return 0


if __name__ == "__main__":
    sys.exit(main())
