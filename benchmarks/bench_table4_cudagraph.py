"""Table 4: CUDA Graph execution vs stream-based execution.

The paper's claim: define-once-run-repeatedly graph launch beats
rebuilding stream/event schedules every cycle, 2.6x-7.6x at 4096
stimulus.  Here both executors run the *same* kernels; the difference is
pure scheduling overhead (real Python bookkeeping + modeled CUDA-call
latency), so the win direction must be stable.
"""

import pytest

from benchmarks.common import load_design, time_rtlflow
from benchmarks.harness import run_table4
from repro.gpu.device import SimulatedDevice

N = 128
CYCLES = 40


@pytest.fixture(scope="module")
def spinal():
    return load_design("spinal", taps=4)


@pytest.mark.parametrize("executor", ["stream", "graph", "graph-fused"])
def test_executor_throughput(benchmark, spinal, executor):
    benchmark.pedantic(
        lambda: time_rtlflow(spinal, N, CYCLES, executor=executor),
        rounds=3, iterations=1,
    )


def test_graph_beats_stream_in_total_device_time(spinal):
    def best(executor):
        results = []
        for _ in range(3):
            dev = SimulatedDevice()
            wall, _ = time_rtlflow(spinal, N, CYCLES, executor=executor,
                                   device=dev)
            results.append(wall + dev.stats.overhead_seconds)
        return min(results)  # min-of-trials: robust to scheduler noise

    total_s = best("stream")
    total_g = best("graph")
    assert total_g < total_s, (total_g, total_s)


def test_overheads_scale_with_cycles(spinal):
    """Stream overhead accumulates per cycle; graph overhead per cycle is
    one launch (Fig. 9)."""
    dev = SimulatedDevice()
    time_rtlflow(spinal, 32, 10, executor="stream", device=dev)
    per_cycle_calls_10 = dev.stats.kernel_launches / 10
    dev2 = SimulatedDevice()
    time_rtlflow(spinal, 32, 30, executor="stream", device=dev2)
    per_cycle_calls_30 = dev2.stats.kernel_launches / 30
    assert per_cycle_calls_10 == pytest.approx(per_cycle_calls_30, rel=0.01)

    devg = SimulatedDevice()
    time_rtlflow(spinal, 32, 10, executor="graph", device=devg)
    # <= 3 graph launches per cycle: comb at each clock phase + seq at the
    # posedge (exactly the define-once-run-repeatedly pattern).
    assert devg.stats.graph_launches <= 3 * 10
    assert devg.stats.kernel_launches == 0


def test_fused_graph_is_not_slower(spinal):
    t_graph, _ = time_rtlflow(spinal, N, CYCLES, executor="graph")
    t_fused, _ = time_rtlflow(spinal, N, CYCLES, executor="graph-fused")
    # Whole-graph fusion removes per-task call overhead; allow noise.
    assert t_fused < t_graph * 1.3


def test_table4_harness():
    out = run_table4("quick")
    assert "Table 4" in out
