"""Figure 13: runtime growth over #stimulus on riscv-mini.

Paper claims checked: RTLflow's runtime grows far slower than the CPU
engines' (4x vs 102x for a 16x stimulus increase at the top end), so the
curves cross at a moderate batch size.
"""

import pytest

from benchmarks.common import (
    load_design,
    measure_lane_seconds,
    modeled_cpu_batch_seconds,
    time_rtlflow,
)
from benchmarks.harness import PAPER_CPU_WORKERS, run_fig13

CYCLES = 50


@pytest.fixture(scope="module")
def riscv():
    return load_design("riscv_mini")


def test_rtlflow_point(benchmark, riscv):
    benchmark.pedantic(
        lambda: time_rtlflow(riscv, 256, CYCLES), rounds=3, iterations=1
    )


def test_growth_ratio_favours_rtlflow(riscv):
    factor = 16
    t_small, _ = time_rtlflow(riscv, 64, CYCLES)
    t_large, _ = time_rtlflow(riscv, 64 * factor, CYCLES)
    rtl_growth = t_large / t_small

    lane_v = measure_lane_seconds(riscv, CYCLES)
    cpu_small = modeled_cpu_batch_seconds(lane_v, 64, PAPER_CPU_WORKERS)
    cpu_large = modeled_cpu_batch_seconds(lane_v, 64 * factor, PAPER_CPU_WORKERS)
    cpu_growth = cpu_large / cpu_small

    # The paper: 16x stimulus -> RTLflow 4x vs Verilator 102x.  Between
    # engines the *ratio of growths* is the robust check.
    assert rtl_growth < cpu_growth, (rtl_growth, cpu_growth)


def test_essent_slower_than_verilator_on_high_activity(riscv):
    """echo3 never idles, so event-driven skipping cannot pay for its
    bookkeeping (§2.3's high-activity regime)."""
    lane_v = measure_lane_seconds(riscv, CYCLES, engine="verilator")
    lane_e = measure_lane_seconds(riscv, CYCLES, engine="essent")
    assert lane_e > lane_v * 0.8  # at best comparable, typically slower


def test_fig13_harness():
    out = run_fig13("quick")
    assert "Figure 13" in out
