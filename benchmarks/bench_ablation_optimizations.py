"""Ablation: the inherited Verilator-lineage optimization passes.

The paper builds on Verilator's front end for its "rigorously tested"
RTL-level optimizations (inverter pushing, module inlining, constant
propagation).  This bench quantifies what our equivalents (copy
propagation + DCE + inverter pushing, `repro.elaborate.optimize`) buy:
smaller RTL graphs, fewer kernels, faster simulation — with identical
outputs.
"""

import time

import numpy as np
import pytest

from repro import RTLFlow
from repro.designs import get_design
from repro.stimulus.generator import random_batch


def _flows(name, **params):
    bundle = get_design(name, **params)
    opt = RTLFlow.from_source(bundle.source, bundle.top, optimize=True)
    raw = RTLFlow.from_source(bundle.source, bundle.top, optimize=False)
    return bundle, opt, raw


@pytest.fixture(scope="module")
def spinal_flows():
    return _flows("spinal", taps=6)


WIREY_V = """
module stage(input wire [15:0] x, output wire [15:0] y);
    wire [15:0] a, b, c;
    assign a = x;
    assign b = a;
    assign c = b ^ 16'h5A5A;
    assign y = c;
endmodule
module wirey(input wire [15:0] din, output wire [15:0] dout);
    wire [15:0] w0, w1, w2;
    stage s0 (.x(din), .y(w0));
    stage s1 (.x(w0), .y(w1));
    stage s2 (.x(w1), .y(w2));
    assign dout = w2;
endmodule
"""


def test_graph_shrinks():
    opt = RTLFlow.from_source(WIREY_V, "wirey", optimize=True)
    raw = RTLFlow.from_source(WIREY_V, "wirey", optimize=False)
    assert opt.graph.stats()["comb_nodes"] < raw.graph.stats()["comb_nodes"]
    assert opt.graph.stats()["signals"] < raw.graph.stats()["signals"]
    # Only the three XOR stages plus the output remain.
    assert opt.graph.stats()["comb_nodes"] <= 4


def test_graph_never_grows(spinal_flows):
    _, opt, raw = spinal_flows
    assert opt.graph.stats()["comb_nodes"] <= raw.graph.stats()["comb_nodes"]
    assert opt.graph.stats()["signals"] <= raw.graph.stats()["signals"]


def test_outputs_identical(spinal_flows):
    bundle, opt, raw = spinal_flows
    n = 16
    stim = bundle.make_stimulus(n, 40, seed=1)
    a = opt.simulator(n).run(stim)
    b = raw.simulator(n).run(stim)
    for k in a:
        assert np.array_equal(a[k], b[k]), k


def test_optimized_not_slower(spinal_flows):
    bundle, opt, raw = spinal_flows
    n, cycles = 128, 60
    stim = bundle.make_stimulus(n, cycles, seed=2)

    def best(flow):
        times = []
        for _ in range(4):
            sim = flow.simulator(n)
            t0 = time.perf_counter()
            sim.run(stim)
            times.append(time.perf_counter() - t0)
        return min(times)

    # Wide tolerance: the graph-shrink assertions above are the functional
    # check; this only guards against a large runtime regression.
    t_opt, t_raw = best(opt), best(raw)
    assert t_opt < t_raw * 1.4, (t_opt, t_raw)


@pytest.mark.parametrize("name,params", [
    ("riscv_mini", {}), ("nvdla", {"pes": 4}),
])
def test_all_designs_survive_optimization(name, params):
    bundle, opt, raw = _flows(name, **params)
    n = 4
    stim = bundle.make_stimulus(n, 20, seed=3)
    so = opt.simulator(n)
    sr = raw.simulator(n)
    bundle.preload(so)
    bundle.preload(sr)
    a = so.run(stim)
    b = sr.run(stim)
    for k in a:
        assert np.array_equal(a[k], b[k]), k


def test_optimization_speed(benchmark):
    from repro.elaborate.elaborator import elaborate
    from repro.elaborate.optimize import optimize_design
    from repro.elaborate.symexec import lower
    from repro.verilog.parser import parse_source

    bundle = get_design("spinal", taps=6)
    lowered = lower(elaborate(parse_source(bundle.source), bundle.top))
    benchmark.pedantic(lambda: optimize_design(lowered), rounds=5, iterations=1)
