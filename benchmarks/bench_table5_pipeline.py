"""Table 5 + Fig 16: pipeline scheduling vs per-cycle input barrier.

Paper claims checked here:

* the pipelined schedule is never slower than RTLflow^-p (the barrier
  schedule), and the gap grows with the number of stimulus;
* GPU idle time (waiting for set_inputs) shrinks under pipelining.
"""

import pytest

from benchmarks.common import load_design, time_rtlflow_pipeline
from benchmarks.harness import run_table5, run_timelines

CYCLES = 40


@pytest.fixture(scope="module")
def spinal():
    return load_design("spinal", taps=4)


def test_pipeline_run(benchmark, spinal):
    benchmark.pedantic(
        lambda: time_rtlflow_pipeline(spinal, 128, CYCLES, groups=4),
        rounds=3, iterations=1,
    )


def test_pipeline_not_slower(spinal):
    report, _ = time_rtlflow_pipeline(spinal, 256, CYCLES, groups=4)
    assert report.pipelined_makespan <= report.sequential_makespan * 1.001


def test_gap_grows_with_stimulus(spinal):
    small, _ = time_rtlflow_pipeline(spinal, 64, CYCLES, groups=4)
    large, _ = time_rtlflow_pipeline(spinal, 1024, CYCLES, groups=4)

    def gain(r):
        return (r.sequential_makespan - r.pipelined_makespan) / r.sequential_makespan

    # More stimulus -> more CPU-side decode to hide -> larger gain
    # (Table 5's 11% -> 79% trend).  Allow equality within noise.
    assert gain(large) >= gain(small) - 0.02, (gain(small), gain(large))


def test_results_identical_with_and_without_pipeline(spinal):
    r1, out1 = time_rtlflow_pipeline(spinal, 64, CYCLES, pipeline=True)
    r2, out2 = time_rtlflow_pipeline(spinal, 64, CYCLES, pipeline=False)
    import numpy as np

    for k in out1:
        assert np.array_equal(out1[k], out2[k]), k


def test_table5_harness():
    out = run_table5("quick")
    assert "Table 5" in out


def test_timelines_harness():
    out = run_timelines("quick")
    assert "Fig 16" in out
    assert "#" in out  # rendered swimlanes
