"""Lane-packed 1-bit storage over the batch axis (GSIM-style word packing).

The fused executor stores every 1-bit design signal as a bit *per lane*
inside uint64 words instead of a byte per lane: the batch of N stimulus
occupies ``W = ceil(N / 64)`` words, lane ``t`` living at bit ``t % 64``
of word ``t // 64``.  Boolean RTL operations then touch W words instead
of N bytes — 8x less memory traffic, 64 lanes per machine op — which is
the word-level packing of GSIM applied along the *stimulus* axis rather
than the signal axis.

Canonical-form invariant: **tail bits (bit positions >= N in the last
word) are always zero** in stored packed values.  Every helper here
either preserves that invariant or re-establishes it (``not_``,
``ones``); generated code relies on it so word-level comparisons
(register-commit diffing, uniform-clock checks) never see garbage.

All helpers are numpy-only and allocation-light; they are the pack/unpack
shims used at the stimulus-apply, register-commit, peek/coverage and
checkpoint boundaries (see docs/fusion.md).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

import numpy as np

WORD_BITS = 64

_U64 = np.uint64
_U8 = np.uint8


def words_for(n: int) -> int:
    """Packed words needed for a batch of ``n`` lanes."""
    return (n + WORD_BITS - 1) // WORD_BITS


def tail_mask(n: int) -> int:
    """Valid-bit mask of the *last* word for a batch of ``n`` lanes."""
    rem = n % WORD_BITS
    return (1 << rem) - 1 if rem else (1 << WORD_BITS) - 1


@lru_cache(maxsize=64)
def ones(n: int) -> np.ndarray:
    """All-lanes-one packed constant (cached, read-only)."""
    out = np.full(words_for(n), ~_U64(0), dtype=_U64)
    out[-1] = _U64(tail_mask(n))
    out.setflags(write=False)
    return out


@lru_cache(maxsize=64)
def zeros(n: int) -> np.ndarray:
    """All-lanes-zero packed constant (cached, read-only)."""
    out = np.zeros(words_for(n), dtype=_U64)
    out.setflags(write=False)
    return out


def pack(values: np.ndarray, n: int) -> np.ndarray:
    """Pack (N,) lane values into (W,) uint64 words.

    Only the low bit of each value is stored (Verilog assignment masking
    to a 1-bit target), so 2 packs as 0 — callers need not pre-mask.
    """
    v = np.asarray(values)
    if v.dtype != np.bool_:
        v = (v.astype(_U8, copy=False) & _U8(1)).view(np.bool_)
    return pack_bool(v, n)


def pack_bool(values: np.ndarray, n: int) -> np.ndarray:
    """Pack an (N,) bool (or 0/1 uint8) array into (W,) uint64 words.

    The input must already be boolean-valued; use :func:`pack` for
    arbitrary integers (it masks to the low bit first).
    """
    w = words_for(n)
    packed = np.packbits(values, bitorder="little")
    out = np.zeros(w, dtype=_U64)
    out.view(_U8)[: packed.size] = packed
    return out


class PackedWords:
    """A pre-packed (W,) word row for a 1-bit input batch.

    Stimulus pre-packing (see :func:`pack_rows`) wraps each row in this
    marker so ``DeviceArrays.write`` can store the words directly instead
    of re-packing an (N,) lane array on the hot path.  The wrapper is
    needed because a bare (W,) array would be ambiguous with an (N,) lane
    array when ``W == N``.
    """

    __slots__ = ("words",)

    def __init__(self, words: np.ndarray):
        self.words = words


def pack_rows(mat: np.ndarray, n: int) -> np.ndarray:
    """Pack a (cycles, N) matrix into (cycles, W) words, one shot.

    Row ``c`` of the result is bit-identical to ``pack(mat[c], n)`` —
    low-bit masking, little-endian lane order and zeroed tail bits
    included — but the whole stimulus is packed with three vectorized
    passes instead of ``cycles`` separate calls.
    """
    v = np.asarray(mat)
    if v.dtype != np.bool_:
        v = (v.astype(_U8, copy=False) & _U8(1)).view(np.bool_)
    packed = np.packbits(v, axis=1, bitorder="little")
    w = words_for(n)
    out = np.zeros((v.shape[0], w), dtype=_U64)
    out.view(_U8)[:, : packed.shape[1]] = packed
    return out


def unpack_u8(words: np.ndarray, n: int) -> np.ndarray:
    """Unpack (W,) words into an (N,) uint8 0/1 array."""
    return np.unpackbits(words.view(_U8), count=n, bitorder="little")


def unpack_u64(words: np.ndarray, n: int) -> np.ndarray:
    """Unpack (W,) words into an (N,) uint64 0/1 array.

    The uint64 form is what generated kernels use when a packed signal
    flows into a non-packed context (arithmetic, shifts, concats), where
    uint64 batch semantics are the contract.
    """
    return unpack_u8(words, n).astype(_U64)


def not_(words: np.ndarray, n: int) -> np.ndarray:
    """Lane-wise NOT of a packed value, tail bits re-zeroed."""
    return np.bitwise_and(np.bitwise_not(words), ones(n))


def fill(level: int, n: int) -> np.ndarray:
    """A fresh packed batch with every lane at ``level & 1``."""
    return (ones(n) if (level & 1) else zeros(n)).copy()


def blend(cur: np.ndarray, nxt: np.ndarray, mask_words: np.ndarray) -> np.ndarray:
    """Per-lane select: ``mask`` bits take ``nxt``, the rest keep ``cur``.

    Works on (W,) vectors and (K, W) matrices (mask broadcasting along
    the leading axis); the quarantine-aware packed register commit.
    """
    return (cur & ~mask_words) | (nxt & mask_words)


def uniform_level(words: np.ndarray, n: int) -> Optional[int]:
    """0/1 when every lane agrees, None when lanes diverge.

    The packed analog of ``(v == v[0]).all()`` over a byte-per-lane
    slice; used for the batch-uniform clock check on the hot path.
    """
    first = int(words[0])
    if first == 0:
        return 0 if not words.any() else None
    return 1 if bool((words == ones(n)).all()) else None
