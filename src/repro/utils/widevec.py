"""Vectorized wide-value (>64-bit) operations for batch kernels.

Verilator stores wide signals as word arrays (``VL_WIDE``); we do the
same over the batch layout: a W-bit signal (64 < W <= 512) occupies
``L = ceil(W/64)`` consecutive offsets of the ``var64`` pool, so the
batch value is a little-endian limb matrix of shape ``(L, N)`` —
``value = sum(limbs[l] << (64*l))`` per lane.

All functions take/return uint64 arrays of shape (L, N) (operands are
extended to a common limb count by the code generator) and keep values
canonical (masked to the context width by the caller's final mask).

Wide multiply/divide/modulo/power are not implemented (the bundled
designs never need them); the code generator raises a clear
UnsupportedFeatureError instead.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.utils.errors import WidthError

_U64 = np.uint64
_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)

MAX_WIDE_BITS = 512


def limbs_for(width: int) -> int:
    """Limb count for a wide width (ceil(width / 64))."""
    if width <= 0 or width > MAX_WIDE_BITS:
        raise WidthError(f"wide width {width} out of range 1..{MAX_WIDE_BITS}")
    return (width + 63) // 64


def top_mask(width: int) -> int:
    """Mask for the most-significant limb of a ``width``-bit value."""
    rem = width % 64
    return (1 << rem) - 1 if rem else (1 << 64) - 1


def extend(a: np.ndarray, limbs: int, n: int = 0) -> np.ndarray:
    """Zero-extend (L0, N) to (limbs, N).

    Accepts narrow (N,) values and 0-d scalars (an all-constant narrow
    subexpression evaluates to a numpy scalar); ``n`` supplies the lane
    count needed to broadcast a scalar.
    """
    a = np.asarray(a, dtype=_U64)
    if a.ndim == 0:
        if n <= 0:
            raise WidthError("extend() of a scalar needs the lane count")
        a = np.full((1, n), a, dtype=_U64)
    elif a.ndim == 1:  # promote a narrow (N,) value to one limb
        a = a[None, :]
    if a.shape[0] == limbs:
        return a
    if a.shape[0] > limbs:
        return a[:limbs]
    pad = np.zeros((limbs - a.shape[0], a.shape[1]), dtype=_U64)
    return np.concatenate([a, pad], axis=0)


def from_const(value: int, limbs: int, n: int) -> np.ndarray:
    """Broadcast a Python int into a (limbs, N) matrix."""
    out = np.empty((limbs, n), dtype=_U64)
    for l in range(limbs):
        out[l, :] = _U64((value >> (64 * l)) & 0xFFFFFFFFFFFFFFFF)
    return out


def mask_width(a: np.ndarray, width: int) -> np.ndarray:
    """Truncate a (L, N) value to ``width`` bits (canonicalize)."""
    limbs = limbs_for(width)
    out = extend(a, limbs).copy()
    out[limbs - 1] &= _U64(top_mask(width))
    return out


# -- arithmetic ----------------------------------------------------------------


def add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Wide addition with limb carry propagation."""
    out = np.empty_like(a)
    carry = np.zeros(a.shape[1], dtype=_U64)
    for l in range(a.shape[0]):
        s = a[l] + b[l]
        c1 = (s < a[l]).astype(_U64)
        s2 = s + carry
        c2 = (s2 < s).astype(_U64)
        out[l] = s2
        carry = c1 | c2  # at most one of them (carry chain)
    return out


def sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Wide subtraction with limb borrow propagation."""
    out = np.empty_like(a)
    borrow = np.zeros(a.shape[1], dtype=_U64)
    for l in range(a.shape[0]):
        d = a[l] - b[l]
        b1 = (a[l] < b[l]).astype(_U64)
        d2 = d - borrow
        b2 = (d < borrow).astype(_U64)
        out[l] = d2
        borrow = b1 | b2
    return out


def neg(a: np.ndarray) -> np.ndarray:
    """Wide two's-complement negation (caller masks)."""
    return add(bit_not(a), from_const(1, a.shape[0], a.shape[1]))


# -- bitwise --------------------------------------------------------------------


def bit_and(a, b):
    """Elementwise AND of limb matrices."""
    return a & b


def bit_or(a, b):
    """Elementwise OR of limb matrices."""
    return a | b


def bit_xor(a, b):
    """Elementwise XOR of limb matrices."""
    return a ^ b


def bit_not(a):
    """Elementwise NOT (caller masks the top limb)."""
    return ~a  # caller masks the top limb


# -- shifts ---------------------------------------------------------------------


def _amount(sh, n: int) -> np.ndarray:
    """Normalize a shift amount to a (N,) uint64 array."""
    arr = np.asarray(sh, dtype=_U64)
    if arr.ndim == 0:
        arr = np.full(n, arr, dtype=_U64)
    return arr


def shl(a: np.ndarray, sh: np.ndarray) -> np.ndarray:
    """Left shift by a per-lane (N,) uint64 amount."""
    L, n = a.shape
    sh = np.minimum(_amount(sh, n), _U64(64 * L))
    word = (sh >> _U64(6)).astype(np.int64)  # limb displacement
    bits = sh & _U64(63)
    out = np.zeros_like(a)
    idx = np.arange(L)[:, None] - word[None, :]  # source limb per (l, lane)
    valid0 = (idx >= 0) & (idx < L)
    src0 = np.where(valid0, idx, 0)
    lane = np.arange(n)[None, :].repeat(L, axis=0)
    low = np.where(valid0, a[src0, lane], _U64(0))
    out = low << bits[None, :]
    idx1 = idx - 1
    valid1 = (idx1 >= 0) & (idx1 < L)
    src1 = np.where(valid1, idx1, 0)
    high = np.where(valid1, a[src1, lane], _U64(0))
    spill = np.where(
        bits[None, :] != 0, high >> (_U64(64) - bits[None, :]), _U64(0)
    )
    return out | spill


def shr(a: np.ndarray, sh: np.ndarray) -> np.ndarray:
    """Logical right shift by a per-lane (N,) uint64 amount."""
    L, n = a.shape
    sh = np.minimum(_amount(sh, n), _U64(64 * L))
    word = (sh >> _U64(6)).astype(np.int64)
    bits = sh & _U64(63)
    idx = np.arange(L)[:, None] + word[None, :]
    valid0 = idx < L
    src0 = np.where(valid0, idx, 0)
    lane = np.arange(n)[None, :].repeat(L, axis=0)
    low = np.where(valid0, a[src0, lane], _U64(0))
    out = low >> bits[None, :]
    idx1 = idx + 1
    valid1 = idx1 < L
    src1 = np.where(valid1, idx1, 0)
    high = np.where(valid1, a[src1, lane], _U64(0))
    spill = np.where(
        bits[None, :] != 0, high << (_U64(64) - bits[None, :]), _U64(0)
    )
    return out | spill


def shl_const(a: np.ndarray, k: int) -> np.ndarray:
    """Left shift by a compile-time constant amount (pure limb moves)."""
    L, n = a.shape
    if k <= 0:
        return a
    word, bits = divmod(k, 64)
    out = np.zeros_like(a)
    for l in range(L - 1, -1, -1):
        src = l - word
        if src < 0:
            continue
        out[l] = a[src] << _U64(bits) if bits else a[src]
        if bits and src - 1 >= 0:
            out[l] |= a[src - 1] >> _U64(64 - bits)
    return out


def shr_const(a: np.ndarray, k: int) -> np.ndarray:
    """Logical right shift by a compile-time constant amount."""
    L, n = a.shape
    if k <= 0:
        return a
    word, bits = divmod(k, 64)
    out = np.zeros_like(a)
    for l in range(L):
        src = l + word
        if src >= L:
            continue
        out[l] = a[src] >> _U64(bits) if bits else a[src]
        if bits and src + 1 < L:
            out[l] |= a[src + 1] << _U64(64 - bits)
    return out


def saturate_narrow(a: np.ndarray) -> np.ndarray:
    """Wide value as a (N,) shift/address amount: anything with high-limb
    bits set saturates to a huge value (flushes shifts, drops writes)."""
    if a.shape[0] == 1:
        return a[0]
    high = np.any(a[1:] != 0, axis=0)
    return np.where(high, _FULL, a[0])


# -- comparisons (return (N,) uint64 0/1) ----------------------------------------


def eq(a, b):
    """Wide equality -> (N,) 0/1."""
    return np.all(a == b, axis=0).astype(_U64)


def ne(a, b):
    """Wide inequality -> (N,) 0/1."""
    return np.any(a != b, axis=0).astype(_U64)


def lt(a, b):
    """Wide unsigned less-than -> (N,) 0/1 (top-limb-first)."""
    n = a.shape[1]
    result = np.zeros(n, dtype=_U64)
    decided = np.zeros(n, dtype=bool)
    for l in range(a.shape[0] - 1, -1, -1):
        less = (a[l] < b[l]) & ~decided
        greater = (a[l] > b[l]) & ~decided
        result[less] = 1
        decided |= less | greater
    return result


def le(a, b):
    """Wide unsigned less-or-equal -> (N,) 0/1."""
    return (_U64(1) - lt(b, a)).astype(_U64)


def gt(a, b):
    """Wide unsigned greater-than -> (N,) 0/1."""
    return lt(b, a)


def ge(a, b):
    """Wide unsigned greater-or-equal -> (N,) 0/1."""
    return (_U64(1) - lt(a, b)).astype(_U64)


def nonzero(a):
    """Truthiness of wide lanes -> (N,) 0/1."""
    return np.any(a != 0, axis=0).astype(_U64)


# -- reductions ------------------------------------------------------------------


def red_or(a):
    """Wide reduction OR -> (N,) 0/1."""
    return nonzero(a)


def red_and(a, width: int) -> np.ndarray:
    """Wide reduction AND of ``width``-bit lanes -> (N,) 0/1."""
    limbs = limbs_for(width)
    ok = np.ones(a.shape[1], dtype=bool)
    for l in range(limbs):
        expect = _U64(top_mask(width)) if l == limbs - 1 else _FULL
        ok &= a[l] == expect
    return ok.astype(_U64)


def red_xor(a):
    """Wide reduction XOR (parity) -> (N,) 0/1."""
    if hasattr(np, "bitwise_count"):
        counts = np.bitwise_count(a).sum(axis=0)
    else:  # pragma: no cover
        counts = np.zeros(a.shape[1], dtype=np.int64)
        v = a.copy()
        for _ in range(64):
            counts += (v & _U64(1)).sum(axis=0)
            v >>= _U64(1)
    return (counts & 1).astype(_U64)


# -- selection --------------------------------------------------------------------


def mux(cond: np.ndarray, t: np.ndarray, f: np.ndarray) -> np.ndarray:
    """(N,) cond selecting between (L, N) values.

    Accepts a 0-d/scalar cond: an all-constant condition folds to a
    numpy scalar in the generated kernels.
    """
    cond = np.asarray(cond)
    if cond.ndim == 0:
        return np.where(cond != 0, t, f)
    return np.where(cond[None, :] != 0, t, f)


def narrow(a: np.ndarray) -> np.ndarray:
    """Take the low 64 bits of a wide value as a (N,) array."""
    return a[0].copy()


def to_ints(a: np.ndarray) -> List[int]:
    """Per-lane Python ints (host-side readback)."""
    out = []
    for lane in range(a.shape[1]):
        v = 0
        for l in range(a.shape[0] - 1, -1, -1):
            v = (v << 64) | int(a[l, lane])
        out.append(v)
    return out


def from_ints(values, limbs: int) -> np.ndarray:
    """(L, N) limb matrix from per-lane Python ints."""
    n = len(values)
    out = np.empty((limbs, n), dtype=_U64)
    for lane, v in enumerate(values):
        v = int(v)
        for l in range(limbs):
            out[l, lane] = (v >> (64 * l)) & 0xFFFFFFFFFFFFFFFF
    return out
