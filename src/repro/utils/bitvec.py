"""Two-state bit-vector semantics shared by every engine in the package.

The paper's kernels are all integer arithmetic ("typical RTL simulation
workloads do not involve any floating-point operations").  This module
defines the single source of truth for how a Verilog operation behaves on
unsigned two-state values, both for

* scalar Python ints (used by the golden reference interpreter and the
  Verilator-like per-stimulus baseline), and
* numpy batch arrays (used by the RTLflow-style vectorized kernels, where
  the array axis is the stimulus axis — the analog of the CUDA thread id).

All values are kept *canonical*: masked to their declared width.  Arithmetic
is performed modulo 2**64 and truncated on assignment, mirroring Verilator's
two-state evaluation.
"""

from __future__ import annotations

import threading
from typing import Union

import numpy as np

from repro.utils.errors import WidthError

# The four fixed-width GPU memory pools of the paper (Fig. 7).
POOL_WIDTHS = (8, 16, 32, 64)
POOL_NAMES = ("var8", "var16", "var32", "var64")
POOL_DTYPES = (np.uint8, np.uint16, np.uint32, np.uint64)

MAX_WIDTH = 64  # pool element width cap (one limb)
MAX_TOTAL_WIDTH = 512  # wide signals span multiple var64 limbs

_U64 = np.uint64

Scalar = int
Batch = np.ndarray
Value = Union[int, np.ndarray]


def mask(width: int) -> int:
    """Bit mask with ``width`` low bits set (wide widths allowed)."""
    if width <= 0 or width > MAX_TOTAL_WIDTH:
        raise WidthError(
            f"width {width} out of supported range 1..{MAX_TOTAL_WIDTH}"
        )
    return (1 << width) - 1


def truncate(value: int, width: int) -> int:
    """Truncate a scalar to ``width`` bits (Verilog assignment semantics)."""
    return value & mask(width)


def pool_for_width(width: int) -> int:
    """Index of the smallest pool (var8..var64) that fits ``width`` bits.

    This is the allocation rule of §3.1.2: "a variable is stored into the
    smallest of the four types that fits the width of the variable".
    Wide signals (>64 bits) live in var64 as multiple consecutive limbs;
    the layout handles that case via :func:`repro.utils.widevec.limbs_for`.
    """
    if width <= 0:
        raise WidthError(f"width must be positive, got {width}")
    for i, w in enumerate(POOL_WIDTHS):
        if width <= w:
            return i
    if width <= MAX_TOTAL_WIDTH:
        return 3  # var64, multi-limb
    raise WidthError(
        f"signal width {width} exceeds the {MAX_TOTAL_WIDTH}-bit limit"
    )


def dtype_for_width(width: int) -> np.dtype:
    """Numpy dtype of the pool that stores a ``width``-bit variable."""
    return np.dtype(POOL_DTYPES[pool_for_width(width)])


# ---------------------------------------------------------------------------
# Scalar (single stimulus) operation semantics.
#
# Operands are canonical unsigned Python ints; results are NOT masked to a
# target width (assignment masking happens at the store), but they are
# always non-negative and bounded by 64-bit modular arithmetic where the
# operator can overflow.
# ---------------------------------------------------------------------------

_MOD64 = 1 << 64


def s_add(a: int, b: int) -> int:
    """``(a + b) mod 2**64`` (scalar)."""
    return (a + b) % _MOD64


def s_sub(a: int, b: int) -> int:
    """``(a - b) mod 2**64`` (scalar)."""
    return (a - b) % _MOD64


def s_mul(a: int, b: int) -> int:
    """``(a * b) mod 2**64`` (scalar)."""
    return (a * b) % _MOD64


def s_div(a: int, b: int) -> int:
    """Unsigned division; divide-by-zero yields 0 (two-state)."""
    # Division by zero yields X in 4-state Verilog; two-state engines
    # (Verilator) produce 0 for the quotient.  We match that.
    return 0 if b == 0 else a // b


def s_mod(a: int, b: int) -> int:
    """Unsigned modulo; modulo-by-zero yields 0 (two-state)."""
    return 0 if b == 0 else a % b


def s_shl(a: int, b: int) -> int:
    """Left shift; amounts >= 64 flush to zero."""
    # Shift amounts >= 64 flush to zero (result width is capped at 64).
    return 0 if b >= MAX_WIDTH else (a << b) % _MOD64


def s_shr(a: int, b: int) -> int:
    """Logical right shift; amounts >= 64 flush to zero."""
    return 0 if b >= MAX_WIDTH else a >> b


def s_pow(a: int, b: int) -> int:
    """``a ** b mod 2**64`` (scalar)."""
    # Exponentiation on unsigned operands, modulo 2**64.
    return pow(a, b, _MOD64)


def s_red_and(a: int, width: int) -> int:
    """Reduction AND of a ``width``-bit value (0/1)."""
    return 1 if a == mask(width) else 0


def s_red_or(a: int, width: int) -> int:
    """Reduction OR of a value (0/1)."""
    return 1 if a != 0 else 0


def s_red_xor(a: int, width: int) -> int:
    """Reduction XOR (parity) of a value (0/1)."""
    return bin(a).count("1") & 1


def s_popcount(a: int) -> int:
    """Number of set bits."""
    return bin(a).count("1")


# ---------------------------------------------------------------------------
# Batch (vectorized, N-stimulus) operation semantics.
#
# All batch values are uint64 arrays of shape (N,).  The generated kernels
# cast pool slices up to uint64, combine, and mask back on store — this
# keeps overflow semantics identical to the scalar path.
# ---------------------------------------------------------------------------


def b_u64(a: np.ndarray) -> np.ndarray:
    """Promote a pool slice to the uint64 compute type."""
    return a.astype(_U64, copy=False)


# Optional divide-by-zero observer.  The two-state sentinel (result 0) is
# always produced regardless; when a sink is installed (the batch
# simulator does, per evaluation, when lane fault isolation is on) it
# receives the boolean zero-divisor mask so the offending lanes can be
# quarantined.  The sink is **thread-local**: the pipelined scheduler
# evaluates independent stimulus groups on concurrent threads, each with
# its own simulator, and a process-global sink would deliver one group's
# zero-divisor mask to another group's quarantine (and install/restore
# pairs on different threads would race).  ``None`` (the default) keeps
# the hot path a single getattr + test.
_div_fault_tls = threading.local()


def _get_div_fault_sink():
    """The calling thread's divide-by-zero observer (or None)."""
    return getattr(_div_fault_tls, "sink", None)


def set_div_fault_sink(sink):
    """Install a divide-by-zero observer **for the calling thread**;
    returns the thread's previous one.

    ``sink(zero_mask)`` is called with the boolean ``divisor == 0`` mask
    whenever a batch division or modulo on this thread sees a zero
    divisor.  Pass ``None`` to uninstall.  Each thread has its own slot,
    so concurrent simulators (pipeline groups) never observe each
    other's faults.
    """
    prev = getattr(_div_fault_tls, "sink", None)
    _div_fault_tls.sink = sink
    return prev


def b_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Batch unsigned division; divide-by-zero lanes yield 0."""
    zero = b == 0
    sink = getattr(_div_fault_tls, "sink", None)
    if sink is not None and zero.any():
        sink(zero)
    safe = np.where(zero, _U64(1), b)
    q = a // safe
    return np.where(zero, _U64(0), q)


def b_mod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Batch unsigned modulo; modulo-by-zero lanes yield 0."""
    zero = b == 0
    sink = getattr(_div_fault_tls, "sink", None)
    if sink is not None and zero.any():
        sink(zero)
    safe = np.where(zero, _U64(1), b)
    r = a % safe
    return np.where(zero, _U64(0), r)


def b_shl(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Batch left shift; amounts >= 64 flush to zero per lane."""
    sh = np.minimum(b, _U64(63))
    out = a << sh
    return np.where(b >= _U64(MAX_WIDTH), _U64(0), out)


def b_shr(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Batch logical right shift; amounts >= 64 flush per lane."""
    sh = np.minimum(b, _U64(63))
    out = a >> sh
    return np.where(b >= _U64(MAX_WIDTH), _U64(0), out)


def b_pow(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise ``a ** b`` modulo 2**64 by square-and-multiply.

    Exponents in RTL are tiny in practice, but the loop is bounded by the
    64 bits of the exponent so the worst case is still constant.
    """
    result = np.ones_like(a)
    base = a.copy()
    exp = b.copy()
    for _ in range(64):
        if not exp.any():
            break
        odd = (exp & _U64(1)) != 0
        result = np.where(odd, result * base, result)
        base = base * base
        exp = exp >> _U64(1)
    return result


if hasattr(np, "bitwise_count"):

    def b_popcount(a: np.ndarray) -> np.ndarray:
        """Batch popcount (set bits per lane)."""
        return np.bitwise_count(a).astype(_U64)

else:  # pragma: no cover - numpy < 2.0 fallback

    def b_popcount(a: np.ndarray) -> np.ndarray:
        """Batch popcount (set bits per lane)."""
        v = a.astype(_U64, copy=True)
        count = np.zeros_like(v)
        for _ in range(64):
            count += v & _U64(1)
            v >>= _U64(1)
        return count


def b_red_and(a: np.ndarray, width: int) -> np.ndarray:
    """Batch reduction AND of ``width``-bit lanes (0/1)."""
    return (a == _U64(mask(width))).astype(_U64)


def b_red_or(a: np.ndarray, width: int) -> np.ndarray:
    """Batch reduction OR (0/1 per lane)."""
    return (a != 0).astype(_U64)


def b_red_xor(a: np.ndarray, width: int) -> np.ndarray:
    """Batch reduction XOR / parity (0/1 per lane)."""
    return b_popcount(a) & _U64(1)


def b_mask(a: np.ndarray, width: int) -> np.ndarray:
    """Mask batch lanes to ``width`` bits."""
    return a & _U64(mask(width))
