"""Shared low-level utilities: bit-vector semantics, timing, errors."""

from repro.utils.errors import (
    ReproError,
    VerilogSyntaxError,
    ElaborationError,
    WidthError,
    UnsupportedFeatureError,
    SimulationError,
)
from repro.utils.bitvec import (
    mask,
    truncate,
    dtype_for_width,
    pool_for_width,
    POOL_WIDTHS,
    POOL_NAMES,
)

__all__ = [
    "ReproError",
    "VerilogSyntaxError",
    "ElaborationError",
    "WidthError",
    "UnsupportedFeatureError",
    "SimulationError",
    "mask",
    "truncate",
    "dtype_for_width",
    "pool_for_width",
    "POOL_WIDTHS",
    "POOL_NAMES",
]
