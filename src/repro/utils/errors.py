"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type to handle any toolchain failure.

Errors raised against a known source construct carry a ``file:line:col``
location (``filename``/``line``/``col`` attributes) and prefix their
message with it, exactly like compiler diagnostics::

    counter.v:12:8: expected ';' after statement

``message`` always holds the un-prefixed text, so tooling (e.g. the lint
engine, which converts pipeline failures into structured diagnostics)
can re-attach the location in its own format.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by the repro toolchain.

    ``filename``/``line``/``col`` are optional; when ``line`` is nonzero
    the stringified exception is prefixed ``filename:line:col:``.
    """

    def __init__(
        self,
        message: str = "",
        *,
        filename: Optional[str] = None,
        line: int = 0,
        col: int = 0,
    ):
        self.message = message
        self.filename = filename if filename is not None else "<input>"
        self.line = line
        self.col = col
        if line:
            message = f"{self.filename}:{line}:{col}: {message}"
        super().__init__(message)

    @property
    def has_location(self) -> bool:
        return bool(self.line)


class VerilogSyntaxError(ReproError):
    """A lexing or parsing error in a Verilog source file.

    Carries the source location so that diagnostics point at the offending
    token, e.g. ``counter.v:12:8: expected ';' after statement``.  Unlike
    the other subclasses (which only prefix a location when one is known),
    syntax errors always format the ``file:line:col:`` prefix — a parse
    failure is always *somewhere* in the text.
    """

    def __init__(self, message: str, filename: str = "<input>", line: int = 0, col: int = 0):
        self.message = message
        self.filename = filename
        self.line = line
        self.col = col
        Exception.__init__(self, f"{filename}:{line}:{col}: {message}")


class ElaborationError(ReproError):
    """Design elaboration failed (unknown module, port mismatch, etc.)."""


class WidthError(ReproError):
    """A signal width is invalid or unsupported (e.g. wider than 64 bits)."""


class UnsupportedFeatureError(ReproError):
    """The source uses a Verilog feature outside the supported subset."""


class LintError(ReproError):
    """An error-severity lint diagnostic raised from an API entry point.

    ``repro lint`` reports diagnostics without raising; the library entry
    points (``RTLFlow.from_source``) raise this so that a bad design can
    never be silently simulated.  ``diagnostics`` holds every error-level
    :class:`repro.lint.Diagnostic` that fired.
    """

    def __init__(self, message: str, diagnostics=(), **kw):
        super().__init__(message, **kw)
        self.diagnostics = list(diagnostics)


class SimulationError(ReproError):
    """A runtime failure while simulating (bad stimulus, comb loop, etc.)."""


class SanitizerError(SimulationError):
    """The runtime sanitizer caught a scheduling-contract violation: a
    task wrote outside its declared footprint, two tasks in one phase
    wrote the same offset, or write epochs went non-monotone (see
    :class:`repro.verify.hazards.RuntimeSanitizer`)."""


class VerificationError(ReproError):
    """Static verification found an error-severity finding raised from an
    API entry point (``repro verify`` reports without raising; ``--verify``
    on run/campaign raises this).  ``diagnostics`` holds every
    error-level finding."""

    def __init__(self, message: str, diagnostics=(), **kw):
        super().__init__(message, **kw)
        self.diagnostics = list(diagnostics)


class ResilienceError(ReproError):
    """Base class for fault-tolerance failures (checkpointing, watchdogs)."""


class ClusterError(ReproError):
    """A sharded multi-process campaign failed: a worker raised a
    deterministic error, a shard exhausted its restart budget, or merged
    shard results are inconsistent (see :mod:`repro.cluster`)."""


class ServiceError(ReproError):
    """The campaign service rejected a request or hit an internal fault
    (unknown job, malformed spec, store corruption; see
    :mod:`repro.serve`)."""


class QueueFullError(ServiceError):
    """The service's bounded shard queue is full (backpressure): the
    submission was rejected and should be retried later.  Maps to HTTP
    429 on the wire."""


class CheckpointError(ResilienceError):
    """A durable checkpoint could not be written, read, or restored."""


class WatchdogTimeout(ResilienceError):
    """A guarded operation exceeded its watchdog timeout.

    The runner cannot forcibly kill the worker thread, so the operation
    may still be executing in the background; callers must treat its side
    effects as undefined and discard its result.
    """


class RetryExhausted(ResilienceError):
    """Every retry attempt of a guarded operation failed.

    ``last_error`` holds the exception of the final attempt and
    ``attempts`` how many were made; callers decide whether exhaustion is
    fatal (re-raise) or degradable (e.g. an MCMC trial scored as
    rejected).
    """

    def __init__(self, message: str, last_error: Optional[BaseException] = None,
                 attempts: int = 0, **kw):
        super().__init__(message, **kw)
        self.last_error = last_error
        self.attempts = attempts
