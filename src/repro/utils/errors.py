"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type to handle any toolchain failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro toolchain."""


class VerilogSyntaxError(ReproError):
    """A lexing or parsing error in a Verilog source file.

    Carries the source location so that diagnostics point at the offending
    token, e.g. ``counter.v:12:8: expected ';' after statement``.
    """

    def __init__(self, message: str, filename: str = "<input>", line: int = 0, col: int = 0):
        self.filename = filename
        self.line = line
        self.col = col
        super().__init__(f"{filename}:{line}:{col}: {message}")


class ElaborationError(ReproError):
    """Design elaboration failed (unknown module, port mismatch, etc.)."""


class WidthError(ReproError):
    """A signal width is invalid or unsupported (e.g. wider than 64 bits)."""


class UnsupportedFeatureError(ReproError):
    """The source uses a Verilog feature outside the supported subset."""


class SimulationError(ReproError):
    """A runtime failure while simulating (bad stimulus, comb loop, etc.)."""
