"""Lightweight wall-clock timing helpers used by the harness and schedulers.

:class:`Stopwatch` is now a thin facade over the unified tracer
(:mod:`repro.obs`): an always-on, aggregate-only :class:`~repro.obs.Tracer`
that keeps the historical API (``span(name)``, ``totals``, ``counts``,
``add``, ``total``, ``reset``) while sharing one implementation with the
timeline tracer.
"""

from __future__ import annotations

from typing import List

from repro.obs.trace import Tracer


class Stopwatch(Tracer):
    """Accumulates named wall-clock spans (aggregates only, no timeline).

    Used by the runtime to produce the Fig. 2 style breakdowns
    (set_inputs vs evaluate) without external profilers.
    """

    def __init__(self) -> None:
        super().__init__(enabled=True, keep_spans=False)


def format_duration(seconds: float) -> str:
    """Render seconds like the paper's tables: ``1h22m47s``, ``2m45s``, ``16s``."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1.0:
        return f"{seconds * 1000:.1f}ms"
    total = int(round(seconds))
    h, rem = divmod(total, 3600)
    m, s = divmod(rem, 60)
    parts: List[str] = []
    if h:
        parts.append(f"{h}h")
    if m or h:
        parts.append(f"{m}m")
    parts.append(f"{s}s")
    return "".join(parts)
