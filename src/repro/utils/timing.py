"""Lightweight wall-clock timing helpers used by the harness and schedulers."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List


@dataclass
class Stopwatch:
    """Accumulates named wall-clock spans.

    Used by the runtime to produce the Fig. 2 style breakdowns
    (set_inputs vs evaluate) without external profilers.
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self.totals[name] = self.totals.get(name, 0.0) + dt
            self.counts[name] = self.counts.get(name, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        return self.totals.get(name, 0.0)

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()


def format_duration(seconds: float) -> str:
    """Render seconds like the paper's tables: ``1h22m47s``, ``2m45s``, ``16s``."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1.0:
        return f"{seconds * 1000:.1f}ms"
    total = int(round(seconds))
    h, rem = divmod(total, 3600)
    m, s = divmod(rem, 60)
    parts: List[str] = []
    if h:
        parts.append(f"{h}h")
    if m or h:
        parts.append(f"{m}m")
    parts.append(f"{s}s")
    return "".join(parts)
