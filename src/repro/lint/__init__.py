"""repro.lint — rule-based static analysis for the RTL flow.

Runs a pack of structural, width, and batch-hazard rules over the typed
AST / flat design / lowered RtlGraph artifacts and returns structured
:class:`Diagnostic` records.  Exposed as ``repro lint`` on the CLI and
embedded in :meth:`repro.core.flow.RTLFlow.from_source` (errors raise
:class:`~repro.utils.errors.LintError`, warnings collect on
``flow.lint_report``).  See ``docs/lint.md`` for the rule reference.
"""

from repro.lint.diagnostics import Diagnostic, LintReport, Severity, SourceLoc
from repro.lint.engine import lint_artifacts, lint_source
from repro.lint.rules import RULES, LintContext, Rule, all_rules
from repro.lint.waivers import WaiverSet, scan_waivers

__all__ = [
    "Diagnostic",
    "LintReport",
    "Severity",
    "SourceLoc",
    "LintContext",
    "Rule",
    "RULES",
    "all_rules",
    "lint_artifacts",
    "lint_source",
    "WaiverSet",
    "scan_waivers",
]
