"""Inline lint waivers: ``// repro lint_off RULE``.

Waivers are scanned from the *raw* source text (the preprocessor strips
comments before the lexer ever sees them, so this is a separate, cheap
line scan).  Semantics follow Verilator's ``lint_off`` metacomments:

* ``// repro lint_off RULE`` disables ``RULE`` from that line to the end
  of the file (inclusive — a trailing comment on the offending line
  waives that line);
* ``// repro lint_on RULE`` re-enables it from the next line;
* ``*`` waives every rule.

Diagnostics that carry no source location can only be waived by a
file-level waiver (one that is in force from line 1).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lint.diagnostics import Diagnostic

_WAIVER_RE = re.compile(
    r"//\s*repro\s+lint_(?P<toggle>off|on)\s+(?P<rule>[A-Za-z0-9_*-]+)"
)


@dataclass
class WaiverSet:
    """Per-rule line regions in which diagnostics are suppressed.

    ``regions[rule]`` is a list of ``(start, end)`` line ranges, 1-based
    inclusive, with ``end = None`` for open-ended (to end of file).
    """

    regions: Dict[str, List[Tuple[int, Optional[int]]]] = field(default_factory=dict)

    def _covers(self, rule: str, line: int) -> bool:
        for start, end in self.regions.get(rule, ()):
            if line >= start and (end is None or line <= end):
                return True
        return False

    def is_waived(self, diag: Diagnostic) -> bool:
        # Unlocated diagnostics need a waiver in force from line 1.
        line = diag.loc.line if diag.loc is not None and diag.loc.line else 1
        return self._covers(diag.rule_id, line) or self._covers("*", line)


def scan_waivers(text: str) -> WaiverSet:
    """Collect waiver metacomments from raw source text."""
    open_since: Dict[str, int] = {}
    ws = WaiverSet()
    for lineno, line in enumerate(text.split("\n"), start=1):
        for m in _WAIVER_RE.finditer(line):
            rule = m.group("rule")
            if m.group("toggle") == "off":
                open_since.setdefault(rule, lineno)
            else:
                start = open_since.pop(rule, None)
                if start is not None:
                    ws.regions.setdefault(rule, []).append((start, lineno))
    for rule, start in open_since.items():
        ws.regions.setdefault(rule, []).append((start, None))
    return ws
