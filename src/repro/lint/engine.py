"""The lint engine: staged, failure-tolerant rule driver.

Two entry points:

* :func:`lint_source` — standalone (``repro lint``).  Runs the front end
  stage by stage and keeps linting with whatever artifacts exist: a
  design that fails to parse still gets waiver handling and a located
  ``syntax`` diagnostic; a design that parses but does not lower still
  gets the flat-stage rules (multi-driven, width checks); a design that
  lowers gets everything.  The pipeline errors the front end *would*
  raise are converted into diagnostics instead of exceptions, so one run
  reports as much as possible.

* :func:`lint_artifacts` — embedded (``RTLFlow.from_source``).  The
  pipeline already ran (and already raised on anything structural), so
  this only applies the registered rules to the artifacts in hand and
  returns the report; the flow raises :class:`~repro.utils.errors.LintError`
  if any error-severity finding survives waivers.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.lint.diagnostics import Diagnostic, LintReport, Severity, SourceLoc
from repro.lint.rules import RULES, LintContext, all_rules
from repro.lint.waivers import WaiverSet, scan_waivers
from repro.utils.errors import ReproError, VerilogSyntaxError


def _select_rules(only: Optional[Iterable[str]]) -> Sequence:
    if only is None:
        return all_rules()
    wanted = set(only)
    unknown = wanted - set(RULES)
    if unknown:
        raise ValueError(
            "unknown lint rule(s): " + ", ".join(sorted(unknown))
        )
    return [r for r in all_rules() if r.rule_id in wanted]


def _error_to_diag(rule_id: str, exc: ReproError) -> Diagnostic:
    loc = None
    if getattr(exc, "has_location", False):
        loc = SourceLoc(exc.filename, exc.line, exc.col)
    return Diagnostic(
        rule_id,
        Severity.ERROR,
        getattr(exc, "message", str(exc)),
        loc=loc,
    )


# Stage name -> the LintContext attribute that must exist for rules of
# that stage to run.  'graph' rules need the RtlGraph; 'taskgraph' and
# 'fused' rules (the verifier's stages, see repro.verify) need the
# partitioned TaskGraph / the CompiledModel respectively.
_STAGE_ATTR = {
    "flat": "flat",
    "lowered": "lowered",
    "optimized": "optimized",
    "graph": "graph",
    "taskgraph": "taskgraph",
    "fused": "model",
}


def _run_rules(
    ctx: LintContext,
    report: LintReport,
    waivers: Optional[WaiverSet],
    only: Optional[Iterable[str]],
) -> None:
    """Apply every selected rule whose stage artifact exists."""
    for r in _select_rules(only):
        attr = _STAGE_ATTR.get(r.stage)
        if attr is not None and getattr(ctx, attr, None) is None:
            continue
        for diag in r.fn(ctx):
            if waivers is not None and waivers.is_waived(diag):
                report.waived.append(diag)
            else:
                report.add(diag)


def lint_artifacts(
    ctx: LintContext,
    *,
    text: Optional[str] = None,
    rules: Optional[Iterable[str]] = None,
) -> LintReport:
    """Lint already-built artifacts (the embedded path).

    ``text`` enables ``// repro lint_off`` waiver scanning; without it
    every finding is reported.
    """
    report = LintReport(top=ctx.top, filename=ctx.filename)
    waivers = scan_waivers(text) if text is not None else None
    _run_rules(ctx, report, waivers, rules)
    return report


def lint_source(
    text: str,
    top: str,
    filename: str = "<input>",
    defines: Optional[Mapping[str, str]] = None,
    rules: Optional[Iterable[str]] = None,
) -> LintReport:
    """Lint Verilog source text, tolerating front-end failures.

    Always returns a report; never raises on bad *designs* (only on bad
    arguments, e.g. an unknown rule id).
    """
    # Imports here keep `import repro.lint` light for API consumers.
    from repro.elaborate.elaborator import elaborate
    from repro.elaborate.optimize import optimize_design
    from repro.elaborate.symexec import lower
    from repro.rtlir.build import build_graph
    from repro.verilog.parser import parse_source

    _select_rules(rules)  # validate rule ids up front
    waivers = scan_waivers(text)
    report = LintReport(top=top, filename=filename)
    ctx = LintContext(top=top, filename=filename)

    def fail(rule_id: str, exc: ReproError) -> None:
        diag = _error_to_diag(rule_id, exc)
        if waivers.is_waived(diag):
            report.waived.append(diag)
        else:
            report.add(diag)

    try:
        ctx.unit = parse_source(
            text, filename, defines=dict(defines) if defines else None
        )
    except VerilogSyntaxError as e:
        fail("syntax", e)
        return report

    try:
        ctx.flat = elaborate(ctx.unit, top)
    except ReproError as e:
        fail("elab", e)
        _run_rules(ctx, report, waivers, rules)
        return report

    try:
        ctx.lowered = lower(ctx.flat)
    except ReproError as e:
        # Lowering rejects structural problems (duplicate drivers,
        # registers in two blocks, comb+seq conflicts).  The flat-stage
        # multi-driven rule reports the same conditions with locations;
        # only surface the raw error if no rule reproduces it.
        _run_rules(ctx, report, waivers, rules)
        if not report.errors:
            fail("elab", e)
        return report

    # Run the remaining pipeline stages before the rules: the optimizer
    # feeds the unused rule's dead-logic cross-check and build_graph
    # yields the RtlGraph.  Their failure modes (width annotation, comb
    # cycles) are only surfaced if no rule reproduces them with a better
    # diagnostic.
    pipeline_exc: Optional[ReproError] = None
    try:
        ctx.optimized = optimize_design(ctx.lowered)
        ctx.graph = build_graph(ctx.optimized)
    except ReproError as e:
        pipeline_exc = e

    _run_rules(ctx, report, waivers, rules)
    if pipeline_exc is not None and not report.errors:
        fail("elab", pipeline_exc)
    return report
