"""Structured lint diagnostics.

A :class:`Diagnostic` is one finding of one rule against one design:
rule id, severity, optional source location, human message, and an
actionable hint.  A :class:`LintReport` is the ordered collection the
engine returns, with text and JSON renderers shared by the CLI, the CI
gate, and ``RTLFlow.from_source``'s embedded lint pass.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so comparisons mean what you expect."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                + ", ".join(s.name.lower() for s in cls)
            )

    def __str__(self) -> str:  # 'error', not 'Severity.ERROR'
        return self.name.lower()


@dataclass(frozen=True)
class SourceLoc:
    """A ``file:line:col`` source location (line 1-based, 0 = unknown)."""

    filename: str = "<input>"
    line: int = 0
    col: int = 0

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.col}"


@dataclass
class Diagnostic:
    """One lint finding."""

    rule_id: str
    severity: Severity
    message: str
    hint: str = ""
    loc: Optional[SourceLoc] = None
    # Primary design object (flat signal/memory name) the finding is
    # about, when there is one; used for deduplication and waivers.
    subject: Optional[str] = None

    def format(self) -> str:
        where = f"{self.loc}: " if self.loc else ""
        text = f"{where}{self.severity}: [{self.rule_id}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
        }
        if self.hint:
            out["hint"] = self.hint
        if self.subject:
            out["subject"] = self.subject
        if self.loc is not None:
            out["file"] = self.loc.filename
            out["line"] = self.loc.line
            out["col"] = self.loc.col
        return out


@dataclass
class LintReport:
    """All diagnostics the engine produced for one design."""

    top: str = ""
    filename: str = "<input>"
    diagnostics: List[Diagnostic] = field(default_factory=list)
    # Diagnostics suppressed by `// repro lint_off RULE` waivers, kept so
    # --json consumers can audit what was waived.
    waived: List[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags) -> None:
        self.diagnostics.extend(diags)

    # -- queries ---------------------------------------------------------------

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    def at_least(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= severity]

    def counts(self) -> Dict[str, int]:
        out = {str(s): 0 for s in Severity}
        for d in self.diagnostics:
            out[str(d.severity)] += 1
        return out

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def rule_ids(self) -> List[str]:
        return sorted({d.rule_id for d in self.diagnostics})

    # -- rendering -------------------------------------------------------------

    @staticmethod
    def _render_key(d: Diagnostic):
        loc = d.loc
        return (
            loc.filename if loc else "",
            loc.line if loc else 0,
            loc.col if loc else 0,
            d.rule_id,
        )

    def sorted_diagnostics(self) -> List[Diagnostic]:
        """Diagnostics in render order: (file, line, col, rule id).

        The sort is stable, so findings of one rule at one location keep
        their discovery order; ``diagnostics`` itself stays in insertion
        order (``RTLFlow.from_source`` surfaces ``errors[0]``).
        Rendering through this accessor makes text and JSON output
        byte-identical across runs regardless of rule execution order.
        """
        return sorted(self.diagnostics, key=self._render_key)

    def format_text(self) -> str:
        """The classic compiler-style listing plus a one-line summary."""
        lines = [d.format() for d in self.sorted_diagnostics()]
        c = self.counts()
        summary = (
            f"{self.top}: {c['error']} error(s), {c['warning']} warning(s), "
            f"{c['info']} info"
        )
        if self.waived:
            summary += f", {len(self.waived)} waived"
        lines.append(summary)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "top": self.top,
            "file": self.filename,
            "counts": self.counts(),
            "diagnostics": [d.to_dict() for d in self.sorted_diagnostics()],
            "waived": [
                d.to_dict()
                for d in sorted(self.waived, key=self._render_key)
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
