"""The bundled lint rule pack.

Each rule is a function from a :class:`LintContext` to an iterable of
:class:`~repro.lint.diagnostics.Diagnostic`, registered under a stable
rule id with a default severity.  Rules run against the artifacts the
front end already produces:

* ``flat`` — the elaborated :class:`~repro.elaborate.elaborator.FlatDesign`
  (typed AST statements, pre-lowering), used by the width and
  multi-driver rules so findings map to source constructs;
* ``lowered`` — the *unoptimized*
  :class:`~repro.elaborate.symexec.LoweredDesign`, used by the
  structural rules (the same node/edge shape
  :func:`repro.rtlir.build.build_graph` builds — lint mirrors its edge
  construction so it can report cycles build_graph would reject);
* ``optimized`` / ``graph`` — the optimizer's output and the final
  :class:`~repro.rtlir.graph.RtlGraph` when available, used to
  cross-check dead logic against the DCE pass.

Rules never mutate the design and never require width annotation — the
``_natural_width`` walker below computes conservative self-determined
widths without touching node fields, so lint can run on designs the
width annotator would reject.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.elaborate.constfold import try_const
from repro.elaborate.elaborator import FlatDesign
from repro.elaborate.symexec import LoweredDesign
from repro.lint.diagnostics import Diagnostic, Severity, SourceLoc
from repro.rtlir.graph import RtlGraph
from repro.verilog import ast_nodes as A

# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Rule:
    rule_id: str
    severity: Severity
    summary: str
    stage: str  # 'flat' | 'lowered'
    fn: Callable[["LintContext"], Iterable[Diagnostic]]


RULES: Dict[str, Rule] = {}

# Pipeline failures surfaced as diagnostics (not callable rules).
PASSTHROUGH_RULES = {
    "syntax": "the source failed to lex/parse",
    "elab": "elaboration or lowering failed",
}


def rule(rule_id: str, severity: Severity, stage: str, summary: str):
    def deco(fn):
        RULES[rule_id] = Rule(rule_id, severity, summary, stage, fn)
        return fn

    return deco


def all_rules() -> List[Rule]:
    return [RULES[k] for k in sorted(RULES)]


# ---------------------------------------------------------------------------
# Context
# ---------------------------------------------------------------------------


@dataclass
class LintContext:
    """Everything a rule may inspect.  Later-stage fields are ``None``
    when the pipeline failed before producing them."""

    top: str
    filename: str = "<input>"
    unit: Optional[A.SourceUnit] = None
    flat: Optional[FlatDesign] = None
    lowered: Optional[LoweredDesign] = None  # pre-optimization
    optimized: Optional[LoweredDesign] = None
    graph: Optional[RtlGraph] = None
    # Verifier stages (see repro.verify): the partitioned TaskGraph and
    # the CompiledModel.  Kept untyped to avoid importing the heavy
    # partition/codegen modules for plain lint runs.
    taskgraph: Optional[object] = None
    model: Optional[object] = None
    _synthetic: Optional[Set[str]] = field(default=None, repr=False)
    _kb_env: Optional[Dict[str, object]] = field(default=None, repr=False)

    # -- helpers shared by rules -------------------------------------------

    def loc_of(self, name: str) -> Optional[SourceLoc]:
        """Declaration location of a flat signal or memory, if known."""
        design = self.flat or self.lowered
        if design is None:
            return None
        obj = design.signals.get(name) or design.memories.get(name)
        if obj is None or not obj.line:
            return None
        return SourceLoc(self.filename, obj.line, obj.col)

    def synthetic_names(self) -> Set[str]:
        """Names the toolchain invented (concat temps, split pieces,
        function formals/returns/locals) — never user-actionable."""
        if self._synthetic is None:
            syn: Set[str] = set()
            if self.flat is not None:
                for fn in self.flat.functions.values():
                    syn.add(fn.ret)
                    syn.update(fn.formals)
                    syn.update(fn.locals_)
            if self.flat is not None:
                # Loop variables are consumed by unrolling; after lowering
                # they look like dead state but are not user-actionable.
                for raw in self.flat.always:
                    syn.update(_walk_for_vars(raw.body))
            design = self.flat or self.lowered
            if design is not None:
                for name in design.signals:
                    if name.startswith("__t") or "$" in name:
                        syn.add(name)
            self._synthetic = syn
        return self._synthetic

    def display_name(self, name: str) -> str:
        """User-facing form of a flat name (split pieces map back to the
        driven range of their base signal)."""
        if "$" in name:
            base, _, tail = name.partition("$")
            lsb, _, width = tail.partition("+")
            try:
                lo = int(lsb)
                hi = lo + int(width) - 1
                return f"{base}[{hi}:{lo}]"
            except ValueError:
                return base
        return name

    def knownbits_env(self) -> Dict[str, object]:
        """Cached known-bits facts per signal (requires ``graph``)."""
        if self._kb_env is None:
            from repro.verify.knownbits import analyze_graph

            self._kb_env = analyze_graph(self.graph)
        return self._kb_env


# ---------------------------------------------------------------------------
# Natural (self-determined) widths without annotation
# ---------------------------------------------------------------------------

_CMP_OPS = {"==", "!=", "===", "!==", "<", "<=", ">", ">="}
_LOGICAL = {"&&", "||"}
_SHIFTS = {"<<", ">>", "<<<", ">>>"}


def _natural_width(e: A.Expr, design) -> Optional[int]:
    """Self-determined width of ``e`` with unsized literals at their
    minimal width (so ``a + 1`` is not inflated to 32 bits the way
    formal Verilog sizing would — the point is catching *real* value
    loss, not integer-promotion pedantry).  ``None`` = unknown; callers
    must skip the check."""
    if isinstance(e, A.Number):
        if e.size is not None:
            return e.size
        return max(1, e.value.bit_length())
    if isinstance(e, A.Ident):
        sig = design.signals.get(e.name)
        return sig.width if sig is not None else None
    if isinstance(e, A.Unary):
        if e.op in ("~", "-", "+"):
            return _natural_width(e.operand, design)
        return 1  # reductions and !
    if isinstance(e, A.Binary):
        lw = _natural_width(e.left, design)
        rw = _natural_width(e.right, design)
        if e.op in _CMP_OPS or e.op in _LOGICAL:
            return 1
        if e.op in _SHIFTS or e.op == "**":
            return lw
        if lw is None or rw is None:
            return None
        return max(lw, rw)
    if isinstance(e, A.Ternary):
        tw = _natural_width(e.then, design)
        ow = _natural_width(e.other, design)
        if tw is None or ow is None:
            return None
        return max(tw, ow)
    if isinstance(e, A.Concat):
        total = 0
        for p in e.parts:
            w = _natural_width(p, design)
            if w is None:
                return None
            total += w
        return total
    if isinstance(e, A.Repeat):
        count = try_const(e.count)
        vw = _natural_width(e.value, design)
        if count is None or vw is None or count <= 0:
            return None
        return count * vw
    if isinstance(e, A.Index):
        if e.base in design.memories:
            return design.memories[e.base].width
        return 1 if e.base in design.signals else None
    if isinstance(e, A.PartSelect):
        msb = try_const(e.msb)
        lsb = try_const(e.lsb)
        if msb is None or lsb is None or msb < lsb:
            return None
        return msb - lsb + 1
    if isinstance(e, A.IndexedPartSelect):
        return try_const(e.part_width)
    if isinstance(e, A.FuncCall):
        fns = getattr(design, "functions", None)
        if fns and e.resolved in fns:
            return fns[e.resolved].ret_width
        return None
    return None


def _lvalue_bases(lhs: A.Expr) -> List[str]:
    """Base signal/memory names assigned by an l-value."""
    if isinstance(lhs, A.Ident):
        return [lhs.name]
    if isinstance(lhs, (A.Index, A.PartSelect, A.IndexedPartSelect)):
        return [lhs.base]
    if isinstance(lhs, A.Concat):
        out: List[str] = []
        for p in lhs.parts:
            out.extend(_lvalue_bases(p))
        return out
    return []


def _lvalue_width(lhs: A.Expr, design) -> Optional[int]:
    if isinstance(lhs, A.Ident):
        sig = design.signals.get(lhs.name)
        return sig.width if sig is not None else None
    if isinstance(lhs, A.Index):
        if lhs.base in design.memories:
            return design.memories[lhs.base].width
        return 1
    if isinstance(lhs, A.PartSelect):
        msb = try_const(lhs.msb)
        lsb = try_const(lhs.lsb)
        if msb is None or lsb is None or msb < lsb:
            return None
        return msb - lsb + 1
    if isinstance(lhs, A.IndexedPartSelect):
        return try_const(lhs.part_width)
    if isinstance(lhs, A.Concat):
        total = 0
        for p in lhs.parts:
            w = _lvalue_width(p, design)
            if w is None:
                return None
            total += w
        return total
    return None


def _walk_stmt_assigns(stmt: A.Stmt):
    """Yield every (lhs, rhs, blocking) assignment in a statement tree."""
    if isinstance(stmt, A.Block):
        for s in stmt.stmts:
            yield from _walk_stmt_assigns(s)
    elif isinstance(stmt, A.BlockingAssign):
        yield stmt.lhs, stmt.rhs, True
    elif isinstance(stmt, A.NonBlockingAssign):
        yield stmt.lhs, stmt.rhs, False
    elif isinstance(stmt, A.If):
        yield from _walk_stmt_assigns(stmt.then)
        if stmt.other is not None:
            yield from _walk_stmt_assigns(stmt.other)
    elif isinstance(stmt, A.Case):
        for item in stmt.items:
            yield from _walk_stmt_assigns(item.body)
    elif isinstance(stmt, A.For):
        yield from _walk_stmt_assigns(stmt.body)


def _all_design_reads(design: LoweredDesign) -> Set[str]:
    """Every signal/memory name read by any surviving expression."""
    reads: Set[str] = set()
    for ca in design.comb:
        reads.update(A.expr_reads(ca.expr))
    for blk in design.seq:
        for upd in blk.updates:
            reads.update(A.expr_reads(upd.expr))
        for mw in blk.mem_writes:
            reads.update(A.expr_reads(mw.cond))
            reads.update(A.expr_reads(mw.addr))
            reads.update(A.expr_reads(mw.data))
    return reads


# ---------------------------------------------------------------------------
# Structural rules (flat stage)
# ---------------------------------------------------------------------------


@rule(
    "multi-driven",
    Severity.ERROR,
    "flat",
    "a net with more than one driver (assigns and/or always blocks)",
)
def check_multi_driven(ctx: LintContext) -> Iterable[Diagnostic]:
    flat = ctx.flat
    assert flat is not None
    drivers: Dict[str, List[str]] = {}

    for lhs, _rhs in flat.assigns:
        for base in _lvalue_bases(lhs):
            if base in flat.memories:
                continue
            drivers.setdefault(base, []).append("continuous assign")

    for i, raw in enumerate(flat.always):
        kind = "sequential" if raw.is_sequential else "combinational"
        assigned: Set[str] = set()
        for lhs, _rhs, _blocking in _walk_stmt_assigns(raw.body):
            for base in _lvalue_bases(lhs):
                # Guarded memory write ports may legally coexist.
                if base not in flat.memories:
                    assigned.add(base)
        for s in _walk_for_vars(raw.body):
            assigned.add(s)
        for base in assigned:
            drivers.setdefault(base, []).append(f"{kind} always block #{i}")

    syn = ctx.synthetic_names()
    for name in sorted(drivers):
        who = drivers[name]
        if len(who) < 2 or name in syn:
            continue
        yield Diagnostic(
            "multi-driven",
            Severity.ERROR,
            f"net {ctx.display_name(name)!r} has {len(who)} drivers: "
            + ", ".join(who),
            hint="merge the drivers into one always block or one assign; "
            "use a mux for shared buses",
            loc=ctx.loc_of(name),
            subject=name,
        )


def _walk_for_vars(stmt: A.Stmt):
    """Loop variables are driven by their for statement."""
    if isinstance(stmt, A.Block):
        for s in stmt.stmts:
            yield from _walk_for_vars(s)
    elif isinstance(stmt, A.If):
        yield from _walk_for_vars(stmt.then)
        if stmt.other is not None:
            yield from _walk_for_vars(stmt.other)
    elif isinstance(stmt, A.Case):
        for item in stmt.items:
            yield from _walk_for_vars(item.body)
    elif isinstance(stmt, A.For):
        yield stmt.var
        yield from _walk_for_vars(stmt.body)


# ---------------------------------------------------------------------------
# Width rules (flat stage)
# ---------------------------------------------------------------------------


def _flat_assignments(flat: FlatDesign):
    """All (lhs, rhs) pairs of the flat design: continuous + procedural."""
    for lhs, rhs in flat.assigns:
        yield lhs, rhs
    for raw in flat.always:
        for lhs, rhs, _blocking in _walk_stmt_assigns(raw.body):
            yield lhs, rhs


@rule(
    "width-trunc",
    Severity.WARNING,
    "flat",
    "assignment silently drops high bits of the source expression",
)
def check_width_trunc(ctx: LintContext) -> Iterable[Diagnostic]:
    flat = ctx.flat
    assert flat is not None
    seen: Set[Tuple[str, int, int]] = set()
    for lhs, rhs in _flat_assignments(flat):
        tw = _lvalue_width(lhs, flat)
        nat = _natural_width(rhs, flat)
        if tw is None or nat is None or nat <= tw:
            continue
        bases = _lvalue_bases(lhs)
        name = bases[0] if bases else "<concat>"
        key = (name, nat, tw)
        if key in seen:
            continue
        seen.add(key)
        yield Diagnostic(
            "width-trunc",
            Severity.WARNING,
            f"expression of width {nat} is implicitly truncated to "
            f"{tw} bits when assigned to {ctx.display_name(name)!r}",
            hint="widen the target or select the intended bits explicitly "
            "(e.g. expr[hi:lo])",
            loc=ctx.loc_of(name),
            subject=name,
        )


@rule(
    "width-ext",
    Severity.INFO,
    "flat",
    "a plain copy implicitly zero-extends a narrower signal",
)
def check_width_ext(ctx: LintContext) -> Iterable[Diagnostic]:
    flat = ctx.flat
    assert flat is not None
    syn = ctx.synthetic_names()
    seen: Set[Tuple[str, int, int]] = set()
    for lhs, rhs in _flat_assignments(flat):
        # Only pure identifier/part-select copies; arithmetic results are
        # routinely narrower than their target and warning there is noise.
        if not isinstance(rhs, (A.Ident, A.PartSelect, A.IndexedPartSelect)):
            continue
        tw = _lvalue_width(lhs, flat)
        nat = _natural_width(rhs, flat)
        if tw is None or nat is None or nat >= tw:
            continue
        bases = _lvalue_bases(lhs)
        name = bases[0] if bases else "<concat>"
        if name in syn:
            continue
        key = (name, nat, tw)
        if key in seen:
            continue
        seen.add(key)
        yield Diagnostic(
            "width-ext",
            Severity.INFO,
            f"{ctx.display_name(name)!r} ({tw} bits) is assigned a "
            f"{nat}-bit value; high bits are implicitly zero",
            hint="pad explicitly ({{N'b0, src}}) if the extension is "
            "intentional",
            loc=ctx.loc_of(name),
            subject=name,
        )


# ---------------------------------------------------------------------------
# Combinational-graph rules (lowered stage)
# ---------------------------------------------------------------------------


def _comb_edges(design: LoweredDesign):
    """(producer, preds, succs, selfdep) over comb assignments — the same
    edge construction :func:`repro.rtlir.build.build_graph` performs over
    ``RtlGraph.comb_nodes``, tolerant of cyclic designs."""
    producer: Dict[str, int] = {}
    for i, ca in enumerate(design.comb):
        producer.setdefault(ca.target, i)
    preds: Dict[int, Set[int]] = {i: set() for i in range(len(design.comb))}
    succs: Dict[int, Set[int]] = {i: set() for i in range(len(design.comb))}
    selfdep: List[int] = []
    for i, ca in enumerate(design.comb):
        for read in set(A.expr_reads(ca.expr)):
            if read == ca.target:
                selfdep.append(i)
                continue
            p = producer.get(read)
            if p is not None and p != i:
                preds[i].add(p)
                succs[p].add(i)
    return producer, preds, succs, selfdep


def _sccs(n: int, succs: Dict[int, Set[int]]) -> List[List[int]]:
    """Iterative Tarjan: strongly connected components with > 1 node."""
    index_of: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    next_index = 0
    out: List[List[int]] = []

    for root in range(n):
        if root in index_of:
            continue
        work: List[Tuple[int, Iterable[int]]] = [(root, iter(succs.get(root, ())))]
        index_of[root] = low[root] = next_index
        next_index += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for s in it:
                if s not in index_of:
                    index_of[s] = low[s] = next_index
                    next_index += 1
                    stack.append(s)
                    on_stack.add(s)
                    work.append((s, iter(succs.get(s, ()))))
                    advanced = True
                    break
                if s in on_stack:
                    low[node] = min(low[node], index_of[s])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                comp: List[int] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                if len(comp) > 1:
                    out.append(sorted(comp))
    return out


@rule(
    "comb-loop",
    Severity.ERROR,
    "lowered",
    "a cycle through combinational logic (unsettleable in one pass)",
)
def check_comb_loop(ctx: LintContext) -> Iterable[Diagnostic]:
    design = ctx.lowered
    assert design is not None
    _producer, _preds, succs, _selfdep = _comb_edges(design)
    for comp in _sccs(len(design.comb), succs):
        names = [ctx.display_name(design.comb[i].target) for i in comp]
        path = " -> ".join(names + [names[0]])
        yield Diagnostic(
            "comb-loop",
            Severity.ERROR,
            f"combinational loop through signals: {path}",
            hint="break the feedback with a register, or restructure so "
            "each signal depends only on earlier logic",
            loc=ctx.loc_of(design.comb[comp[0]].target),
            subject=design.comb[comp[0]].target,
        )


@rule(
    "inferred-latch",
    Severity.ERROR,
    "lowered",
    "a combinational signal keeps its previous value on some path",
)
def check_inferred_latch(ctx: LintContext) -> Iterable[Diagnostic]:
    design = ctx.lowered
    assert design is not None
    _producer, _preds, _succs, selfdep = _comb_edges(design)
    for i in sorted(set(selfdep)):
        target = design.comb[i].target
        yield Diagnostic(
            "inferred-latch",
            Severity.ERROR,
            f"combinational driver of {ctx.display_name(target)!r} reads "
            "its own value — some path through the always block leaves it "
            "unassigned (inferred latch)",
            hint="assign a default at the top of the block or complete "
            "every if/case branch",
            loc=ctx.loc_of(target),
            subject=target,
        )


# ---------------------------------------------------------------------------
# Connectivity rules (lowered stage)
# ---------------------------------------------------------------------------


@rule(
    "undriven",
    Severity.WARNING,
    "lowered",
    "a signal is read but has no driver (reads as constant zero)",
)
def check_undriven(ctx: LintContext) -> Iterable[Diagnostic]:
    design = ctx.lowered
    assert design is not None
    driven: Set[str] = {ca.target for ca in design.comb}
    clocks: Set[str] = set()
    for blk in design.seq:
        clocks.add(blk.clock)
        clocks.update(blk.pseudo_async)
        driven.update(upd.target for upd in blk.updates)
    syn = ctx.synthetic_names()
    reads = _all_design_reads(design) | clocks
    for name in sorted(reads):
        sig = design.signals.get(name)
        if (
            sig is None  # memories / unknown: other rules handle them
            or name in driven
            or sig.kind == "input"
            or name in syn
        ):
            continue
        yield Diagnostic(
            "undriven",
            Severity.WARNING,
            f"signal {ctx.display_name(name)!r} is read but never driven; "
            "it reads as constant zero",
            hint="drive it, make it an input, or delete the reference",
            loc=ctx.loc_of(name),
            subject=name,
        )


@rule(
    "unused",
    Severity.WARNING,
    "lowered",
    "dead logic: a signal or memory that nothing ever reads",
)
def check_unused(ctx: LintContext) -> Iterable[Diagnostic]:
    design = ctx.lowered
    assert design is not None
    reads = _all_design_reads(design)
    keep: Set[str] = {s.name for s in design.outputs}
    for blk in design.seq:
        keep.add(blk.clock)
        keep.update(blk.pseudo_async)
    # Cross-check against the optimizer: signals DCE removed are dead by
    # construction; mention it so the finding is self-evidently true.
    eliminated: Set[str] = set()
    if ctx.optimized is not None:
        eliminated = set(design.signals) - set(ctx.optimized.signals)
    syn = ctx.synthetic_names()
    for name, sig in design.signals.items():
        if name in reads or name in keep or name in syn:
            continue
        if sig.kind == "input":
            what = f"input {ctx.display_name(name)!r} is never read"
        elif sig.is_state or any(
            upd.target == name for blk in design.seq for upd in blk.updates
        ):
            what = f"register {ctx.display_name(name)!r} is never read (dead state)"
        else:
            what = f"signal {ctx.display_name(name)!r} is never read"
        if name in eliminated:
            what += " — the optimizer deletes it (dead logic)"
        yield Diagnostic(
            "unused",
            Severity.WARNING,
            what,
            hint="remove the declaration, or waive with "
            "`// repro lint_off unused` if it documents intent",
            loc=ctx.loc_of(name),
            subject=name,
        )
    for name in design.memories:
        if name not in reads:
            yield Diagnostic(
                "unused",
                Severity.WARNING,
                f"memory {ctx.display_name(name)!r} is never read",
                hint="remove it or waive with `// repro lint_off unused`",
                loc=ctx.loc_of(name),
                subject=name,
            )


# ---------------------------------------------------------------------------
# State rules (lowered stage)
# ---------------------------------------------------------------------------


def _has_constant_arm(e: A.Expr) -> bool:
    """True if any mux arm in ``e`` is a literal constant — the shape a
    synchronous reset lowers to (``rst ? CONST : next``)."""
    if isinstance(e, A.Number):
        return True
    if isinstance(e, A.Ternary):
        return (
            isinstance(e.then, A.Number)
            or isinstance(e.other, A.Number)
            or _has_constant_arm(e.then)
            or _has_constant_arm(e.other)
        )
    return False


@rule(
    "no-reset",
    Severity.WARNING,
    "lowered",
    "a state register has no reset path (powers up undefined on hardware)",
)
def check_no_reset(ctx: LintContext) -> Iterable[Diagnostic]:
    design = ctx.lowered
    assert design is not None
    for blk in design.seq:
        if blk.pseudo_async:
            continue  # an (async) reset event covers the whole block
        for upd in blk.updates:
            if _has_constant_arm(upd.expr):
                continue
            yield Diagnostic(
                "no-reset",
                Severity.WARNING,
                f"state register {ctx.display_name(upd.target)!r} is never "
                "reset to a constant; simulation starts it at zero but "
                "hardware powers up undefined",
                hint="add a reset branch (if (rst) q <= 0;) or waive if "
                "the register is flushed by protocol",
                loc=ctx.loc_of(upd.target),
                subject=upd.target,
            )


# ---------------------------------------------------------------------------
# Batch-hazard rules (lowered stage) — specific to this flow
# ---------------------------------------------------------------------------


@rule(
    "derived-clock",
    Severity.WARNING,
    "lowered",
    "a sequential block is clocked by design logic, not a top-level input "
    "(batch lanes may see divergent edges)",
)
def check_derived_clock(ctx: LintContext) -> Iterable[Diagnostic]:
    design = ctx.lowered
    assert design is not None
    seen: Set[str] = set()
    for blk in design.seq:
        clk = blk.clock
        if clk in seen:
            continue
        seen.add(clk)
        sig = design.signals.get(clk)
        if sig is None or sig.kind == "input":
            continue
        yield Diagnostic(
            "derived-clock",
            Severity.WARNING,
            f"clock {ctx.display_name(clk)!r} is driven by design logic "
            f"(declared {sig.kind!r}); clocks are batch-uniform by "
            "contract, and lanes whose derived edges diverge are rejected "
            "at runtime",
            hint="clock from a top-level input (drive it with set_clock) "
            "and gate enables instead of gating the clock",
            loc=ctx.loc_of(clk),
            subject=clk,
        )


@rule(
    "mem-bounds",
    Severity.WARNING,
    "lowered",
    "a memory address can exceed the depth; lanes clamp/drop silently "
    "inside the var8/16/32/64 pool layout",
)
def check_mem_bounds(ctx: LintContext) -> Iterable[Diagnostic]:
    design = ctx.lowered
    assert design is not None
    seen: Set[Tuple[str, str]] = set()

    def check(mem_name: str, addr: A.Expr, access: str):
        mem = design.memories.get(mem_name)
        if mem is None:
            return None
        aw = _natural_width(addr, design)
        need = max(1, math.ceil(math.log2(mem.depth))) if mem.depth > 1 else 1
        if aw is None or aw <= need or (1 << aw) <= mem.depth:
            return None
        key = (mem_name, access)
        if key in seen:
            return None
        seen.add(key)
        behaviour = (
            "out-of-range lanes clamp to the last element"
            if access == "read"
            else "out-of-range lanes silently drop the write"
        )
        return Diagnostic(
            "mem-bounds",
            Severity.WARNING,
            f"memory {ctx.display_name(mem_name)!r} (depth {mem.depth}) is "
            f"{access}-addressed by a {aw}-bit expression (up to "
            f"{1 << aw} slots); {behaviour}, so affected lanes diverge "
            "from real hardware with no error",
            hint=f"address with exactly {need} bits "
            f"(e.g. addr[{need - 1}:0]) or guard the access with a range "
            "check",
            loc=ctx.loc_of(mem_name),
            subject=mem_name,
        )

    for blk in design.seq:
        for mw in blk.mem_writes:
            d = check(mw.mem, mw.addr, "write")
            if d:
                yield d

    def scan_reads(e: A.Expr):
        for node in A.walk_expr(e):
            if isinstance(node, A.Index) and node.base in design.memories:
                d = check(node.base, node.index, "read")
                if d:
                    yield d

    for ca in design.comb:
        yield from scan_reads(ca.expr)
    for blk in design.seq:
        for upd in blk.updates:
            yield from scan_reads(upd.expr)
        for mw in blk.mem_writes:
            for e in (mw.cond, mw.data):
                yield from scan_reads(e)


# ---------------------------------------------------------------------------
# Dataflow rules (graph stage) — powered by the known-bits engine
# ---------------------------------------------------------------------------


def _kb_describe(always: bool) -> str:
    return "always true" if always else "always false"


@rule(
    "const-cond",
    Severity.WARNING,
    "graph",
    "a mux/branch condition is provably constant, so one branch is dead",
)
def check_const_cond(ctx: LintContext) -> Iterable[Diagnostic]:
    from repro.verify import knownbits as kb

    graph = ctx.graph
    assert graph is not None
    env = ctx.knownbits_env()
    seen: Set[Tuple[str, str, bool]] = set()
    for node in graph.nodes:
        for expr in node.exprs():
            for sub in A.walk_expr(expr):
                if not isinstance(sub, A.Ternary):
                    continue
                if try_const(sub.cond) is not None:
                    continue  # literal constant: parameter math, not a bug
                t = kb.expr_bits(sub.cond, env, graph).truth()
                if t is None:
                    continue
                key = (node.target, _expr_text(sub.cond), t)
                if key in seen:
                    continue
                seen.add(key)
                yield Diagnostic(
                    "const-cond",
                    Severity.WARNING,
                    f"condition {_expr_text(sub.cond)!r} in the logic of "
                    f"{ctx.display_name(node.target)!r} is "
                    f"{_kb_describe(t)}; the "
                    f"{'else' if t else 'then'} branch is dead",
                    hint="the known-bits analysis proves the condition "
                    "constant for every reachable value; simplify the "
                    "expression or fix the width/reset logic",
                    loc=ctx.loc_of(node.target),
                    subject=node.target,
                )


@rule(
    "const-compare",
    Severity.WARNING,
    "graph",
    "a comparison always evaluates the same way",
)
def check_const_compare(ctx: LintContext) -> Iterable[Diagnostic]:
    from repro.verify import knownbits as kb

    graph = ctx.graph
    assert graph is not None
    env = ctx.knownbits_env()
    seen: Set[Tuple[str, str, bool]] = set()
    for node in graph.nodes:
        for expr in node.exprs():
            for sub in A.walk_expr(expr):
                if not (isinstance(sub, A.Binary)
                        and sub.op in ("==", "!=", "<", "<=", ">", ">=")):
                    continue
                if try_const(sub) is not None:
                    continue  # fully constant: folded parameter math
                cw = max(sub.left.ctx_width or sub.left.width,
                         sub.right.ctx_width or sub.right.width)
                if cw <= 0:
                    continue
                left = kb.expr_bits(sub.left, env, graph, width=cw)
                right = kb.expr_bits(sub.right, env, graph, width=cw)
                r = kb.compare(sub.op, left, right)
                if r is None:
                    continue
                key = (node.target, _expr_text(sub), r)
                if key in seen:
                    continue
                seen.add(key)
                yield Diagnostic(
                    "const-compare",
                    Severity.WARNING,
                    f"comparison {_expr_text(sub)!r} in the logic of "
                    f"{ctx.display_name(node.target)!r} is "
                    f"{_kb_describe(r)}",
                    hint="the operand ranges can never make this "
                    "comparison vary (often a width mismatch: a narrow "
                    "counter compared against an unreachable bound)",
                    loc=ctx.loc_of(node.target),
                    subject=node.target,
                )


@rule(
    "redundant-mask",
    Severity.INFO,
    "graph",
    "an AND mask keeps every bit that can be set — it does nothing",
)
def check_redundant_mask(ctx: LintContext) -> Iterable[Diagnostic]:
    from repro.verify import knownbits as kb

    graph = ctx.graph
    assert graph is not None
    env = ctx.knownbits_env()
    seen: Set[Tuple[str, str]] = set()
    for node in graph.nodes:
        for expr in node.exprs():
            for sub in A.walk_expr(expr):
                if not (isinstance(sub, A.Binary) and sub.op == "&"):
                    continue
                w = sub.ctx_width or sub.width
                if w <= 0 or w > 64:
                    continue
                full = (1 << w) - 1
                for m_e, x_e in ((sub.left, sub.right),
                                 (sub.right, sub.left)):
                    m = try_const(m_e)
                    if m is None or (m & full) == full:
                        continue  # no mask, or an all-ones literal
                    if try_const(x_e) is not None:
                        continue
                    x = kb.expr_bits(x_e, env, graph, width=w)
                    if x.max_value & ~m & full:
                        continue  # the mask clears at least one live bit
                    key = (node.target, _expr_text(sub))
                    if key in seen:
                        continue
                    seen.add(key)
                    yield Diagnostic(
                        "redundant-mask",
                        Severity.INFO,
                        f"mask {_expr_text(sub)!r} in the logic of "
                        f"{ctx.display_name(node.target)!r} keeps every "
                        "bit the operand can set; the AND is a no-op",
                        hint="drop the mask, or widen it if the operand "
                        "was meant to carry more bits",
                        loc=ctx.loc_of(node.target),
                        subject=node.target,
                    )
                    break


def _expr_text(e: A.Expr, depth: int = 0) -> str:
    """Compact single-line rendering of an expression for messages."""
    if depth > 4:
        return "..."
    if isinstance(e, A.Number):
        return str(e.value)
    if isinstance(e, A.Ident):
        return e.name
    if isinstance(e, A.Unary):
        return f"{e.op}{_expr_text(e.operand, depth + 1)}"
    if isinstance(e, A.Binary):
        return (f"{_expr_text(e.left, depth + 1)} {e.op} "
                f"{_expr_text(e.right, depth + 1)}")
    if isinstance(e, A.Ternary):
        return (f"{_expr_text(e.cond, depth + 1)} ? "
                f"{_expr_text(e.then, depth + 1)} : "
                f"{_expr_text(e.other, depth + 1)}")
    if isinstance(e, A.Index):
        return f"{e.base}[{_expr_text(e.index, depth + 1)}]"
    if isinstance(e, A.PartSelect):
        return (f"{e.base}[{_expr_text(e.msb, depth + 1)}:"
                f"{_expr_text(e.lsb, depth + 1)}]")
    return type(e).__name__.lower()
