"""RTL intermediate representation: the directed "RTL graph" of §2.

Nodes are logic elements (one combinational assignment, one register
update, or one guarded memory write each); edges are signal dependencies.
This is the structure the paper partitions into macro tasks.
"""

from repro.rtlir.graph import RtlGraph, RtlNode, NodeKind
from repro.rtlir.build import build_graph
from repro.rtlir.levelize import levelize, find_comb_cycle

__all__ = [
    "RtlGraph",
    "RtlNode",
    "NodeKind",
    "build_graph",
    "levelize",
    "find_comb_cycle",
]
