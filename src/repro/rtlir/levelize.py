"""Topological levelization of the combinational DAG.

Full-cycle simulation needs the comb assignments in dependency order so a
single straight-line pass settles the design (§2.2).  A cycle among comb
nodes means a combinational loop (or an inferred latch), which the paper's
flow — like Verilator — rejects.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set

from repro.utils.errors import ElaborationError


def levelize(
    nids: List[int], preds: Dict[int, Set[int]], succs: Dict[int, Set[int]]
):
    """Return (topo_order, levels) for the node ids in ``nids``.

    ``levels[i]`` holds the nodes whose longest path from any source has
    length i; nodes within a level are mutually independent (the paper's
    kernel-concurrency opportunity in Fig. 14).
    """
    indeg = {n: len(preds.get(n, ())) for n in nids}
    level: Dict[int, int] = {}
    queue = deque(n for n in nids if indeg[n] == 0)
    for n in queue:
        level[n] = 0
    order: List[int] = []
    while queue:
        n = queue.popleft()
        order.append(n)
        for s in succs.get(n, ()):
            indeg[s] -= 1
            level[s] = max(level.get(s, 0), level[n] + 1)
            if indeg[s] == 0:
                queue.append(s)
    if len(order) != len(nids):
        raise ElaborationError(
            "combinational loop detected among "
            f"{len(nids) - len(order)} node(s); see find_comb_cycle()"
        )
    nlevels = max(level.values()) + 1 if level else 0
    levels: List[List[int]] = [[] for _ in range(nlevels)]
    for n in order:
        levels[level[n]].append(n)
    return order, levels


def find_comb_cycle(
    nids: List[int], preds: Dict[int, Set[int]], succs: Dict[int, Set[int]]
) -> Optional[List[int]]:
    """Return one cycle (list of node ids) if the graph has one, else None.

    Used to produce actionable diagnostics naming the looping signals.
    """
    color: Dict[int, int] = {n: 0 for n in nids}  # 0 white, 1 grey, 2 black
    parent: Dict[int, int] = {}

    for root in nids:
        if color[root] != 0:
            continue
        stack = [(root, iter(succs.get(root, ())))]
        color[root] = 1
        while stack:
            node, it = stack[-1]
            advanced = False
            for s in it:
                if color.get(s, 2) == 0:
                    color[s] = 1
                    parent[s] = node
                    stack.append((s, iter(succs.get(s, ()))))
                    advanced = True
                    break
                if color.get(s) == 1:
                    # Found a back edge: unwind the cycle.
                    cycle = [s, node]
                    cur = node
                    while cur != s and cur in parent:
                        cur = parent[cur]
                        cycle.append(cur)
                    cycle.reverse()
                    return cycle
            if not advanced:
                color[node] = 2
                stack.pop()
    return None
