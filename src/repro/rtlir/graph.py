"""RTL graph data structures."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set

from repro.elaborate.symexec import LoweredDesign
from repro.verilog import ast_nodes as A


class NodeKind(Enum):
    COMB = "comb"  # combinational assignment target = expr
    SEQ = "seq"  # register next-value computation at a clock edge
    MEMW = "memw"  # guarded memory write at a clock edge


@dataclass
class RtlNode:
    """One logic element of the RTL graph."""

    nid: int
    kind: NodeKind
    target: str  # driven signal (COMB/SEQ) or memory (MEMW)
    expr: Optional[A.Expr] = None  # value expression (COMB/SEQ) / data (MEMW)
    cond: Optional[A.Expr] = None  # MEMW guard
    addr: Optional[A.Expr] = None  # MEMW address
    clock: Optional[str] = None  # SEQ/MEMW clock signal
    edge: str = "posedge"
    reads: List[str] = field(default_factory=list)  # signals/memories read
    op_hist: Counter = field(default_factory=Counter)
    # Topological level within the comb DAG (SEQ/MEMW nodes are level -1:
    # they all read pre-edge state and are mutually independent).
    level: int = -1

    @property
    def weight(self) -> int:
        """Default cost estimate: total op count (Verilator-style)."""
        return max(1, sum(self.op_hist.values()))

    def exprs(self):
        if self.expr is not None:
            yield self.expr
        if self.cond is not None:
            yield self.cond
        if self.addr is not None:
            yield self.addr


@dataclass
class RtlGraph:
    """The full RTL graph for one design."""

    design: LoweredDesign
    nodes: List[RtlNode] = field(default_factory=list)
    # Edges among COMB nodes only (the intra-phase scheduling constraints).
    preds: Dict[int, Set[int]] = field(default_factory=dict)
    succs: Dict[int, Set[int]] = field(default_factory=dict)
    # Comb nodes in topological order, and grouped into levels.
    comb_order: List[int] = field(default_factory=list)
    levels: List[List[int]] = field(default_factory=list)
    producer: Dict[str, int] = field(default_factory=dict)  # signal -> comb nid

    @property
    def comb_nodes(self) -> List[RtlNode]:
        return [n for n in self.nodes if n.kind is NodeKind.COMB]

    @property
    def seq_nodes(self) -> List[RtlNode]:
        return [n for n in self.nodes if n.kind is NodeKind.SEQ]

    @property
    def memw_nodes(self) -> List[RtlNode]:
        return [n for n in self.nodes if n.kind is NodeKind.MEMW]

    def node(self, nid: int) -> RtlNode:
        return self.nodes[nid]

    def op_histogram(self) -> Counter:
        """Aggregate op-type histogram over the whole design (Eq. 1 input)."""
        total: Counter = Counter()
        for n in self.nodes:
            total.update(n.op_hist)
        return total

    def top_op_types(self, k: int = 30) -> List[str]:
        """The top-k most frequent RTL node types (the paper's set T)."""
        return [t for t, _ in self.op_histogram().most_common(k)]

    def stats(self) -> Dict[str, int]:
        return {
            "signals": len(self.design.signals),
            "memories": len(self.design.memories),
            "comb_nodes": len(self.comb_nodes),
            "seq_nodes": len(self.seq_nodes),
            "memw_nodes": len(self.memw_nodes),
            "edges": sum(len(s) for s in self.succs.values()),
            "levels": len(self.levels),
            "ast_nodes": sum(sum(n.op_hist.values()) for n in self.nodes),
        }
