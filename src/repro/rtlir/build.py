"""Construction of the RTL graph from a lowered design."""

from __future__ import annotations

from collections import Counter
from typing import List

from repro.elaborate.symexec import LoweredDesign
from repro.rtlir.graph import NodeKind, RtlGraph, RtlNode
from repro.rtlir.levelize import find_comb_cycle, levelize
from repro.utils.errors import ElaborationError
from repro.verilog import ast_nodes as A
from repro.verilog.width import annotate_design


def _collect(expr: A.Expr, hist: Counter, reads: List[str]) -> None:
    for node in A.walk_expr(expr):
        hist[A.op_type_name(node)] += 1
        if isinstance(node, A.Ident):
            reads.append(node.name)
        elif isinstance(node, (A.Index, A.PartSelect, A.IndexedPartSelect)):
            reads.append(node.base)


def build_graph(design: LoweredDesign, annotate: bool = True) -> RtlGraph:
    """Build (and levelize) the RTL graph for ``design``.

    Also runs width annotation, since codegen and the interpreter both
    require sized expressions.
    """
    if annotate:
        annotate_design(design)

    g = RtlGraph(design=design)

    def add(node: RtlNode) -> RtlNode:
        g.nodes.append(node)
        return node

    for ca in design.comb:
        hist: Counter = Counter()
        reads: List[str] = []
        _collect(ca.expr, hist, reads)
        n = add(
            RtlNode(
                nid=len(g.nodes),
                kind=NodeKind.COMB,
                target=ca.target,
                expr=ca.expr,
                reads=sorted(set(reads)),
                op_hist=hist,
            )
        )
        if ca.target in g.producer:
            raise ElaborationError(f"multiple drivers for {ca.target!r}")
        g.producer[ca.target] = n.nid

    for blk in design.seq:
        for upd in blk.updates:
            hist = Counter()
            reads = []
            _collect(upd.expr, hist, reads)
            add(
                RtlNode(
                    nid=len(g.nodes),
                    kind=NodeKind.SEQ,
                    target=upd.target,
                    expr=upd.expr,
                    clock=blk.clock,
                    edge=blk.edge,
                    reads=sorted(set(reads)),
                    op_hist=hist,
                )
            )
        for mw in blk.mem_writes:
            hist = Counter()
            reads = []
            for e in (mw.cond, mw.addr, mw.data):
                _collect(e, hist, reads)
            add(
                RtlNode(
                    nid=len(g.nodes),
                    kind=NodeKind.MEMW,
                    target=mw.mem,
                    expr=mw.data,
                    cond=mw.cond,
                    addr=mw.addr,
                    clock=blk.clock,
                    edge=blk.edge,
                    reads=sorted(set(reads)),
                    op_hist=hist,
                )
            )

    # Comb-to-comb dependency edges.
    comb_ids = [n.nid for n in g.comb_nodes]
    g.preds = {n: set() for n in comb_ids}
    g.succs = {n: set() for n in comb_ids}
    for n in g.comb_nodes:
        for read in n.reads:
            p = g.producer.get(read)
            if p is not None and p != n.nid:
                g.preds[n.nid].add(p)
                g.succs[p].add(n.nid)

    # Self-dependency means an inferred latch / comb loop on one signal.
    selfdep = [
        n.target for n in g.comb_nodes if n.target in n.reads
    ]
    if selfdep:
        raise ElaborationError(
            "combinational self-dependency (inferred latch?) on: "
            + ", ".join(sorted(set(selfdep))[:8])
        )

    try:
        g.comb_order, g.levels = levelize(comb_ids, g.preds, g.succs)
    except ElaborationError:
        cyc = find_comb_cycle(comb_ids, g.preds, g.succs)
        names = [g.node(i).target for i in cyc] if cyc else []
        raise ElaborationError(
            "combinational loop through signals: " + " -> ".join(names)
        )
    for lvl, ids in enumerate(g.levels):
        for i in ids:
            g.nodes[i].level = lvl
    return g
