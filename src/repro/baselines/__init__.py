"""Baseline simulators.

* :mod:`repro.baselines.reference` — a deliberately simple AST interpreter,
  the golden model (the paper validates against Verilator's outputs; every
  engine here validates against this).
* :mod:`repro.baselines.verilator` — a Verilator-like full-cycle compiled
  CPU simulator with static macro-task scheduling and a multi-process batch
  model (§2.1, §4.1).
* :mod:`repro.baselines.essent` — an ESSENT-like event-driven simulator
  that skips inactive logic (§2.2, §2.3).
"""

from repro.baselines.reference import ReferenceSimulator

__all__ = ["ReferenceSimulator"]
