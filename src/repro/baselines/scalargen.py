"""Scalar (single-stimulus) code generation — the "Verilator column".

Transpiles the RTL graph into straight-line scalar Python (one statement
per node, Python ints, masks at stores) exactly the way Verilator
transpiles to C++ (Listing 2).  The generated module provides:

* ``comb_all(S, M)`` — the fully inlined combinational settle,
* ``seq_all_<k>(S, M)`` — next-state compute + commit + memory writes for
  clock domain k,
* per-node functions ``c<nid>``/``s<nid>``/``w<nid>`` used by the
  event-driven (ESSENT-like) engine so both baselines pay identical
  per-statement costs and differ only in scheduling.

The emitted source doubles as the Verilator-side artifact for the Table 1
transpilation metrics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.rtlir.graph import NodeKind, RtlGraph
from repro.utils import bitvec as bv
from repro.utils.errors import SimulationError
from repro.verilog import ast_nodes as A


class ScalarExprCodegen:
    """Expression -> scalar Python source (mirrors reference.eval_expr)."""

    def __init__(self, graph: RtlGraph, slot_of: Dict[str, int], mem_index: Dict[str, int]):
        self.graph = graph
        self.design = graph.design
        self.slot_of = slot_of
        self.mem_index = mem_index

    def emit(self, e: A.Expr) -> str:
        if isinstance(e, A.Number):
            return str(e.value)
        if isinstance(e, A.Ident):
            return f"S[{self.slot_of[e.name]}]"
        if isinstance(e, A.Unary):
            x = self.emit(e.operand)
            op = e.op
            if op == "!":
                return f"(0 if {x} else 1)"
            if op == "~":
                return f"((~{x}) & {bv.mask(e.ctx_width)})"
            if op == "-":
                return f"((-{x}) & {bv.mask(e.ctx_width)})"
            if op == "+":
                return x
            w = e.operand.width
            full = bv.mask(w)
            if op == "&":
                return f"(1 if ({x}) == {full} else 0)"
            if op == "|":
                return f"(1 if ({x}) != 0 else 0)"
            if op == "^":
                return f"(bin({x}).count('1') & 1)"
            if op == "~&":
                return f"(0 if ({x}) == {full} else 1)"
            if op == "~|":
                return f"(0 if ({x}) != 0 else 1)"
            if op == "~^":
                return f"(1 - (bin({x}).count('1') & 1))"
            raise SimulationError(f"unknown unary {op!r}")
        if isinstance(e, A.Binary):
            op = e.op
            l = self.emit(e.left)
            r = self.emit(e.right)
            m = bv.mask(e.ctx_width)
            if op == "+":
                return f"((({l}) + ({r})) & {m})"
            if op == "-":
                return f"((({l}) - ({r})) & {m})"
            if op == "*":
                return f"((({l}) * ({r})) & {m})"
            if op == "/":
                return f"(0 if ({r}) == 0 else ({l}) // ({r}))"
            if op == "%":
                return f"(0 if ({r}) == 0 else ({l}) % ({r}))"
            if op == "**":
                return f"pow({l}, {r}, {m + 1})"
            if op in ("<<", "<<<"):
                # Amounts at/past the context width flush (wide-safe bound).
                return (
                    f"((0 if ({r}) >= {e.ctx_width} else (({l}) << ({r}))) & {m})"
                )
            if op in (">>", ">>>"):
                return f"(0 if ({r}) >= {e.ctx_width} else (({l}) >> ({r})))"
            if op == "&":
                return f"(({l}) & ({r}))"
            if op == "|":
                return f"(({l}) | ({r}))"
            if op == "^":
                return f"(({l}) ^ ({r}))"
            if op in ("~^", "^~"):
                return f"((~(({l}) ^ ({r}))) & {m})"
            if op in ("==", "==="):
                return f"(1 if ({l}) == ({r}) else 0)"
            if op in ("!=", "!=="):
                return f"(1 if ({l}) != ({r}) else 0)"
            if op in ("<", "<=", ">", ">="):
                pyop = op
                return f"(1 if ({l}) {pyop} ({r}) else 0)"
            if op == "&&":
                return f"(1 if (({l}) and ({r})) else 0)"
            if op == "||":
                return f"(1 if (({l}) or ({r})) else 0)"
            raise SimulationError(f"unknown binary {op!r}")
        if isinstance(e, A.Ternary):
            return (
                f"(({self.emit(e.then)}) if ({self.emit(e.cond)}) "
                f"else ({self.emit(e.other)}))"
            )
        if isinstance(e, A.Concat):
            # Parts are canonical: the result is bounded by the concat's
            # self width, so no modulo is needed (wide-safe).
            acc = self.emit(e.parts[0])
            for p in e.parts[1:]:
                acc = f"((({acc}) << {p.width}) | ({self.emit(p)}))"
            return acc
        if isinstance(e, A.Repeat):
            count = getattr(e, "_count_i")
            w = e.value.width
            inner = self.emit(e.value)
            acc = f"({inner})"
            for _ in range(count - 1):
                acc = f"((({acc}) << {w}) | ({inner}))"
            return acc
        if isinstance(e, A.Index):
            idx = self.emit(e.index)
            if e.is_memory:
                mi = self.mem_index[e.base]
                depth = self.design.memories[e.base].depth
                return f"(M[{mi}][{idx}] if ({idx}) < {depth} else 0)"
            x = f"S[{self.slot_of[e.base]}]"
            bw = self.design.signals[e.base].width
            return f"((({x}) >> ({idx})) & 1 if ({idx}) < {bw} else 0)"
        if isinstance(e, A.PartSelect):
            lsb = getattr(e, "_lsb_i")
            x = f"S[{self.slot_of[e.base]}]"
            return f"((({x}) >> {lsb}) & {bv.mask(e.width)})"
        if isinstance(e, A.IndexedPartSelect):
            w = getattr(e, "_width_i")
            sig_lsb = getattr(e, "_base_lsb_i", 0)
            back = (w - 1 if e.descending else 0) + sig_lsb
            x = f"S[{self.slot_of[e.base]}]"
            bw = self.design.signals[e.base].width
            pos = f"(({self.emit(e.start)}) - {back})" if back else f"({self.emit(e.start)})"
            return (
                f"(((({x}) >> ({pos})) & {bv.mask(w)}) "
                f"if 0 <= ({pos}) < {bw} else 0)"
            )
        raise SimulationError(f"cannot generate scalar code for {type(e).__name__}")


@dataclass
class ScalarModelSpec:
    """Everything needed to rebuild the scalar simulator in a worker
    process (all fields are picklable)."""

    top: str
    source: str
    slot_of: Dict[str, int]
    widths: Dict[str, int]
    mem_index: Dict[str, int]
    mem_depths: List[int]
    mem_widths: List[int]
    mem_names: List[str]
    input_names: List[str]
    output_names: List[str]
    clock: Optional[str]
    # (clock, edge) per sequential domain index.
    domains: List[Tuple[str, str]]
    n_slots: int
    transpile_seconds: float = 0.0
    # Node-level metadata for the event-driven engine.
    comb_order: List[int] = field(default_factory=list)
    node_target_slot: Dict[int, int] = field(default_factory=dict)
    node_reads: Dict[int, List[str]] = field(default_factory=dict)
    seq_nodes_by_domain: Dict[int, List[int]] = field(default_factory=dict)
    memw_nodes_by_domain: Dict[int, List[int]] = field(default_factory=dict)
    # Memory-write node -> index of its memory in the M list.
    node_mem_index: Dict[int, int] = field(default_factory=dict)


def generate_scalar_model(graph: RtlGraph) -> ScalarModelSpec:
    """Transpile ``graph`` to the scalar simulation module."""
    t0 = time.perf_counter()
    design = graph.design
    slot_of = {name: i for i, name in enumerate(design.signals)}
    mem_names = list(design.memories)
    mem_index = {name: i for i, name in enumerate(mem_names)}
    gen = ScalarExprCodegen(graph, slot_of, mem_index)

    lines: List[str] = [
        '"""Scalar RTL simulation code transpiled by repro.baselines.',
        "",
        "Straight-line full-cycle evaluation for a single stimulus",
        '(the Verilator-style C++ analog; see Listing 2 of the paper)."""',
        "",
    ]

    # Per-node functions (for the event-driven engine).
    for node in graph.comb_nodes:
        slot = slot_of[node.target]
        m = bv.mask(design.signals[node.target].width)
        lines.append(f"def c{node.nid}(S, M):")
        lines.append(f"    S[{slot}] = ({gen.emit(node.expr)}) & {m}")
        lines.append("")
    for node in graph.seq_nodes:
        m = bv.mask(design.signals[node.target].width)
        lines.append(f"def s{node.nid}(S, M):")
        lines.append(f"    return ({gen.emit(node.expr)}) & {m}")
        lines.append("")
    for node in graph.memw_nodes:
        mw = design.memories[node.target]
        lines.append(f"def w{node.nid}(S, M):")
        lines.append(
            f"    return (({gen.emit(node.cond)}), ({gen.emit(node.addr)}), "
            f"(({gen.emit(node.expr)}) & {bv.mask(mw.width)}))"
        )
        lines.append("")

    # Fully inlined comb settle.
    lines.append("def comb_all(S, M):")
    if graph.comb_order:
        for nid in graph.comb_order:
            node = graph.nodes[nid]
            slot = slot_of[node.target]
            m = bv.mask(design.signals[node.target].width)
            lines.append(f"    S[{slot}] = ({gen.emit(node.expr)}) & {m}")
    else:
        lines.append("    pass")
    lines.append("")

    # Per-domain sequential evaluation: NBA temporaries, then commit.
    domains: List[Tuple[str, str]] = []
    seq_by_domain: Dict[int, List[int]] = {}
    memw_by_domain: Dict[int, List[int]] = {}
    for node in graph.seq_nodes + graph.memw_nodes:
        key = (node.clock or "", node.edge)
        if key not in domains:
            domains.append(key)
    for k, key in enumerate(domains):
        seq_by_domain[k] = [
            n.nid for n in graph.seq_nodes if (n.clock or "", n.edge) == key
        ]
        memw_by_domain[k] = [
            n.nid for n in graph.memw_nodes if (n.clock or "", n.edge) == key
        ]
        lines.append(f"def seq_all_{k}(S, M):")
        body_emitted = False
        for i, nid in enumerate(seq_by_domain[k]):
            node = graph.nodes[nid]
            m = bv.mask(design.signals[node.target].width)
            lines.append(f"    t{i} = ({gen.emit(node.expr)}) & {m}")
            body_emitted = True
        for j, nid in enumerate(memw_by_domain[k]):
            node = graph.nodes[nid]
            mw = design.memories[node.target]
            lines.append(f"    mw{j} = w{nid}(S, M)")
            body_emitted = True
        for i, nid in enumerate(seq_by_domain[k]):
            node = graph.nodes[nid]
            lines.append(f"    S[{slot_of[node.target]}] = t{i}")
        for j, nid in enumerate(memw_by_domain[k]):
            node = graph.nodes[nid]
            mi = mem_index[node.target]
            depth = design.memories[node.target].depth
            lines.append(
                f"    if mw{j}[0] and mw{j}[1] < {depth}: "
                f"M[{mi}][mw{j}[1]] = mw{j}[2]"
            )
        if not body_emitted:
            lines.append("    pass")
        lines.append("")

    source = "\n".join(lines)
    elapsed = time.perf_counter() - t0

    return ScalarModelSpec(
        top=design.top,
        source=source,
        slot_of=slot_of,
        widths={s.name: s.width for s in design.signals.values()},
        mem_index=mem_index,
        mem_depths=[design.memories[n].depth for n in mem_names],
        mem_widths=[design.memories[n].width for n in mem_names],
        mem_names=mem_names,
        input_names=[s.name for s in design.inputs],
        output_names=[s.name for s in design.outputs],
        clock=(design.clocks() or [None])[0],
        domains=domains,
        n_slots=len(slot_of),
        transpile_seconds=elapsed,
        comb_order=list(graph.comb_order),
        node_target_slot={
            n.nid: slot_of[n.target]
            for n in graph.nodes
            if n.kind in (NodeKind.COMB, NodeKind.SEQ)
        },
        node_reads={n.nid: list(n.reads) for n in graph.nodes},
        seq_nodes_by_domain=seq_by_domain,
        memw_nodes_by_domain=memw_by_domain,
        node_mem_index={n.nid: mem_index[n.target] for n in graph.memw_nodes},
    )
