"""Golden reference interpreter.

A deliberately simple, obviously-correct AST interpreter for one stimulus.
It is slow (it walks expression trees per cycle) but defines the semantics
every other engine must match; the differential test suite compares the
RTLflow batch kernels, the Verilator-like baseline and the ESSENT-like
baseline against it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.elaborate.symexec import LoweredDesign
from repro.rtlir.graph import RtlGraph
from repro.utils import bitvec as bv
from repro.utils.errors import SimulationError
from repro.verilog import ast_nodes as A

_MOD64 = 1 << 64


def eval_expr(
    e: A.Expr,
    state: Mapping[str, int],
    mems: Mapping[str, List[int]],
    widths: Mapping[str, int],
) -> int:
    """Evaluate an annotated expression against scalar state.

    This function is the single-stimulus semantics of the package; the
    vectorized code generator mirrors it op for op.
    """
    if isinstance(e, A.Number):
        return e.value
    if isinstance(e, A.Ident):
        return state[e.name]
    if isinstance(e, A.Unary):
        if e.op in ("&", "|", "^", "~&", "~|", "~^"):
            v = eval_expr(e.operand, state, mems, widths)
            w = e.operand.width
            if e.op == "&":
                return bv.s_red_and(v, w)
            if e.op == "|":
                return bv.s_red_or(v, w)
            if e.op == "^":
                return bv.s_red_xor(v, w)
            if e.op == "~&":
                return 1 - bv.s_red_and(v, w)
            if e.op == "~|":
                return 1 - bv.s_red_or(v, w)
            return 1 - bv.s_red_xor(v, w)
        v = eval_expr(e.operand, state, mems, widths)
        if e.op == "!":
            return 0 if v else 1
        m = bv.mask(e.ctx_width)
        if e.op == "~":
            return (~v) & m
        if e.op == "-":
            return (-v) & m
        return v  # unary +
    if isinstance(e, A.Binary):
        op = e.op
        if op == "&&":
            l = eval_expr(e.left, state, mems, widths)
            return 1 if (l and eval_expr(e.right, state, mems, widths)) else 0
        if op == "||":
            l = eval_expr(e.left, state, mems, widths)
            return 1 if (l or eval_expr(e.right, state, mems, widths)) else 0
        l = eval_expr(e.left, state, mems, widths)
        r = eval_expr(e.right, state, mems, widths)
        m = bv.mask(e.ctx_width)
        if op == "+":
            return (l + r) & m
        if op == "-":
            return (l - r) & m
        if op == "*":
            return (l * r) & m
        if op == "/":
            return bv.s_div(l, r)
        if op == "%":
            return bv.s_mod(l, r)
        if op == "**":
            return pow(l, r, m + 1)
        if op in ("<<", "<<<"):
            # Shift amounts at or beyond the context width flush to zero
            # (works for wide contexts too, unlike a fixed 64-bit cap).
            return 0 if r >= e.ctx_width else (l << r) & m
        if op in (">>", ">>>"):
            return 0 if r >= e.ctx_width else l >> r
        if op == "&":
            return l & r
        if op == "|":
            return l | r
        if op == "^":
            return l ^ r
        if op in ("~^", "^~"):
            return (~(l ^ r)) & m
        if op in ("==", "==="):
            return 1 if l == r else 0
        if op in ("!=", "!=="):
            return 1 if l != r else 0
        if op == "<":
            return 1 if l < r else 0
        if op == "<=":
            return 1 if l <= r else 0
        if op == ">":
            return 1 if l > r else 0
        if op == ">=":
            return 1 if l >= r else 0
        raise SimulationError(f"unknown binary op {op!r}")
    if isinstance(e, A.Ternary):
        c = eval_expr(e.cond, state, mems, widths)
        return eval_expr(e.then if c else e.other, state, mems, widths)
    if isinstance(e, A.Concat):
        # Parts are canonical, so the result is bounded by the concat's
        # self-determined width (<= MAX_TOTAL_WIDTH); no modulo needed.
        acc = 0
        for p in e.parts:
            acc = (acc << p.width) | eval_expr(p, state, mems, widths)
        return acc
    if isinstance(e, A.Repeat):
        count = getattr(e, "_count_i")
        v = eval_expr(e.value, state, mems, widths)
        w = e.value.width
        acc = 0
        for _ in range(count):
            acc = (acc << w) | v
        return acc
    if isinstance(e, A.Index):
        idx = eval_expr(e.index, state, mems, widths)
        if e.is_memory:
            store = mems[e.base]
            return store[idx] if idx < len(store) else 0
        return (state[e.base] >> idx) & 1 if idx < widths[e.base] else 0
    if isinstance(e, A.PartSelect):
        lsb = getattr(e, "_lsb_i")
        return (state[e.base] >> lsb) & bv.mask(e.width)
    if isinstance(e, A.IndexedPartSelect):
        w = getattr(e, "_width_i")
        pos = eval_expr(e.start, state, mems, widths)
        if e.descending:
            pos -= w - 1
        sig_lsb = getattr(e, "_base_lsb_i", 0)
        pos -= sig_lsb
        if pos < 0 or pos >= widths[e.base]:
            return 0
        return (state[e.base] >> pos) & bv.mask(w)
    raise SimulationError(f"cannot evaluate {type(e).__name__}")


class ReferenceSimulator:
    """Cycle-accurate golden model for a single stimulus.

    Usage mirrors the paper's Listing 1::

        sim = ReferenceSimulator(graph)
        for c in range(cycles):
            sim.set_inputs({"in": stim[c]})
            sim.set_clock(0); sim.evaluate()
            sim.set_clock(1); sim.evaluate()
    """

    def __init__(self, graph: RtlGraph, clock: Optional[str] = None):
        self.graph = graph
        self.design: LoweredDesign = graph.design
        self.widths = {s.name: s.width for s in self.design.signals.values()}
        self.state: Dict[str, int] = {name: 0 for name in self.design.signals}
        self.mems: Dict[str, List[int]] = {
            m.name: [0] * m.depth for m in self.design.memories.values()
        }
        self._prev_clock: Dict[str, int] = {c: 0 for c in self.design.clocks()}
        self.clock = clock or self._default_clock()
        self._input_names = {s.name for s in self.design.inputs}

    def _default_clock(self) -> Optional[str]:
        clocks = self.design.clocks()
        return clocks[0] if clocks else None

    # -- state access ---------------------------------------------------------

    def set_input(self, name: str, value: int) -> None:
        if name not in self._input_names:
            raise SimulationError(f"{name!r} is not an input of {self.design.top!r}")
        self.state[name] = value & bv.mask(self.widths[name])

    def set_inputs(self, values: Mapping[str, int]) -> None:
        for k, v in values.items():
            self.set_input(k, v)

    def get(self, name: str) -> int:
        if name in self.state:
            return self.state[name]
        raise SimulationError(f"unknown signal {name!r}")

    def load_memory(self, name: str, values: Sequence[int]) -> None:
        if name not in self.mems:
            raise SimulationError(f"unknown memory {name!r}")
        mem = self.mems[name]
        w = self.design.memories[name].width
        for i, v in enumerate(values):
            if i >= len(mem):
                break
            mem[i] = v & bv.mask(w)

    def set_clock(self, value: int) -> None:
        if self.clock is None:
            return
        self.state[self.clock] = value & 1

    # -- evaluation -------------------------------------------------------------

    def evaluate(self) -> None:
        """One full-cycle evaluation: clock-edge state updates, then comb."""
        design = self.design
        state = self.state

        # Determine which clock domains see an edge this evaluation.
        triggered = []
        for blk in design.seq:
            prev = self._prev_clock.get(blk.clock, 0)
            now = state.get(blk.clock, 0) & 1
            if blk.edge == "posedge" and prev == 0 and now == 1:
                triggered.append(blk)
            elif blk.edge == "negedge" and prev == 1 and now == 0:
                triggered.append(blk)

        if triggered:
            # Non-blocking semantics: compute every next value from the
            # pre-edge state, then commit all at once.
            next_vals: Dict[str, int] = {}
            mem_ops: List = []
            for blk in triggered:
                for upd in blk.updates:
                    v = eval_expr(upd.expr, state, self.mems, self.widths)
                    next_vals[upd.target] = v & bv.mask(self.widths[upd.target])
                for mw in blk.mem_writes:
                    cond = eval_expr(mw.cond, state, self.mems, self.widths)
                    if cond:
                        addr = eval_expr(mw.addr, state, self.mems, self.widths)
                        data = eval_expr(mw.data, state, self.mems, self.widths)
                        mem_ops.append((mw.mem, addr, data))
            state.update(next_vals)
            for mem, addr, data in mem_ops:
                store = self.mems[mem]
                if addr < len(store):
                    store[addr] = data & bv.mask(self.design.memories[mem].width)

        # Straight-line comb settle (graph is acyclic and levelized).
        for nid in self.graph.comb_order:
            node = self.graph.nodes[nid]
            v = eval_expr(node.expr, state, self.mems, self.widths)
            state[node.target] = v & bv.mask(self.widths[node.target])

        for c in self._prev_clock:
            self._prev_clock[c] = state.get(c, 0) & 1

    def cycle(self, inputs: Optional[Mapping[str, int]] = None) -> None:
        """Simulate one clock cycle (Listing 1's loop body)."""
        if inputs:
            self.set_inputs(inputs)
        self.set_clock(0)
        self.evaluate()
        self.set_clock(1)
        self.evaluate()

    def run(
        self,
        stimulus: Sequence[Mapping[str, int]],
        watch: Optional[Iterable[str]] = None,
    ) -> Dict[str, List[int]]:
        """Run one stimulus (a list of per-cycle input maps).

        Returns per-cycle traces of ``watch`` signals (default: outputs),
        sampled after each full cycle.
        """
        names = list(watch) if watch is not None else [
            s.name for s in self.design.outputs
        ]
        traces: Dict[str, List[int]] = {n: [] for n in names}
        for step in stimulus:
            self.cycle(step)
            for n in names:
                traces[n].append(self.get(n))
        return traces
