"""ESSENT-like event-driven baseline (§2.2–2.3).

Uses the same compiled per-node functions as the Verilator-like engine
but schedules them conditionally: a combinational node re-evaluates only
when one of its inputs changed, and a register's fanout is only marked
active when its committed value actually changed — "conditional execution
to skip over unnecessary simulation work" (Beamer & Donofrio, DAC'20).

On low-activity workloads this skips most of the design per cycle; on
high-activity workloads the bookkeeping makes it slower than the
straight-line full-cycle engine — the trade-off §2.3 describes.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set

from repro.baselines.scalargen import ScalarModelSpec, generate_scalar_model
from repro.rtlir.graph import RtlGraph
from repro.utils import bitvec as bv
from repro.utils.errors import SimulationError


class EssentSim:
    """Event-driven single-stimulus simulator."""

    def __init__(
        self,
        graph: RtlGraph,
        spec: Optional[ScalarModelSpec] = None,
        namespace: Optional[dict] = None,
    ):
        self.graph = graph
        self.spec = spec or generate_scalar_model(graph)
        if namespace is None:
            namespace = {}
            exec(
                compile(self.spec.source, f"<essent:{self.spec.top}>", "exec"),
                namespace,
            )
        ns = namespace
        self.ns = ns
        s = self.spec
        self.S: List[int] = [0] * s.n_slots
        self.M: List[List[int]] = [[0] * d for d in s.mem_depths]
        self._prev_clock: Dict[str, int] = {c: 0 for c, _ in s.domains if c}
        self._input_set = set(s.input_names)

        # Fanout: signal name -> comb node ids that read it.
        self.fanout: Dict[str, List[int]] = {}
        for node in graph.comb_nodes:
            for r in node.reads:
                self.fanout.setdefault(r, []).append(node.nid)
        self._comb_fns = {n.nid: ns[f"c{n.nid}"] for n in graph.comb_nodes}
        self._seq_fns = {n.nid: ns[f"s{n.nid}"] for n in graph.seq_nodes}
        self._memw_fns = {n.nid: ns[f"w{n.nid}"] for n in graph.memw_nodes}
        self._order_index = {nid: i for i, nid in enumerate(graph.comb_order)}
        self._dirty: Set[int] = set(graph.comb_order)  # first settle runs all
        # Signals read by each seq/memw node, to skip edge work when the
        # register's inputs did not change since the last edge.
        self._seq_inputs_dirty: Set[int] = {
            n.nid for n in graph.seq_nodes + graph.memw_nodes
        }
        # Activity statistics (ESSENT's raison d'être).
        self.nodes_evaluated = 0
        self.nodes_skipped = 0

        self._seq_readers: Dict[str, List[int]] = {}
        for node in graph.seq_nodes + graph.memw_nodes:
            for r in node.reads:
                self._seq_readers.setdefault(r, []).append(node.nid)

    # -- state ------------------------------------------------------------------

    def set_input(self, name: str, value: int) -> None:
        if name not in self._input_set:
            raise SimulationError(f"{name!r} is not an input")
        slot = self.spec.slot_of[name]
        new = value & bv.mask(self.spec.widths[name])
        if self.S[slot] != new:
            self.S[slot] = new
            self._mark_changed(name)

    def get(self, name: str) -> int:
        return self.S[self.spec.slot_of[name]]

    def load_memory(self, name: str, values: Sequence[int]) -> None:
        mi = self.spec.mem_index[name]
        m = bv.mask(self.spec.mem_widths[mi])
        mem = self.M[mi]
        for i, v in enumerate(values):
            if i >= len(mem):
                break
            mem[i] = int(v) & m
        self._mark_changed(name)

    def set_clock(self, value: int) -> None:
        if self.spec.clock is not None:
            self.S[self.spec.slot_of[self.spec.clock]] = value & 1

    def _mark_changed(self, name: str) -> None:
        for nid in self.fanout.get(name, ()):
            self._dirty.add(nid)
        for nid in self._seq_readers.get(name, ()):
            self._seq_inputs_dirty.add(nid)

    # -- evaluation ---------------------------------------------------------------

    def evaluate(self) -> None:
        S, M = self.S, self.M
        g = self.graph
        spec = self.spec

        # Compute next values for every fired domain first (non-blocking
        # semantics across simultaneous edges), then commit all of them.
        pending: List = []
        writes: List = []
        for k, (clock, edge) in enumerate(spec.domains):
            prev = self._prev_clock.get(clock, 0)
            now = S[spec.slot_of[clock]] & 1 if clock else 0
            fire = (edge == "posedge" and prev == 0 and now == 1) or (
                edge == "negedge" and prev == 1 and now == 0
            )
            if not fire:
                continue
            for nid in spec.seq_nodes_by_domain[k]:
                if nid in self._seq_inputs_dirty:
                    self.nodes_evaluated += 1
                    pending.append((nid, self._seq_fns[nid](S, M)))
                    self._seq_inputs_dirty.discard(nid)
                else:
                    self.nodes_skipped += 1
            for nid in spec.memw_nodes_by_domain[k]:
                self.nodes_evaluated += 1
                writes.append((nid, self._memw_fns[nid](S, M)))
                self._seq_inputs_dirty.discard(nid)
        for nid, value in pending:
            node = g.nodes[nid]
            slot = spec.node_target_slot[nid]
            if S[slot] != value:
                S[slot] = value
                self._mark_changed(node.target)
        for nid, (cond, addr, data) in writes:
            node = g.nodes[nid]
            mi = spec.mem_index[node.target]
            depth = spec.mem_depths[mi]
            if cond and addr < depth and M[mi][addr] != data:
                M[mi][addr] = data
                self._mark_changed(node.target)

        # Event-driven comb settle: visit dirty nodes in topo order.
        while self._dirty:
            for nid in sorted(self._dirty, key=self._order_index.__getitem__):
                if nid not in self._dirty:
                    continue
                self._dirty.discard(nid)
                node = g.nodes[nid]
                slot = spec.node_target_slot[nid]
                old = S[slot]
                self.nodes_evaluated += 1
                self._comb_fns[nid](S, M)
                if S[slot] != old:
                    self._mark_changed(node.target)
            # _mark_changed only adds strictly later nodes (topo order), so
            # one sweep converges; loop guards pathological orderings.

        for clock in self._prev_clock:
            self._prev_clock[clock] = S[spec.slot_of[clock]] & 1

    def cycle(self, inputs: Optional[Mapping[str, int]] = None) -> None:
        if inputs:
            for key, v in inputs.items():
                self.set_input(key, v)
        self.set_clock(0)
        self.evaluate()
        self.set_clock(1)
        self.evaluate()

    def run(
        self,
        stimulus: Sequence[Mapping[str, int]],
        watch: Optional[Sequence[str]] = None,
    ) -> Dict[str, List[int]]:
        names = list(watch) if watch is not None else list(self.spec.output_names)
        traces: Dict[str, List[int]] = {n: [] for n in names}
        for step in stimulus:
            self.cycle(step)
            for n in names:
                traces[n].append(self.get(n))
        return traces

    @property
    def activity_factor(self) -> float:
        total = self.nodes_evaluated + self.nodes_skipped
        return self.nodes_evaluated / total if total else 0.0


# ---------------------------------------------------------------------------
# Batch runner: fork K single-threaded ESSENT processes (the paper forks 80)
# ---------------------------------------------------------------------------

import concurrent.futures as _cf

import numpy as _np

_E_WORKER = None


def _essent_worker_init(graph, spec) -> None:
    global _E_WORKER
    _E_WORKER = (graph, spec)


def _essent_worker_run(args):
    lanes, cycles, input_names, stim_arrays, watch, memories = args
    assert _E_WORKER is not None
    graph, spec = _E_WORKER
    out = {w: _np.zeros(len(lanes), dtype=_np.uint64) for w in watch}
    for j, _ in enumerate(lanes):
        sim = EssentSim(graph, spec)
        if memories:
            for name, vals in memories.items():
                sim.load_memory(name, vals)
        for c in range(cycles):
            sim.cycle(
                {name: int(stim_arrays[k][c, j]) for k, name in enumerate(input_names)}
            )
        for w in watch:
            out[w][j] = sim.get(w)
    return out


class EssentBatchRunner:
    """Runs a batch of stimulus across forked event-driven simulators."""

    def __init__(self, graph: RtlGraph, workers: int = 1):
        self.graph = graph
        self.spec = generate_scalar_model(graph)
        self.workers = max(1, workers)

    def run(self, stim, watch=None, memories=None):
        names = list(watch) if watch is not None else list(self.spec.output_names)
        input_names = stim.names
        n = stim.n
        if self.workers == 1:
            _essent_worker_init(self.graph, self.spec)
            arrays = tuple(stim.data[k] for k in input_names)
            return _essent_worker_run(
                (list(range(n)), stim.cycles, input_names, arrays, names, memories)
            )
        per = (n + self.workers - 1) // self.workers
        chunks = [list(range(lo, min(lo + per, n))) for lo in range(0, n, per)]
        jobs = []
        for lanes in chunks:
            arrays = tuple(
                _np.ascontiguousarray(stim.data[k][:, lanes[0] : lanes[-1] + 1])
                for k in input_names
            )
            jobs.append((lanes, stim.cycles, input_names, arrays, names, memories))
        out = {w: _np.zeros(n, dtype=_np.uint64) for w in names}
        import multiprocessing as mp

        ctx = mp.get_context("fork")
        with _cf.ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_essent_worker_init,
            initargs=(self.graph, self.spec),
            mp_context=ctx,
        ) as pool:
            for lanes, result in zip(chunks, pool.map(_essent_worker_run, jobs)):
                for w in names:
                    out[w][lanes[0] : lanes[-1] + 1] = result[w]
        return out
