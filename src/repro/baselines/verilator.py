"""Verilator-like CPU baseline (§2.1, §4.1).

Full-cycle, compiled, single-stimulus simulation plus the de-facto batch
strategy the paper describes: "fork multiple Verilator processes and run
independent stimulus in parallel".  The ``workers`` knob plays the role of
the CPU-thread count axis in Fig. 12/13 (each worker simulates its chunk
of the batch start to finish).
"""

from __future__ import annotations

import concurrent.futures as cf
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.baselines.scalargen import ScalarModelSpec, generate_scalar_model
from repro.rtlir.graph import RtlGraph
from repro.stimulus.batch import StimulusBatch
from repro.utils import bitvec as bv
from repro.utils.errors import SimulationError


class VerilatorSim:
    """One compiled scalar simulator instance (one stimulus)."""

    def __init__(self, spec: ScalarModelSpec, namespace: Optional[dict] = None):
        self.spec = spec
        if namespace is None:
            namespace = {}
            exec(compile(spec.source, f"<verilator:{spec.top}>", "exec"), namespace)
        self.ns = namespace
        self._comb = namespace["comb_all"]
        self._seq = [namespace[f"seq_all_{k}"] for k in range(len(spec.domains))]
        self.S: List[int] = [0] * spec.n_slots
        self.M: List[List[int]] = [[0] * d for d in spec.mem_depths]
        self._prev_clock: Dict[str, int] = {c: 0 for c, _ in spec.domains if c}
        self._input_set = set(spec.input_names)

    # -- state ------------------------------------------------------------------

    def set_input(self, name: str, value: int) -> None:
        if name not in self._input_set:
            raise SimulationError(f"{name!r} is not an input")
        self.S[self.spec.slot_of[name]] = value & bv.mask(self.spec.widths[name])

    def get(self, name: str) -> int:
        return self.S[self.spec.slot_of[name]]

    def load_memory(self, name: str, values: Sequence[int]) -> None:
        mi = self.spec.mem_index[name]
        m = bv.mask(self.spec.mem_widths[mi])
        mem = self.M[mi]
        for i, v in enumerate(values):
            if i >= len(mem):
                break
            mem[i] = int(v) & m

    def set_clock(self, value: int) -> None:
        if self.spec.clock is not None:
            self.S[self.spec.slot_of[self.spec.clock]] = value & 1

    # -- evaluation ---------------------------------------------------------------

    def evaluate(self) -> None:
        S = self.S
        spec = self.spec
        fired = []
        for k, (clock, edge) in enumerate(spec.domains):
            prev = self._prev_clock.get(clock, 0)
            now = S[spec.slot_of[clock]] & 1 if clock else 0
            if (edge == "posedge" and prev == 0 and now == 1) or (
                edge == "negedge" and prev == 1 and now == 0
            ):
                fired.append(k)
        if len(fired) == 1:
            # Fast path: the fused compute+commit function.
            self._seq[fired[0]](S, self.M)
        elif fired:
            # Simultaneous edges on several domains: non-blocking semantics
            # require computing every domain's next state from the pre-edge
            # state before committing any of them; use the per-node fns.
            ns = self.ns
            pending = []
            writes = []
            for k in fired:
                for nid in spec.seq_nodes_by_domain[k]:
                    pending.append((spec.node_target_slot[nid],
                                    ns[f"s{nid}"](S, self.M)))
                for nid in spec.memw_nodes_by_domain[k]:
                    writes.append((nid, ns[f"w{nid}"](S, self.M)))
            for slot, value in pending:
                S[slot] = value
            for nid, (cond, addr, data) in writes:
                mi = spec.node_mem_index[nid]
                if cond and addr < spec.mem_depths[mi]:
                    self.M[mi][addr] = data
        self._comb(S, self.M)
        for clock in self._prev_clock:
            self._prev_clock[clock] = S[spec.slot_of[clock]] & 1

    def cycle(self, inputs: Optional[Mapping[str, int]] = None) -> None:
        if inputs:
            for k, v in inputs.items():
                self.set_input(k, v)
        self.set_clock(0)
        self.evaluate()
        self.set_clock(1)
        self.evaluate()

    def run(
        self,
        stimulus: Sequence[Mapping[str, int]],
        watch: Optional[Sequence[str]] = None,
    ) -> Dict[str, List[int]]:
        names = list(watch) if watch is not None else list(self.spec.output_names)
        traces: Dict[str, List[int]] = {n: [] for n in names}
        for step in stimulus:
            self.cycle(step)
            for n in names:
                traces[n].append(self.get(n))
        return traces


# ---------------------------------------------------------------------------
# Batch runner: fork K workers over N stimulus
# ---------------------------------------------------------------------------

_WORKER_SPEC: Optional[ScalarModelSpec] = None
_WORKER_NS: Optional[dict] = None


def _worker_init(spec: ScalarModelSpec) -> None:
    global _WORKER_SPEC, _WORKER_NS
    _WORKER_SPEC = spec
    _WORKER_NS = {}
    exec(compile(spec.source, f"<verilator:{spec.top}>", "exec"), _WORKER_NS)


def _worker_run_chunk(args) -> Dict[str, np.ndarray]:
    lanes, cycles, input_names, stim_arrays, watch, memories = args
    assert _WORKER_SPEC is not None and _WORKER_NS is not None
    out = {w: np.zeros(len(lanes), dtype=np.uint64) for w in watch}
    for j, _ in enumerate(lanes):
        sim = VerilatorSim(_WORKER_SPEC, dict(_WORKER_NS))
        if memories:
            for name, vals in memories.items():
                sim.load_memory(name, vals)
        for c in range(cycles):
            sim.cycle(
                {name: int(stim_arrays[k][c, j]) for k, name in enumerate(input_names)}
            )
        for w in watch:
            out[w][j] = sim.get(w)
    return out


class VerilatorBatchRunner:
    """Runs a batch of stimulus across worker processes.

    ``workers=1`` runs in-process (no fork overhead); larger counts fork a
    pool, each worker compiling the generated source once and simulating
    its lane chunk start to finish — the multi-process organization §2.3
    describes as the de-facto standard.
    """

    def __init__(self, graph: RtlGraph, workers: int = 1):
        self.graph = graph
        self.spec = generate_scalar_model(graph)
        self.workers = max(1, workers)

    def run(
        self,
        stim: StimulusBatch,
        watch: Optional[Sequence[str]] = None,
        memories: Optional[Mapping[str, Sequence[int]]] = None,
    ) -> Dict[str, np.ndarray]:
        """Simulate all lanes; returns final values of watched signals."""
        names = list(watch) if watch is not None else list(self.spec.output_names)
        input_names = stim.names
        n = stim.n
        if self.workers == 1:
            _worker_init(self.spec)
            arrays = tuple(stim.data[k] for k in input_names)
            return _worker_run_chunk(
                (list(range(n)), stim.cycles, input_names, arrays, names, memories)
            )

        chunks: List[List[int]] = []
        per = (n + self.workers - 1) // self.workers
        for lo in range(0, n, per):
            chunks.append(list(range(lo, min(lo + per, n))))

        jobs = []
        for lanes in chunks:
            arrays = tuple(
                np.ascontiguousarray(stim.data[k][:, lanes[0] : lanes[-1] + 1])
                for k in input_names
            )
            jobs.append((lanes, stim.cycles, input_names, arrays, names, memories))

        out = {w: np.zeros(n, dtype=np.uint64) for w in names}
        ctx = None
        try:
            import multiprocessing as mp

            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            pass
        with cf.ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_worker_init,
            initargs=(self.spec,),
            mp_context=ctx,
        ) as pool:
            for lanes, result in zip(chunks, pool.map(_worker_run_chunk, jobs)):
                for w in names:
                    out[w][lanes[0] : lanes[-1] + 1] = result[w]
        return out
