"""crypto_wide: a 256-bit ARX-style permutation datapath.

A fourth bundled design exercising the wide-signal (>64-bit) paths at
design scale: a sponge-like state of 256 bits absorbs a 64-bit input
word each cycle and runs ``rounds`` unrolled ARX rounds (xor / add /
rotate-by-constant across the full width), squeezing a 64-bit digest
lane.  Structurally similar to hardware hash/cipher pipelines, which is
where >64-bit RTL signals actually show up.
"""

from __future__ import annotations


ROT_CONSTANTS = [17, 45, 86, 153, 7, 133, 201, 31]


def _round(i: int, rot: int) -> str:
    prev = f"r{i - 1}" if i else "absorbed"
    return f"""
    wire [255:0] rot{i} = ({prev} << {rot}) | ({prev} >> {256 - rot});
    wire [255:0] mix{i} = rot{i} ^ {{{prev}[127:0], {prev}[255:128]}};
    wire [255:0] r{i} = mix{i} + {{4{{64'h9E3779B97F4A7C15}}}};
"""


def generate(rounds: int = 4) -> str:
    if not 1 <= rounds <= len(ROT_CONSTANTS):
        raise ValueError(f"rounds must be 1..{len(ROT_CONSTANTS)}")
    body = "".join(_round(i, ROT_CONSTANTS[i]) for i in range(rounds))
    last = f"r{rounds - 1}"
    return f"""
// crypto_wide: 256-bit ARX permutation, {rounds} unrolled rounds
module crypto_wide (
    input wire clk,
    input wire rst,
    input wire absorb,
    input wire [63:0] din,
    output wire [63:0] digest,
    output wire [255:0] state_out,
    output wire parity
);
    reg [255:0] state;

    wire [255:0] absorbed = absorb
        ? (state ^ {{192'd0, din}})
        : state;
{body}
    always @(posedge clk) begin
        if (rst) state <= 256'h1;
        else state <= {last};
    end

    assign digest = state[63:0] ^ state[127:64] ^ state[191:128]
                  ^ state[255:192];
    assign state_out = state;
    assign parity = ^state;
endmodule
"""
