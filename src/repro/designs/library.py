"""Design registry: name -> ready-to-simulate bundle.

Each bundle knows how to generate its Verilog, produce benchmark stimulus
(the paper's "scripts that allow us to generate multiple stimulus with
different configurations"), and preload memories (program/weight images).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from repro.designs import crypto_wide, micro, nvdla_lite, riscv_mini, spinal_soc
from repro.stimulus.batch import StimulusBatch
from repro.utils.errors import ReproError


@dataclass
class DesignBundle:
    """A benchmark design plus its workload recipe."""

    name: str
    top: str
    source: str
    watch: List[str]
    # Called with (n, cycles, seed) -> StimulusBatch.
    make_stimulus: Callable[[int, int, int], StimulusBatch]
    # Called with any simulator exposing load_memory(name, values).
    preload: Callable[[object], None] = lambda sim: None
    params: Dict[str, int] = field(default_factory=dict)


def _riscv_bundle(program: str = "echo3", imem_words: int = 256,
                  dmem_words: int = 256) -> DesignBundle:
    source = riscv_mini.generate(imem_words, dmem_words)
    image = riscv_mini.program_image(program)

    def make_stimulus(n: int, cycles: int, seed: int) -> StimulusBatch:
        rng = np.random.default_rng(seed)
        rst = np.zeros((cycles, n), dtype=np.uint64)
        rst[0, :] = 1
        io_in = rng.integers(0, 1 << 16, size=(cycles, n), dtype=np.uint64)
        return StimulusBatch({"rst": rst, "io_in": io_in})

    def preload(sim) -> None:
        sim.load_memory("imem", image)

    return DesignBundle(
        name="riscv_mini",
        top="riscv_mini",
        source=source,
        watch=["io_out_port", "a0_out", "pc_out", "halted"],
        make_stimulus=make_stimulus,
        preload=preload,
        params={"imem_words": imem_words, "dmem_words": dmem_words},
    )


def _spinal_bundle(taps: int = 8) -> DesignBundle:
    source = spinal_soc.generate(taps=taps)

    def make_stimulus(n: int, cycles: int, seed: int) -> StimulusBatch:
        rng = np.random.default_rng(seed)
        rst = np.zeros((cycles, n), dtype=np.uint64)
        rst[0, :] = 1
        return StimulusBatch(
            {
                "rst": rst,
                "sample": rng.integers(0, 1 << 16, (cycles, n), dtype=np.uint64),
                "prescale": np.full((cycles, n), 2, dtype=np.uint64),
                "compare": np.full((cycles, n), 50, dtype=np.uint64),
                "push": rng.integers(0, 2, (cycles, n), dtype=np.uint64),
                "pop": rng.integers(0, 2, (cycles, n), dtype=np.uint64),
            }
        )

    return DesignBundle(
        name="spinal",
        top="spinal_soc",
        source=source,
        watch=["fir_out", "checksum", "timer_value", "grant"],
        make_stimulus=make_stimulus,
        params={"taps": taps},
    )


def _nvdla_bundle(pes: int = 8, seed: int = 1234) -> DesignBundle:
    source = nvdla_lite.generate(pes=pes)
    rng = np.random.default_rng(seed)
    weights = rng.integers(1, 256, size=pes * nvdla_lite.K, dtype=np.uint64)

    def make_stimulus(n: int, cycles: int, seed: int) -> StimulusBatch:
        rng = np.random.default_rng(seed)
        rst = np.zeros((cycles, n), dtype=np.uint64)
        rst[0, :] = 1
        start = np.zeros((cycles, n), dtype=np.uint64)
        if cycles > 1:
            start[1, :] = 1
        return StimulusBatch(
            {
                "rst": rst,
                "start": start,
                "clear": np.zeros((cycles, n), dtype=np.uint64),
                "in_valid": rng.integers(0, 2, (cycles, n), dtype=np.uint64),
                "act": rng.integers(0, 256, (cycles, n), dtype=np.uint64),
            }
        )

    def preload(sim) -> None:
        sim.load_memory("wmem", weights)

    return DesignBundle(
        name="nvdla",
        top="nvdla_lite",
        source=source,
        watch=["out_data", "checksum", "state_out"],
        make_stimulus=make_stimulus,
        preload=preload,
        params={"pes": pes},
    )


def _counter_bundle(width: int = 16) -> DesignBundle:
    source = micro.COUNTER

    def make_stimulus(n: int, cycles: int, seed: int) -> StimulusBatch:
        rng = np.random.default_rng(seed)
        rst = np.zeros((cycles, n), dtype=np.uint64)
        rst[0, :] = 1
        return StimulusBatch(
            {"rst": rst, "en": rng.integers(0, 2, (cycles, n), dtype=np.uint64)}
        )

    return DesignBundle(
        name="counter",
        top="counter",
        source=source,
        watch=["count", "wrap"],
        make_stimulus=make_stimulus,
    )


def _crypto_bundle(rounds: int = 4) -> DesignBundle:
    source = crypto_wide.generate(rounds=rounds)

    def make_stimulus(n: int, cycles: int, seed: int) -> StimulusBatch:
        rng = np.random.default_rng(seed)
        rst = np.zeros((cycles, n), dtype=np.uint64)
        rst[0, :] = 1
        raw = rng.integers(0, 1 << 32, (cycles, n), dtype=np.uint64)
        din = (raw << np.uint64(32)) | rng.integers(
            0, 1 << 32, (cycles, n), dtype=np.uint64
        )
        return StimulusBatch(
            {
                "rst": rst,
                "absorb": rng.integers(0, 2, (cycles, n), dtype=np.uint64),
                "din": din,
            }
        )

    return DesignBundle(
        name="crypto",
        top="crypto_wide",
        source=source,
        watch=["digest", "parity"],
        make_stimulus=make_stimulus,
        params={"rounds": rounds},
    )


_FACTORIES: Dict[str, Callable[..., DesignBundle]] = {
    "riscv_mini": _riscv_bundle,
    "spinal": _spinal_bundle,
    "nvdla": _nvdla_bundle,
    "counter": _counter_bundle,
    "crypto": _crypto_bundle,
}


def list_designs() -> List[str]:
    """Names of the bundled benchmark designs."""
    return sorted(_FACTORIES)


def get_design(name: str, **params) -> DesignBundle:
    """Instantiate a bundled design by name (with size parameters)."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ReproError(
            f"unknown design {name!r}; available: {', '.join(list_designs())}"
        )
    return factory(**params)
