"""Micro designs used by examples, tests and the quickstart."""

from __future__ import annotations

COUNTER = """
module counter #(parameter W = 8) (
    input wire clk,
    input wire rst,
    input wire en,
    output wire [W-1:0] count,
    output wire wrap
);
    reg [W-1:0] q;
    always @(posedge clk) begin
        if (rst) q <= 0;
        else if (en) q <= q + 1;
    end
    assign count = q;
    assign wrap = en && (q == {W{1'b1}});
endmodule
"""

ALU = """
module alu #(parameter W = 16) (
    input wire [W-1:0] a,
    input wire [W-1:0] b,
    input wire [3:0] op,
    output reg [W-1:0] y,
    output wire zero,
    output wire parity
);
    always @* begin
        case (op)
            4'd0: y = a + b;
            4'd1: y = a - b;
            4'd2: y = a & b;
            4'd3: y = a | b;
            4'd4: y = a ^ b;
            4'd5: y = ~a;
            4'd6: y = a << b[3:0];
            4'd7: y = a >> b[3:0];
            4'd8: y = (a < b) ? {{(W-1){1'b0}}, 1'b1} : {W{1'b0}};
            4'd9: y = (a == b) ? {{(W-1){1'b0}}, 1'b1} : {W{1'b0}};
            4'd10: y = a * b;
            4'd11: y = a / b;
            4'd12: y = a % b;
            default: y = {W{1'b0}};
        endcase
    end
    assign zero = (y == {W{1'b0}});
    assign parity = ^y;
endmodule
"""

FIFO = """
module fifo #(parameter W = 8, parameter LOGD = 3) (
    input wire clk,
    input wire rst,
    input wire push,
    input wire pop,
    input wire [W-1:0] din,
    output wire [W-1:0] dout,
    output wire empty,
    output wire full,
    output wire [LOGD:0] count
);
    reg [W-1:0] mem [0:(1<<LOGD)-1];
    reg [LOGD:0] wptr, rptr, cnt;

    wire do_push = push && !full;
    wire do_pop  = pop && !empty;

    always @(posedge clk) begin
        if (rst) begin
            wptr <= 0;
            rptr <= 0;
            cnt <= 0;
        end
        else begin
            if (do_push) begin
                mem[wptr[LOGD-1:0]] <= din;
                wptr <= wptr + 1;
            end
            if (do_pop) rptr <= rptr + 1;
            if (do_push && !do_pop) cnt <= cnt + 1;
            if (do_pop && !do_push) cnt <= cnt - 1;
        end
    end

    assign dout = mem[rptr[LOGD-1:0]];
    assign empty = (cnt == 0);
    assign full = (cnt == (1 << LOGD));
    assign count = cnt;
endmodule
"""

GRAY_PIPELINE = """
// A deep, narrow pipeline: good for partitioning/chain-merge tests.
module graypipe #(parameter W = 16, parameter STAGES = 8) (
    input wire clk,
    input wire rst,
    input wire [W-1:0] din,
    output wire [W-1:0] dout
);
    reg [W-1:0] s0, s1, s2, s3, s4, s5, s6, s7;
    always @(posedge clk) begin
        if (rst) begin
            s0 <= 0; s1 <= 0; s2 <= 0; s3 <= 0;
            s4 <= 0; s5 <= 0; s6 <= 0; s7 <= 0;
        end
        else begin
            s0 <= din ^ (din >> 1);
            s1 <= s0 + 1;
            s2 <= s1 ^ (s1 << 2);
            s3 <= s2 - 3;
            s4 <= s3 ^ (s3 >> 3);
            s5 <= s4 + s0;
            s6 <= s5 ^ s2;
            s7 <= s6 + s4;
        end
    end
    assign dout = s7;
endmodule
"""
