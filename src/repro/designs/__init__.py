"""Bundled benchmark designs (the paper's Table 1 benchmarks, scaled).

* :mod:`repro.designs.micro` — counter / ALU / FIFO micro designs used by
  examples and tests.
* :mod:`repro.designs.riscv_mini` — a single-cycle RV32I-subset CPU with
  instruction/data memories and memory-mapped stimulus I/O (the paper's
  riscv-mini role).
* :mod:`repro.designs.spinal_soc` — a mid-size SoC-flavoured datapath
  (FIR pipeline, FIFO, timer, arbiter) standing in for Spinal/VexRiscv.
* :mod:`repro.designs.nvdla_lite` — a size-parameterized MAC-array
  convolution accelerator standing in for NVDLA; its PE count scales the
  design into the "large" regime.
* :mod:`repro.designs.library` — the registry mapping names to bundles.
"""

from repro.designs.library import DesignBundle, get_design, list_designs

__all__ = ["DesignBundle", "get_design", "list_designs"]
