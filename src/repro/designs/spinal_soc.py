"""spinal_soc: a mid-size SoC-flavoured datapath.

Stands in for the paper's Spinal (VexRiscv) benchmark in the "medium
design" role: a FIR filter pipeline, an LFSR scrambler, a timer with
compare interrupt, a small FIFO and a round-robin arbiter, all driven
from per-stimulus input samples.  The tap count parameterizes design
size (the FIR stages are emitted unrolled, like generated RTL).
"""

from __future__ import annotations

from typing import List


def _fir_coeffs(taps: int) -> List[int]:
    """Deterministic pseudo-coefficients (odd, 6-bit)."""
    coeffs = []
    x = 17
    for _ in range(taps):
        x = (x * 37 + 11) % 64
        coeffs.append(x | 1)
    return coeffs


def generate(taps: int = 8, fifo_logd: int = 4) -> str:
    """Emit the spinal_soc Verilog source with ``taps`` FIR stages."""
    if taps < 2:
        raise ValueError("taps must be >= 2")
    coeffs = _fir_coeffs(taps)

    # Unrolled FIR delay line + multiply-accumulate stages.
    delay_decls = "\n".join(
        f"    reg [15:0] z{i};" for i in range(taps)
    )
    delay_shift = "\n".join(
        ["            z0 <= sample;"]
        + [f"            z{i} <= z{i - 1};" for i in range(1, taps)]
    )
    prod_decls = "\n".join(
        f"    wire [21:0] p{i} = z{i} * 6'd{coeffs[i]};" for i in range(taps)
    )
    # Balanced-ish adder chain, emitted unrolled.
    sum_terms = " + ".join(f"p{i}" for i in range(taps))
    reset_delays = "\n".join(
        f"            z{i} <= 0;" for i in range(taps)
    )

    return f"""
// spinal_soc: FIR + LFSR + timer + FIFO + arbiter (generated, {taps} taps)
module soc_fifo #(parameter W = 16, parameter LOGD = {fifo_logd}) (
    input wire clk,
    input wire rst,
    input wire push,
    input wire pop,
    input wire [W-1:0] din,
    output wire [W-1:0] dout,
    output wire empty,
    output wire full
);
    reg [W-1:0] mem [0:(1<<LOGD)-1];
    reg [LOGD:0] wptr, rptr, cnt;
    wire do_push = push && !full;
    wire do_pop = pop && !empty;
    always @(posedge clk) begin
        if (rst) begin
            wptr <= 0; rptr <= 0; cnt <= 0;
        end
        else begin
            if (do_push) begin
                mem[wptr[LOGD-1:0]] <= din;
                wptr <= wptr + 1;
            end
            if (do_pop) rptr <= rptr + 1;
            if (do_push && !do_pop) cnt <= cnt + 1;
            if (do_pop && !do_push) cnt <= cnt - 1;
        end
    end
    assign dout = mem[rptr[LOGD-1:0]];
    assign empty = (cnt == 0);
    assign full = (cnt == (1 << LOGD));
endmodule

module soc_timer (
    input wire clk,
    input wire rst,
    input wire [7:0] prescale,
    input wire [15:0] compare,
    output wire irq,
    output wire [15:0] value
);
    reg [7:0] pre;
    reg [15:0] cntr;
    reg hit;
    always @(posedge clk) begin
        if (rst) begin
            pre <= 0; cntr <= 0; hit <= 0;
        end
        else begin
            if (pre >= prescale) begin
                pre <= 0;
                cntr <= cntr + 1;
                hit <= (cntr + 1 == compare);
            end
            else begin
                pre <= pre + 1;
                hit <= 0;
            end
        end
    end
    assign irq = hit;
    assign value = cntr;
endmodule

module soc_arbiter (
    input wire clk,
    input wire rst,
    input wire [3:0] req,
    output wire [3:0] grant
);
    reg [1:0] last;
    reg [3:0] g;
    always @* begin
        g = 4'd0;
        case (last)
            2'd0: begin
                if (req[1]) g = 4'b0010;
                else if (req[2]) g = 4'b0100;
                else if (req[3]) g = 4'b1000;
                else if (req[0]) g = 4'b0001;
            end
            2'd1: begin
                if (req[2]) g = 4'b0100;
                else if (req[3]) g = 4'b1000;
                else if (req[0]) g = 4'b0001;
                else if (req[1]) g = 4'b0010;
            end
            2'd2: begin
                if (req[3]) g = 4'b1000;
                else if (req[0]) g = 4'b0001;
                else if (req[1]) g = 4'b0010;
                else if (req[2]) g = 4'b0100;
            end
            default: begin
                if (req[0]) g = 4'b0001;
                else if (req[1]) g = 4'b0010;
                else if (req[2]) g = 4'b0100;
                else if (req[3]) g = 4'b1000;
            end
        endcase
    end
    always @(posedge clk) begin
        if (rst) last <= 0;
        else begin
            if (g[0]) last <= 2'd0;
            else if (g[1]) last <= 2'd1;
            else if (g[2]) last <= 2'd2;
            else if (g[3]) last <= 2'd3;
        end
    end
    assign grant = g;
endmodule

module spinal_soc (
    input wire clk,
    input wire rst,
    input wire [15:0] sample,
    input wire [7:0] prescale,
    input wire [15:0] compare,
    input wire push,
    input wire pop,
    output wire [23:0] fir_out,
    output wire [15:0] scrambled,
    output wire timer_irq,
    output wire [15:0] timer_value,
    output wire [3:0] grant,
    output wire [15:0] fifo_out,
    output wire fifo_empty,
    output wire fifo_full,
    output wire [15:0] checksum
);
    // ---- FIR pipeline ({taps} taps, unrolled) ----------------------------
{delay_decls}
    reg [23:0] acc;
    always @(posedge clk) begin
        if (rst) begin
{reset_delays}
            acc <= 0;
        end
        else begin
{delay_shift}
            acc <= ({sum_terms}) & 24'hFFFFFF;
        end
    end
{prod_decls}

    // ---- LFSR scrambler ----------------------------------------------------
    reg [15:0] lfsr;
    wire fb = lfsr[15] ^ lfsr[13] ^ lfsr[12] ^ lfsr[10];
    always @(posedge clk) begin
        if (rst) lfsr <= 16'hACE1;
        else lfsr <= {{lfsr[14:0], fb}};
    end

    // ---- peripherals -------------------------------------------------------
    soc_timer timer0 (
        .clk(clk), .rst(rst), .prescale(prescale), .compare(compare),
        .irq(timer_irq), .value(timer_value)
    );
    soc_arbiter arb0 (
        .clk(clk), .rst(rst), .req(sample[3:0]), .grant(grant)
    );
    soc_fifo #(.W(16)) fifo0 (
        .clk(clk), .rst(rst), .push(push), .pop(pop),
        .din(sample ^ lfsr), .dout(fifo_out),
        .empty(fifo_empty), .full(fifo_full)
    );

    // ---- outputs ------------------------------------------------------------
    reg [15:0] csum;
    always @(posedge clk) begin
        if (rst) csum <= 0;
        else csum <= (csum ^ acc[15:0]) + {{12'd0, grant}};
    end

    assign fir_out = acc;
    assign scrambled = sample ^ lfsr;
    assign checksum = csum;
endmodule
"""
