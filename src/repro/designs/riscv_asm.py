"""A tiny RV32I assembler for the riscv_mini design.

Supports the instruction subset the core implements; used by tests,
examples and benchmark program images.  Registers are ``x0``..``x31`` (ABI
aliases for the common ones), immediates are decimal or 0x-hex.

Example::

    words = assemble('''
        addi x1, x0, 10      # n = 10
        addi x2, x0, 0       # acc = 0
    loop:
        add  x2, x2, x1
        addi x1, x1, -1
        bne  x1, x0, loop
        sw   x2, 0x7F4(x0)   # write result to the output port
    halt:
        jal  x0, halt
    ''')
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.utils.errors import ReproError


class AsmError(ReproError):
    pass


_ABI = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7, "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15,
    "a6": 16, "a7": 17, "s2": 18, "s3": 19, "s4": 20, "s5": 21,
    "s6": 22, "s7": 23, "s8": 24, "s9": 25, "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}


def _reg(tok: str) -> int:
    tok = tok.strip().lower()
    if tok in _ABI:
        return _ABI[tok]
    m = re.fullmatch(r"x(\d+)", tok)
    if not m or not 0 <= int(m.group(1)) < 32:
        raise AsmError(f"bad register {tok!r}")
    return int(m.group(1))


def _imm(tok: str, labels: Dict[str, int], pc: int) -> int:
    tok = tok.strip()
    if tok in labels:
        return labels[tok] - pc  # pc-relative by default for labels
    try:
        return int(tok, 0)
    except ValueError:
        raise AsmError(f"bad immediate {tok!r}")


def _enc_r(funct7, rs2, rs1, funct3, rd, opcode):
    return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode


def _enc_i(imm, rs1, funct3, rd, opcode):
    return ((imm & 0xFFF) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode


def _enc_s(imm, rs2, rs1, funct3, opcode):
    return (
        (((imm >> 5) & 0x7F) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | ((imm & 0x1F) << 7)
        | opcode
    )


def _enc_b(imm, rs2, rs1, funct3):
    return (
        (((imm >> 12) & 1) << 31)
        | (((imm >> 5) & 0x3F) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | (((imm >> 1) & 0xF) << 8)
        | (((imm >> 11) & 1) << 7)
        | 0x63
    )


def _enc_u(imm, rd, opcode):
    return (imm & 0xFFFFF000) | (rd << 7) | opcode


def _enc_j(imm, rd):
    return (
        (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xFF) << 12)
        | (rd << 7)
        | 0x6F
    )


_R_OPS = {
    "add": (0x00, 0), "sub": (0x20, 0), "sll": (0x00, 1), "slt": (0x00, 2),
    "sltu": (0x00, 3), "xor": (0x00, 4), "srl": (0x00, 5), "sra": (0x20, 5),
    "or": (0x00, 6), "and": (0x00, 7),
}
_I_OPS = {
    "addi": 0, "slti": 2, "sltiu": 3, "xori": 4, "ori": 6, "andi": 7,
}
_SHIFT_OPS = {"slli": (0x00, 1), "srli": (0x00, 5), "srai": (0x20, 5)}
_B_OPS = {"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7}

_MEM_RE = re.compile(r"^(-?\w+)\s*\(\s*(\w+)\s*\)$")


def _split_operands(rest: str) -> List[str]:
    return [p.strip() for p in rest.split(",")] if rest.strip() else []


def assemble(text: str, base: int = 0) -> List[int]:
    """Assemble ``text`` to a list of 32-bit instruction words."""
    # Pass 1: labels.
    labels: Dict[str, int] = {}
    prog: List[Tuple[int, str, str]] = []  # (pc, mnemonic, operands)
    pc = base
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        while True:
            m = re.match(r"^(\w+)\s*:\s*(.*)$", line)
            if not m:
                break
            labels[m.group(1)] = pc
            line = m.group(2).strip()
        if not line:
            continue
        parts = line.split(None, 1)
        prog.append((pc, parts[0].lower(), parts[1] if len(parts) > 1 else ""))
        pc += 4

    # Pass 2: encoding.
    out: List[int] = []
    for pc, op, rest in prog:
        ops = _split_operands(rest)
        try:
            out.append(_encode_one(op, ops, labels, pc))
        except AsmError as exc:
            raise AsmError(f"at pc={pc:#x} ({op} {rest}): {exc}") from exc
    return out


def _encode_one(op: str, ops: List[str], labels: Dict[str, int], pc: int) -> int:
    if op in _R_OPS:
        f7, f3 = _R_OPS[op]
        rd, rs1, rs2 = _reg(ops[0]), _reg(ops[1]), _reg(ops[2])
        return _enc_r(f7, rs2, rs1, f3, rd, 0x33)
    if op in _I_OPS:
        rd, rs1 = _reg(ops[0]), _reg(ops[1])
        imm = _imm(ops[2], {}, pc)
        if not -2048 <= imm < 2048:
            raise AsmError(f"immediate {imm} out of I-type range")
        return _enc_i(imm, rs1, _I_OPS[op], rd, 0x13)
    if op in _SHIFT_OPS:
        f7, f3 = _SHIFT_OPS[op]
        rd, rs1 = _reg(ops[0]), _reg(ops[1])
        sh = _imm(ops[2], {}, pc)
        if not 0 <= sh < 32:
            raise AsmError(f"shift amount {sh} out of range")
        return _enc_i((f7 << 5) | sh, rs1, f3, rd, 0x13)
    if op in _B_OPS:
        rs1, rs2 = _reg(ops[0]), _reg(ops[1])
        off = _imm(ops[2], labels, pc)
        if off % 2:
            raise AsmError("branch target must be 2-byte aligned")
        return _enc_b(off, rs2, rs1, _B_OPS[op])
    if op == "lw":
        rd = _reg(ops[0])
        m = _MEM_RE.match(ops[1])
        if not m:
            raise AsmError(f"bad memory operand {ops[1]!r}")
        imm = _imm(m.group(1), {}, pc)
        return _enc_i(imm, _reg(m.group(2)), 2, rd, 0x03)
    if op == "sw":
        rs2 = _reg(ops[0])
        m = _MEM_RE.match(ops[1])
        if not m:
            raise AsmError(f"bad memory operand {ops[1]!r}")
        imm = _imm(m.group(1), {}, pc)
        return _enc_s(imm, rs2, _reg(m.group(2)), 2, 0x23)
    if op == "lui":
        return _enc_u(_imm(ops[1], {}, pc) << 12, _reg(ops[0]), 0x37)
    if op == "auipc":
        return _enc_u(_imm(ops[1], {}, pc) << 12, _reg(ops[0]), 0x17)
    if op == "jal":
        rd = _reg(ops[0])
        off = _imm(ops[1], labels, pc)
        return _enc_j(off, rd)
    if op == "jalr":
        rd = _reg(ops[0])
        m = _MEM_RE.match(ops[1]) if len(ops) == 2 else None
        if m:
            return _enc_i(_imm(m.group(1), {}, pc), _reg(m.group(2)), 0, rd, 0x67)
        rs1 = _reg(ops[1])
        imm = _imm(ops[2], {}, pc) if len(ops) > 2 else 0
        return _enc_i(imm, rs1, 0, rd, 0x67)
    if op == "nop":
        return _enc_i(0, 0, 0, 0, 0x13)
    if op == "mv":
        return _enc_i(0, _reg(ops[1]), 0, _reg(ops[0]), 0x13)
    if op == "li":
        value = _imm(ops[1], {}, pc)
        if -2048 <= value < 2048:
            return _enc_i(value, 0, 0, _reg(ops[0]), 0x13)
        raise AsmError("li only supports 12-bit immediates; use lui+addi")
    if op == "j":
        return _enc_j(_imm(ops[0], labels, pc), 0)
    raise AsmError(f"unknown mnemonic {op!r}")
