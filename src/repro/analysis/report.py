"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table (the harness' paper-style output)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]

    def line(row: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(row, widths))

    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(cells[0]))
    out.append(line(["-" * w for w in widths]))
    for row in cells[1:]:
        out.append(line(row))
    return "\n".join(out)
