"""Terminal plots for the figure experiments.

The paper's figures are line charts (runtime vs #stimulus, utilization vs
#stimulus) and stacked bars (runtime breakdown); these render readable
ASCII equivalents so ``python -m benchmarks.harness`` output matches the
figures at a glance without matplotlib.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Sequence, Tuple

_MARKERS = "ox+*#@%&"


def ascii_lineplot(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    logx: bool = False,
    logy: bool = False,
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Plot named (x, y) series on one canvas with per-series markers."""
    pts = [(x, y) for s in series.values() for x, y in s]
    if not pts:
        return "(no data)"

    def tx(v: float) -> float:
        return math.log10(max(v, 1e-12)) if logx else v

    def ty(v: float) -> float:
        return math.log10(max(v, 1e-12)) if logy else v

    xs = [tx(x) for x, _ in pts]
    ys = [ty(y) for _, y in pts]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xr = (x1 - x0) or 1.0
    yr = (y1 - y0) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for i, (name, data) in enumerate(series.items()):
        marker = _MARKERS[i % len(_MARKERS)]
        for x, y in data:
            col = int((tx(x) - x0) / xr * (width - 1))
            row = height - 1 - int((ty(y) - y0) / yr * (height - 1))
            grid[row][col] = marker

    lines: List[str] = []
    ymax_label = f"{10 ** y1:.3g}" if logy else f"{y1:.3g}"
    ymin_label = f"{10 ** y0:.3g}" if logy else f"{y0:.3g}"
    label_w = max(len(ymax_label), len(ymin_label), len(ylabel)) + 1
    for r, row in enumerate(grid):
        if r == 0:
            label = ymax_label
        elif r == height - 1:
            label = ymin_label
        elif r == height // 2 and ylabel:
            label = ylabel
        else:
            label = ""
        lines.append(f"{label:>{label_w}} |{''.join(row)}|")
    xmax_label = f"{10 ** x1:.3g}" if logx else f"{x1:.3g}"
    xmin_label = f"{10 ** x0:.3g}" if logx else f"{x0:.3g}"
    axis = f"{'':>{label_w}} +{'-' * width}+"
    xaxis = (
        f"{'':>{label_w}}  {xmin_label}"
        f"{xlabel:^{max(1, width - len(xmin_label) - len(xmax_label))}}"
        f"{xmax_label}"
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {name}"
        for i, name in enumerate(series)
    )
    return "\n".join(lines + [axis, xaxis, f"{'':>{label_w}}  {legend}"])


def ascii_stacked_bars(
    categories: Sequence[str],
    parts: Mapping[str, Sequence[float]],
    width: int = 50,
    unit: str = "s",
) -> str:
    """Horizontal stacked bars (Fig. 2's breakdown chart).

    ``parts`` maps part name -> per-category values; each bar stacks the
    parts with distinct fill characters.
    """
    fills = "#=.~:+"
    totals = [sum(vals[i] for vals in parts.values())
              for i in range(len(categories))]
    vmax = max(totals) if totals else 1.0
    label_w = max(len(str(c)) for c in categories) + 1
    lines = []
    for i, cat in enumerate(categories):
        bar = ""
        for j, (name, vals) in enumerate(parts.items()):
            n = int(round(vals[i] / vmax * width))
            bar += fills[j % len(fills)] * n
        lines.append(
            f"{str(cat):>{label_w}} |{bar:<{width}}| {totals[i]:.3g}{unit}"
        )
    legend = "   ".join(
        f"{fills[j % len(fills)]} = {name}" for j, name in enumerate(parts)
    )
    lines.append(f"{'':>{label_w}}  {legend}")
    return "\n".join(lines)
