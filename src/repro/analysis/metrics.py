"""Code metrics over transpiled sources (Table 1).

The paper reports, per design and per transpiler (Verilator vs RTLflow):
lines of code, average cyclomatic complexity per function, total token
count, and transpilation time.  Here the "Verilator" column is our scalar
straight-line code generator and the "RTLflow" column the batch kernel
generator; both emit Python, so the metrics use Python's own tokenizer
and AST.
"""

from __future__ import annotations

import ast
import io
import time
import tokenize
from dataclasses import dataclass
from typing import Dict, List

from repro.rtlir.graph import RtlGraph


@dataclass
class CodeMetrics:
    loc: int
    tokens: int
    functions: int
    cc_avg: float  # average cyclomatic complexity per function
    transpile_seconds: float = 0.0

    def as_row(self) -> Dict[str, float]:
        return {
            "LOC": self.loc,
            "CC_avg": round(self.cc_avg, 1),
            "#Tokens": self.tokens,
            "T_trans": round(self.transpile_seconds, 3),
        }


class _CCVisitor(ast.NodeVisitor):
    """Counts decision points per function (McCabe)."""

    def __init__(self) -> None:
        self.per_function: List[int] = []
        self._stack: List[int] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._stack.append(1)
        self.generic_visit(node)
        self.per_function.append(self._stack.pop())

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _bump(self, amount: int = 1) -> None:
        if self._stack:
            self._stack[-1] += amount

    def visit_If(self, node: ast.If) -> None:
        self._bump()
        self.generic_visit(node)

    def visit_IfExp(self, node: ast.IfExp) -> None:
        self._bump()
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._bump()
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        self._bump()
        self.generic_visit(node)

    def visit_BoolOp(self, node: ast.BoolOp) -> None:
        self._bump(len(node.values) - 1)
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        self._bump()
        self.generic_visit(node)


def code_metrics(source: str, transpile_seconds: float = 0.0) -> CodeMetrics:
    """Compute LOC / tokens / functions / avg CC for a Python source."""
    loc = sum(
        1
        for line in source.splitlines()
        if line.strip() and not line.strip().startswith("#")
    )
    ntokens = 0
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type in (
                tokenize.NEWLINE,
                tokenize.NL,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENDMARKER,
                tokenize.COMMENT,
            ):
                continue
            ntokens += 1
    except tokenize.TokenError:  # pragma: no cover - generated code is valid
        pass

    tree = ast.parse(source)
    visitor = _CCVisitor()
    visitor.visit(tree)
    funcs = visitor.per_function
    cc_avg = sum(funcs) / len(funcs) if funcs else 0.0
    return CodeMetrics(
        loc=loc,
        tokens=ntokens,
        functions=len(funcs),
        cc_avg=cc_avg,
        transpile_seconds=transpile_seconds,
    )


def transpilation_row(graph: RtlGraph, target_weight: float = 64.0) -> Dict[str, Dict]:
    """Produce one Table 1 row: both transpilers over one design.

    Returns ``{"design": stats, "verilator": metrics, "rtlflow": metrics}``.
    """
    from repro.baselines.scalargen import generate_scalar_model
    from repro.core.codegen import transpile

    t0 = time.perf_counter()
    spec = generate_scalar_model(graph)
    scalar_elapsed = time.perf_counter() - t0

    t0 = time.perf_counter()
    model = transpile(graph, target_weight=target_weight)
    batch_elapsed = time.perf_counter() - t0

    return {
        "design": graph.stats(),
        "verilator": code_metrics(spec.source, scalar_elapsed),
        "rtlflow": code_metrics(model.source, batch_elapsed),
    }
