"""Transpilation metrics and report formatting (Table 1 et al.)."""

from repro.analysis.metrics import CodeMetrics, code_metrics, transpilation_row
from repro.analysis.report import format_table

__all__ = ["CodeMetrics", "code_metrics", "transpilation_row", "format_table"]
