"""Waveform capture: VCD dump of selected lanes of a batch simulation."""

from repro.waveform.vcd import VcdWriter, dump_vcd, parse_vcd

__all__ = ["VcdWriter", "dump_vcd", "parse_vcd"]
