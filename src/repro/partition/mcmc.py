"""GPU-aware partitioning via MCMC sampling (§3.2.1, Algorithm 1).

The optimizer explores weight vectors for the merge function; the
estimator evaluates each proposed task graph *in real operating
conditions* — it transpiles, compiles and runs the candidate on a small
number of stimulus and cycles, exactly as the paper's estimator does
(Fig. 8's "Compile & Run").

Cost model
----------
The estimator reports *simulated device time*: per comb level, one launch
overhead (graph launch) plus the maximum of the level's kernel busy times
— kernels within a level are independent and run concurrently on the
device (the property Fig. 14 credits for the GPU-aware partition's win).
Oversized tasks serialize work that could overlap; over-fragmented tasks
drown in launch overhead and per-kernel inefficiency.  The MCMC walk
balances the two, and because kernel busy times are *measured*, the
estimate reflects real compiler/runtime behaviour rather than hard-coded
instruction counts.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.gpu.device import SimulatedDevice
from repro.obs import get_metrics, get_tracer
from repro.partition.merge import DEFAULT_TARGET_WEIGHT, partition
from repro.partition.taskgraph import TaskGraph
from repro.partition.weights import WeightVector
from repro.resilience.retry import RetryPolicy, call_with_retry
from repro.rtlir.graph import RtlGraph
from repro.utils.errors import RetryExhausted, WatchdogTimeout

DEFAULT_MAX_ITER = 150  # the paper's sampling budget
DEFAULT_MAX_UNIMPROVED = 30
DEFAULT_BETA = 25.0


class Estimator:
    """Compile-and-run cost estimator for a candidate partition."""

    def __init__(
        self,
        graph: RtlGraph,
        n_stimulus: int = 256,
        cycles: int = 64,
        seed: int = 0,
        device: Optional[SimulatedDevice] = None,
        repeats: int = 1,
    ):
        self.graph = graph
        self.n = n_stimulus
        self.cycles = cycles
        self.repeats = max(1, repeats)
        self.device = device or SimulatedDevice()
        self._rng = np.random.default_rng(seed)
        self.evaluations = 0
        # Random input data shared by every estimate so costs compare.
        self._input_data = {
            s.name: self._rng.integers(0, 1 << 32, size=n_stimulus, dtype=np.uint64)
            for s in graph.design.inputs
        }

    def estimate_cost(self, taskgraph: TaskGraph) -> float:
        """Simulated device seconds for one full evaluation cycle."""
        with get_tracer().span("estimate_cost", resource="mcmc"):
            cost = self._estimate_cost(taskgraph)
        get_metrics().observe("mcmc.estimate_cost_seconds", cost)
        return cost

    def _estimate_cost(self, taskgraph: TaskGraph) -> float:
        # Imported lazily: codegen depends on the partition package.
        from repro.core.codegen import KernelCodegen
        from repro.core.memory import DeviceArrays

        self.evaluations += 1
        with get_tracer().span("compile_candidate", resource="mcmc"):
            model = KernelCodegen(taskgraph).compile()
        arrays = DeviceArrays(model.layout, self.n)
        for name, vals in self._input_data.items():
            arrays.write(name, vals)
        args = (arrays.pools[0], arrays.pools[1], arrays.pools[2],
                arrays.pools[3], arrays.n, arrays.lane)

        # Warm up (first call pays numpy allocation effects).
        for t in taskgraph.tasks:
            model.task_fns[t.tid](*args)

        # Measure per-task kernel time; take the minimum over repeats (the
        # standard noise-robust timing estimator).
        task_time: Dict[int, float] = {}
        for t in taskgraph.tasks:
            fn = model.task_fns[t.tid]
            best = math.inf
            for _ in range(self.repeats):
                t0 = time.perf_counter()
                fn(*args)
                best = min(best, time.perf_counter() - t0)
            task_time[t.tid] = best

        launch = self.device.graph_launch_s
        klaunch = self.device.kernel_launch_s

        # Concurrency-aware device time: per level, kernels overlap.
        per_cycle = 0.0
        for level in taskgraph.comb_levels:
            per_cycle += launch / max(1, len(taskgraph.comb_levels))
            per_cycle += max(task_time[t] for t in level)
            # Each extra kernel in flight still costs a (pipelined) fraction
            # of a launch: concurrency is not free on a real device.
            per_cycle += 0.15 * klaunch * len(level)
        for tid in taskgraph.seq_tasks:
            per_cycle += 0.15 * klaunch
        if taskgraph.seq_tasks:
            per_cycle += launch
            per_cycle += max(task_time[t] for t in taskgraph.seq_tasks)

        return per_cycle * self.cycles


@dataclass
class MCMCResult:
    weights: WeightVector
    best_cost: float
    initial_cost: float
    cost_history: List[float] = field(default_factory=list)
    accepted: int = 0
    iterations: int = 0
    evaluations: int = 0
    # Resilience bookkeeping: trials whose every attempt crashed, hung, or
    # timed out are scored ``inf`` (Metropolis rejects them) instead of
    # aborting the optimization.
    failed_trials: int = 0
    trial_retries: int = 0
    trial_timeouts: int = 0

    @property
    def improvement(self) -> float:
        if (self.initial_cost <= 0
                or not math.isfinite(self.initial_cost)
                or not math.isfinite(self.best_cost)):
            return 0.0
        return (self.initial_cost - self.best_cost) / self.initial_cost


class MCMCPartitioner:
    """Algorithm 1: Metropolis–Hastings over partition weight vectors."""

    def __init__(
        self,
        graph: RtlGraph,
        estimator: Optional[Estimator] = None,
        target_weight: float = DEFAULT_TARGET_WEIGHT,
        beta: float = DEFAULT_BETA,
        seed: int = 0,
        max_iter: int = DEFAULT_MAX_ITER,
        max_unimproved: int = DEFAULT_MAX_UNIMPROVED,
        strategy: str = "levelpack",
        top_k: int = 30,
        retry: Optional[RetryPolicy] = None,
        fault_plan=None,
    ):
        self.graph = graph
        self.estimator = estimator or Estimator(graph)
        self.target_weight = target_weight
        self.beta = beta
        self.rng = np.random.default_rng(seed)
        self.max_iter = max_iter
        self.max_unimproved = max_unimproved
        self.strategy = strategy
        self.top_k = top_k
        # Watchdog + bounded retry around the compile-and-run trials: a
        # crashed or hung candidate scores ``inf`` (rejected) instead of
        # killing the whole optimization.  ``fault_plan`` injects scripted
        # trial failures (see repro.resilience.inject) for testing.
        #
        # Contract when ``fault_plan`` is set but ``retry`` is None: the
        # trials run under ``RetryPolicy()`` defaults (max_attempts=2, no
        # timeout), so a persistent injected fault is retried once before
        # scoring ``inf`` — pass an explicit ``RetryPolicy(max_attempts=1)``
        # to observe each injected fault exactly once.  Hang injections are
        # only bounded when the effective policy sets ``timeout_s``; with
        # no timeout a hang simply sleeps its scripted duration and the
        # trial returns a normal (untimed-out) cost.
        self.retry = retry
        self.fault_plan = fault_plan
        self._failed_trials = 0
        self._trial_retries = 0
        self._trial_timeouts = 0

    def propose(self, weights: WeightVector) -> TaskGraph:
        return partition(
            self.graph,
            weights=weights,
            target_weight=self.target_weight,
            strategy=self.strategy,
        )

    def accept_rate(self, new_cost: float, cur_cost: float) -> float:
        """Eq. 3: min(1, exp(beta * (cost(G) - cost(G*))))."""
        if math.isinf(cur_cost):
            return 1.0
        rel = (cur_cost - new_cost) / max(cur_cost, 1e-12)
        return min(1.0, math.exp(self.beta * rel))

    def optimize(self) -> MCMCResult:
        with get_tracer().span("mcmc.optimize", resource="mcmc"):
            result = self._optimize()
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("mcmc.runs")
            metrics.inc("mcmc.iterations", result.iterations)
            metrics.inc("mcmc.evaluations", result.evaluations)
            metrics.inc("mcmc.accepted", result.accepted)
            metrics.set_gauge(
                "mcmc.acceptance_rate",
                result.accepted / result.iterations if result.iterations else 0.0,
            )
            # Failed trials score inf; keep non-finite values out of the
            # gauges and the trajectory (JSON export chokes on Infinity).
            if math.isfinite(result.initial_cost):
                metrics.set_gauge("mcmc.initial_cost", result.initial_cost)
            if math.isfinite(result.best_cost):
                metrics.set_gauge("mcmc.best_cost", result.best_cost)
            metrics.set_gauge("mcmc.improvement", result.improvement)
            if result.failed_trials:
                metrics.inc("mcmc.trials_failed", result.failed_trials)
            if result.trial_retries:
                metrics.inc("mcmc.trial_retries", result.trial_retries)
            if result.trial_timeouts:
                metrics.inc("mcmc.trial_timeouts", result.trial_timeouts)
            for cost in result.cost_history:
                if math.isfinite(cost):
                    metrics.observe("mcmc.cost_trajectory", cost)
        return result

    def _trial_cost(self, taskgraph: TaskGraph, iteration: int) -> float:
        """One guarded compile-and-run trial (Algorithm 1 line 9).

        Without a retry policy or fault plan this is a plain estimate
        (zero overhead).  Otherwise the trial runs under the watchdog +
        bounded-retry harness; exhaustion scores ``inf``, which the
        Metropolis step always rejects.

        A ``fault_plan`` with no explicit ``retry`` policy uses
        ``RetryPolicy()`` defaults (max_attempts=2, no timeout) — see the
        constructor notes for how that interacts with persistent-fault
        and hang injections.
        """
        if self.retry is None and self.fault_plan is None:
            return self.estimator.estimate_cost(taskgraph)

        def attempt() -> float:
            if self.fault_plan is not None:
                self.fault_plan.maybe_fail_trial(iteration)
            return self.estimator.estimate_cost(taskgraph)

        def on_failure(_attempt: int, exc: BaseException) -> None:
            self._trial_retries += 1
            if isinstance(exc, WatchdogTimeout):
                self._trial_timeouts += 1

        policy = self.retry if self.retry is not None else RetryPolicy()
        try:
            return call_with_retry(
                attempt, policy, label=f"mcmc trial {iteration}",
                on_failure=on_failure,
            )
        except RetryExhausted:
            self._failed_trials += 1
            return math.inf

    def _optimize(self) -> MCMCResult:
        weights = WeightVector.ones(self.graph, self.top_k)  # line 5
        cur_cost = math.inf  # line 1
        best = weights.copy()
        best_cost = math.inf
        self._failed_trials = self._trial_retries = self._trial_timeouts = 0
        initial_cost = self._trial_cost(self.propose(weights), 0)
        cur_cost = initial_cost
        best_cost = initial_cost
        history = [initial_cost]
        accepted = 0
        cnt = 0
        it = 0
        while cnt < self.max_unimproved and it < self.max_iter:  # line 6
            it += 1
            candidate = weights.copy()
            candidate.random_increase(self.rng)  # line 7
            graph = self.propose(candidate)  # line 8
            cost = self._trial_cost(graph, it)  # line 9
            history.append(cost)
            if cur_cost > cost:  # lines 10-14
                weights = candidate
                cur_cost = cost
                accepted += 1
                cnt = 0
            else:  # lines 15-21
                rand = self.rng.uniform(0.0, 1.0)
                if self.accept_rate(cost, cur_cost) > rand:
                    weights = candidate
                    cur_cost = cost
                    accepted += 1
                cnt += 1
            if cur_cost < best_cost:
                best = weights.copy()
                best_cost = cur_cost
        return MCMCResult(
            weights=best,
            best_cost=best_cost,
            initial_cost=initial_cost,
            cost_history=history,
            accepted=accepted,
            iterations=it,
            evaluations=self.estimator.evaluations,
            failed_trials=self._failed_trials,
            trial_retries=self._trial_retries,
            trial_timeouts=self._trial_timeouts,
        )
