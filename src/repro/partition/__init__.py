"""RTL graph partitioning into GPU macro tasks (§3.2.1).

* :mod:`repro.partition.weights` — the weight function of Eq. 1.
* :mod:`repro.partition.merge` — node-to-task merging (the Verilator-style
  default with hard-coded weights, and the weighted variant the MCMC
  sampler drives).
* :mod:`repro.partition.mcmc` — the GPU-aware Metropolis–Hastings
  optimizer of Algorithm 1 with its compile-and-run cost estimator.
"""

from repro.partition.taskgraph import Task, TaskGraph
from repro.partition.weights import WeightVector
from repro.partition.merge import partition
from repro.partition.mcmc import MCMCPartitioner, MCMCResult, Estimator

__all__ = [
    "Task",
    "TaskGraph",
    "WeightVector",
    "partition",
    "MCMCPartitioner",
    "MCMCResult",
    "Estimator",
]
