"""Macro-task graph: the unit of kernel generation and GPU scheduling.

A :class:`Task` is a set of RTL nodes that becomes one generated kernel
(the paper's ``__global__`` macro task); the :class:`TaskGraph` records the
dependency DAG among combinational tasks plus the (mutually independent)
sequential tasks per clock domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.rtlir.graph import NodeKind, RtlGraph
from repro.utils.errors import SimulationError


@dataclass
class Task:
    tid: int
    kind: NodeKind  # COMB, or SEQ (covers SEQ+MEMW compute nodes)
    nodes: List[int]
    clock: Optional[str] = None
    edge: str = "posedge"
    level: int = 0
    weight: float = 0.0


@dataclass
class TaskGraph:
    graph: RtlGraph
    tasks: List[Task] = field(default_factory=list)
    preds: Dict[int, Set[int]] = field(default_factory=dict)
    succs: Dict[int, Set[int]] = field(default_factory=dict)
    comb_topo: List[int] = field(default_factory=list)
    comb_levels: List[List[int]] = field(default_factory=list)
    seq_tasks: List[int] = field(default_factory=list)
    node_task: Dict[int, int] = field(default_factory=dict)

    # -- construction helpers -------------------------------------------------

    def add_task(self, task: Task) -> Task:
        task.tid = len(self.tasks)
        self.tasks.append(task)
        for nid in task.nodes:
            self.node_task[nid] = task.tid
        return task

    def finalize(self) -> None:
        """Derive task-level edges and a level-ordered topo schedule."""
        comb_tids = [t.tid for t in self.tasks if t.kind is NodeKind.COMB]
        self.preds = {t: set() for t in comb_tids}
        self.succs = {t: set() for t in comb_tids}
        g = self.graph
        for t in self.tasks:
            if t.kind is not NodeKind.COMB:
                continue
            for nid in t.nodes:
                for p in g.preds.get(nid, ()):
                    pt = self.node_task[p]
                    if pt != t.tid:
                        self.preds[t.tid].add(pt)
                        self.succs[pt].add(t.tid)

        # Levelize the task DAG (it must be acyclic by construction).
        indeg = {t: len(self.preds[t]) for t in comb_tids}
        level: Dict[int, int] = {}
        ready = [t for t in comb_tids if indeg[t] == 0]
        for t in ready:
            level[t] = 0
        order: List[int] = []
        queue = list(ready)
        while queue:
            t = queue.pop()
            order.append(t)
            for s in self.succs[t]:
                indeg[s] -= 1
                level[s] = max(level.get(s, 0), level[t] + 1)
                if indeg[s] == 0:
                    queue.append(s)
        if len(order) != len(comb_tids):
            raise SimulationError(
                "internal: task merge produced a cyclic task graph"
            )
        order.sort(key=lambda t: level[t])
        self.comb_topo = order
        nlv = max(level.values()) + 1 if level else 0
        self.comb_levels = [[] for _ in range(nlv)]
        for t in order:
            self.tasks[t].level = level[t]
            self.comb_levels[level[t]].append(t)
        self.seq_tasks = [t.tid for t in self.tasks if t.kind is NodeKind.SEQ]

    # -- introspection ---------------------------------------------------------

    def task_reads(self, tid: int) -> Set[str]:
        """Signal/memory names task ``tid`` reads (its activity trigger set).

        A SEQ/MEMW task's clock is *not* a read: edge detection is the
        simulator's job, and including it would mark every sequential
        task dirty on each toggle, defeating conditional replay.
        """
        task = self.tasks[tid]
        out: Set[str] = set()
        for nid in task.nodes:
            node = self.graph.nodes[nid]
            out.update(node.reads)
            if node.clock is not None:
                out.discard(node.clock)
        return out

    def task_writes(self, tid: int) -> Set[str]:
        """Signal/memory names task ``tid`` drives."""
        return {self.graph.nodes[nid].target for nid in self.tasks[tid].nodes}

    @property
    def n_comb_tasks(self) -> int:
        return len(self.comb_topo)

    @property
    def n_seq_tasks(self) -> int:
        return len(self.seq_tasks)

    def validate_cover(self) -> None:
        """Check every RTL node belongs to exactly one task."""
        seen: Set[int] = set()
        for t in self.tasks:
            for nid in t.nodes:
                if nid in seen:
                    raise SimulationError(f"node {nid} assigned to two tasks")
                seen.add(nid)
        expected = {n.nid for n in self.graph.nodes}
        if seen != expected:
            missing = sorted(expected - seen)[:5]
            raise SimulationError(f"nodes not covered by any task: {missing}")

    def level_widths(self) -> List[int]:
        """Concurrent kernels available per level (Fig. 14's parallelism)."""
        return [len(lv) for lv in self.comb_levels]

    def max_concurrency(self) -> int:
        return max(self.level_widths(), default=0)

    def stats(self) -> Dict[str, float]:
        widths = self.level_widths()
        comb = [self.tasks[t] for t in self.comb_topo]
        return {
            "comb_tasks": len(comb),
            "seq_tasks": len(self.seq_tasks),
            "levels": len(self.comb_levels),
            "max_width": max(widths, default=0),
            "avg_width": (sum(widths) / len(widths)) if widths else 0.0,
            "avg_task_nodes": (
                sum(len(t.nodes) for t in comb) / len(comb) if comb else 0.0
            ),
        }

    def to_dot(self, max_tasks: int = 60) -> str:
        """Render the comb task DAG as Graphviz DOT (Fig. 14 style)."""
        lines = ["digraph taskgraph {", "  rankdir=TB;", "  node [shape=box];"]
        shown = set(self.comb_topo[:max_tasks])
        for t in self.comb_topo:
            if t not in shown:
                continue
            task = self.tasks[t]
            lines.append(
                f'  t{t} [label="task_{t}\\n{len(task.nodes)} nodes, '
                f'w={task.weight:.0f}"];'
            )
        for t in shown:
            for s in self.succs.get(t, ()):
                if s in shown:
                    lines.append(f"  t{t} -> t{s};")
        lines.append("}")
        return "\n".join(lines)
