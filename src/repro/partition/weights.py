"""The partitioning weight function (Eq. 1).

``weight_sum(task) = sum_{t in T} w_t * N_t`` where T is the set of the
top-k most frequently appearing RTL node types in the design, ``w_t`` the
(sampled) weight of type t and ``N_t`` the number of such nodes in the
task.  Node types not in T count with weight 1, so a task's weight never
collapses to zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.rtlir.graph import RtlGraph, RtlNode

DEFAULT_TOP_K = 30

# Hard-coded per-op costs in the spirit of Verilator's static instruction
# estimates (§3.2.1: "hard-coded parameters to estimate the cost of
# clustering nodes in terms of CPU instructions").  Used by the default
# (non-MCMC) partitioner.
VERILATOR_STYLE_COSTS: Dict[str, float] = {
    "bin:*": 3.0,
    "bin:/": 16.0,
    "bin:%": 16.0,
    "bin:**": 20.0,
    "arrsel": 4.0,
    "mux": 2.0,
    "concat": 2.0,
    "repeat": 2.0,
    "const": 0.0,
    "varref": 0.5,
}


@dataclass
class WeightVector:
    """A sampled weight assignment over the top-k op types."""

    types: List[str]
    values: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def ones(cls, graph: RtlGraph, k: int = DEFAULT_TOP_K) -> "WeightVector":
        """Algorithm 1 line 5: initialize every weight to one."""
        types = graph.top_op_types(k)
        return cls(types, {t: 1.0 for t in types})

    @classmethod
    def verilator_default(cls, graph: RtlGraph, k: int = DEFAULT_TOP_K) -> "WeightVector":
        """The hard-coded baseline (RTLflow^-g in Table 3)."""
        types = graph.top_op_types(k)
        return cls(
            types, {t: VERILATOR_STYLE_COSTS.get(t, 1.0) for t in types}
        )

    def copy(self) -> "WeightVector":
        return WeightVector(list(self.types), dict(self.values))

    def random_increase(self, rng: np.random.Generator, step: float = 1.0) -> str:
        """Algorithm 1 line 7: randomly increase one weight.

        Returns the op type whose weight changed (useful for logging).
        """
        t = self.types[int(rng.integers(len(self.types)))]
        self.values[t] = self.values.get(t, 1.0) + step
        return t

    def node_weight(self, node: RtlNode) -> float:
        total = 0.0
        for t, cnt in node.op_hist.items():
            total += self.values.get(t, 1.0) * cnt
        return max(1.0, total)

    def weight_sum(self, nodes: List[RtlNode]) -> float:
        """Eq. 1 over a merged task."""
        return sum(self.node_weight(n) for n in nodes)

    def as_array(self) -> np.ndarray:
        return np.array([self.values[t] for t in self.types], dtype=float)
