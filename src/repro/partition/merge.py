"""Node-to-task merging.

Two strategies are provided:

* ``levelpack`` (default) — nodes are taken level by level in topological
  order and packed into tasks until the task's ``weight_sum`` (Eq. 1)
  reaches the target granularity.  Because a task never spans levels the
  result is a DAG by construction, and the number of concurrent kernels
  per level — the property the paper's Fig. 14 highlights — follows
  directly from the weight vector.
* ``chain`` — a Sarkar-style refinement that first contracts
  single-producer/single-consumer chains across levels (reducing kernel
  count for deep, narrow regions), then packs like ``levelpack``.

The MCMC sampler (``repro.partition.mcmc``) drives either strategy by
proposing new weight vectors; larger weights on a type make tasks
containing that type fill up sooner, producing more, smaller, more
concurrent kernels in the regions where the type dominates.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.partition.taskgraph import Task, TaskGraph
from repro.partition.weights import WeightVector
from repro.rtlir.graph import NodeKind, RtlGraph
from repro.utils.errors import SimulationError

DEFAULT_TARGET_WEIGHT = 64.0


def _pack_level(
    g: RtlGraph,
    tg: TaskGraph,
    nids: List[int],
    weights: WeightVector,
    target: float,
    kind: NodeKind,
    clock: Optional[str] = None,
    edge: str = "posedge",
) -> None:
    bucket: List[int] = []
    wsum = 0.0
    for nid in nids:
        w = weights.node_weight(g.nodes[nid])
        if bucket and wsum + w > target:
            tg.add_task(Task(-1, kind, bucket, clock=clock, edge=edge, weight=wsum))
            bucket, wsum = [], 0.0
        bucket.append(nid)
        wsum += w
    if bucket:
        tg.add_task(Task(-1, kind, bucket, clock=clock, edge=edge, weight=wsum))


def _contract_chains(g: RtlGraph) -> List[List[int]]:
    """Group comb nodes into chains of single-successor/single-predecessor
    links; returns groups in a topological-compatible order."""
    chains: Dict[int, List[int]] = {}
    head: Dict[int, int] = {}
    for nid in g.comb_order:
        preds = g.preds.get(nid, set())
        if len(preds) == 1:
            (p,) = preds
            if len(g.succs.get(p, ())) == 1 and p in head:
                h = head[p]
                chains[h].append(nid)
                head[nid] = h
                continue
        chains[nid] = [nid]
        head[nid] = nid
    # Keep the order of chain heads as they appear topologically.
    return [chains[h] for h in g.comb_order if head[h] == h]


def partition(
    graph: RtlGraph,
    weights: Optional[WeightVector] = None,
    target_weight: float = DEFAULT_TARGET_WEIGHT,
    strategy: str = "levelpack",
) -> TaskGraph:
    """Partition ``graph`` into a macro-task graph.

    ``weights`` defaults to the Verilator-style hard-coded cost table
    (the paper's RTLflow^-g baseline).
    """
    if weights is None:
        weights = WeightVector.verilator_default(graph)
    if target_weight <= 0:
        raise SimulationError("target_weight must be positive")

    tg = TaskGraph(graph=graph)

    if strategy == "levelpack":
        for level_nodes in graph.levels:
            _pack_level(graph, tg, level_nodes, weights, target_weight, NodeKind.COMB)
    elif strategy == "chain":
        # Chains merge vertically; then pack chains by weight at the level
        # of the chain head.
        for chain in _contract_chains(graph):
            w = weights.weight_sum([graph.nodes[n] for n in chain])
            tg.add_task(Task(-1, NodeKind.COMB, list(chain), weight=w))
    else:
        raise SimulationError(f"unknown partition strategy {strategy!r}")

    # Sequential nodes: group per clock domain, then pack by weight.
    domains: Dict[tuple, List[int]] = {}
    for n in graph.seq_nodes + graph.memw_nodes:
        domains.setdefault((n.clock, n.edge), []).append(n.nid)
    for (clock, edge), nids in domains.items():
        _pack_level(
            graph, tg, nids, weights, target_weight, NodeKind.SEQ, clock, edge
        )

    tg.finalize()
    tg.validate_cover()
    return tg
