"""repro — a Python reproduction of RTLflow (Lin et al., ICPP 2022).

A GPU-acceleration flow for RTL simulation with batch stimulus: Verilog is
transpiled into vectorized batch kernels (one "thread" per stimulus), the
RTL graph is partitioned into macro tasks with an MCMC-tuned, GPU-aware
algorithm, executed through a CUDA-Graph-style define-once-run-repeatedly
plan, and overlapped with CPU-side input setting by a pipeline scheduler.

Public entry points:

* :class:`repro.RTLFlow` — the end-to-end flow (Fig. 3).
* :class:`repro.BatchSimulator` — the multi-stimulus runtime.
* :class:`repro.stimulus.StimulusBatch` — batch stimulus containers.
* :mod:`repro.baselines` — Verilator-like and ESSENT-like CPU baselines.
* :mod:`repro.designs` — the bundled benchmark designs.
"""

from repro.core.flow import RTLFlow
from repro.core.simulator import BatchSimulator
from repro.stimulus.batch import StimulusBatch

__version__ = "1.0.0"

__all__ = ["RTLFlow", "BatchSimulator", "StimulusBatch", "__version__"]
