"""Nsight-Systems-like timeline capture (Figs. 10 and 16).

Executors and the pipeline scheduler record named spans on named resource
rows ("CPU0", "GPU", "stream1", ...); :func:`render_timeline` draws an
ASCII swimlane chart so the overlap structure the paper shows with Nsight
screenshots can be inspected in a terminal.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


@dataclass
class TimelineSpan:
    resource: str
    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Thread-safe span recorder."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.spans: List[TimelineSpan] = []
        self._lock = threading.Lock()
        self._t0 = time.perf_counter()

    def reset(self) -> None:
        with self._lock:
            self.spans.clear()
            self._t0 = time.perf_counter()

    @contextmanager
    def span(self, resource: str, name: str) -> Iterator[None]:
        if not self.enabled:
            yield
            return
        start = time.perf_counter() - self._t0
        try:
            yield
        finally:
            end = time.perf_counter() - self._t0
            with self._lock:
                self.spans.append(TimelineSpan(resource, name, start, end))

    def record(self, resource: str, name: str, start: float, end: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.spans.append(TimelineSpan(resource, name, start, end))

    def busy_by_resource(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        with self._lock:
            for s in self.spans:
                out[s.resource] = out.get(s.resource, 0.0) + s.duration
        return out

    def window(self) -> float:
        with self._lock:
            if not self.spans:
                return 0.0
            return max(s.end for s in self.spans) - min(s.start for s in self.spans)


def render_timeline(
    spans: List[TimelineSpan],
    width: int = 100,
    resources: Optional[List[str]] = None,
) -> str:
    """ASCII swimlane rendering of a captured timeline.

    Each row is a resource; ``#`` marks busy time.  Used by the harness to
    reproduce the shape of the paper's Fig. 10 / Fig. 16 screenshots.
    """
    if not spans:
        return "(empty timeline)"
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    total = max(t1 - t0, 1e-9)
    if resources is None:
        resources = sorted({s.resource for s in spans})
    name_w = max(len(r) for r in resources) + 1
    lines = []
    scale = width / total
    for r in resources:
        row = [" "] * width
        for s in spans:
            if s.resource != r:
                continue
            a = int((s.start - t0) * scale)
            b = max(a + 1, int((s.end - t0) * scale))
            for i in range(a, min(b, width)):
                row[i] = "#"
        lines.append(f"{r:<{name_w}}|{''.join(row)}|")
    lines.append(f"{'':<{name_w}} 0{'':{width - 10}}{total * 1000:.1f} ms")
    return "\n".join(lines)
