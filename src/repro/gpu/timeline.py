"""Nsight-Systems-like timeline capture (Figs. 10 and 16).

Compatibility facade: the span recorder now lives in :mod:`repro.obs`
(:class:`repro.obs.Tracer` — same resource-row model plus hierarchical
nesting, aggregates and Chrome-trace export).  This module re-exports it
under the historical name and keeps :class:`TimelineSpan` /
:func:`render_timeline` for callers that build timelines by hand (e.g.
the virtual-time pipeline renderer).

Note the unified span signature: ``tracer.span(name, resource=...)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.trace import Tracer, render_timeline

__all__ = ["Tracer", "TimelineSpan", "render_timeline"]


@dataclass
class TimelineSpan:
    """A hand-constructed span for :func:`render_timeline`."""

    resource: str
    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start
