"""CUDA-Graph-style execution (§3.2.2, Fig. 9b).

The task graph is *instantiated once* into an executable plan — a flat,
dependency-respecting kernel order (plus optional whole-graph fusion into
a single kernel, the strongest form of the "whole-graph optimizations the
CUDA runtime can perform").  Each evaluation then replays the plan with a
single launch call, eliminating the per-kernel stream/event bookkeeping
the stream executor re-pays every cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Tuple

from repro.gpu.device import SimulatedDevice

if TYPE_CHECKING:  # type-only: avoids a core <-> gpu import cycle
    from repro.core.codegen import CompiledModel
    from repro.core.memory import DeviceArrays


class CudaGraphExecutor:
    """Define-once-run-repeatedly executor."""

    name = "graph"

    def __init__(
        self,
        model: CompiledModel,
        device: SimulatedDevice,
        fused: bool = False,
    ):
        self.model = model
        self.device = device
        self.fused = fused
        # --- cudaGraphInstantiate analog: done exactly once -------------
        if fused:
            self._comb_plan: List[Callable] = [model.fused_comb]
            self._seq_plans: Dict[Tuple[str, str], List[Callable]] = {
                dom: [fn] for dom, fn in model.fused_seq.items()
            }
        else:
            self._comb_plan = [model.task_fns[t] for t in model.comb_schedule()]
            self._seq_plans = {
                dom: [model.task_fns[t] for t in model.seq_schedule(*dom)]
                for dom in model.clock_domains()
            }

    def run_comb(self, arrays: DeviceArrays) -> None:
        if self._comb_plan:
            self.device.launch_graph(self._comb_plan, self._args(arrays))

    def run_seq(self, arrays: DeviceArrays, clock: str, edge: str) -> None:
        plan = self._seq_plans.get((clock, edge))
        if plan:
            self.device.launch_graph(plan, self._args(arrays))

    def _args(self, arrays: DeviceArrays) -> tuple:
        p = arrays.pools
        return (p[0], p[1], p[2], p[3], arrays.n, arrays.lane)
