"""CUDA-Graph-style execution (§3.2.2, Fig. 9b).

The task graph is *instantiated once* into an executable plan — a flat,
dependency-respecting kernel order (plus optional whole-graph fusion into
a single kernel, the strongest form of the "whole-graph optimizations the
CUDA runtime can perform").  Each evaluation then replays the plan with a
single launch call, eliminating the per-kernel stream/event bookkeeping
the stream executor re-pays every cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.gpu.device import SimulatedDevice
from repro.obs import get_metrics, get_tracer
from repro.utils.errors import SimulationError

if TYPE_CHECKING:  # type-only: avoids a core <-> gpu import cycle
    from repro.core.codegen import CompiledModel
    from repro.core.memory import DeviceArrays


class CudaGraphExecutor:
    """Define-once-run-repeatedly executor."""

    name = "graph"

    def __init__(
        self,
        model: CompiledModel,
        device: SimulatedDevice,
        fused: bool = False,
    ):
        self.model = model
        self.device = device
        self.fused = fused
        # --- cudaGraphInstantiate analog: done exactly once -------------
        if fused:
            self._comb_plan: List[Callable] = [model.fused_comb]
            self._seq_plans: Dict[Tuple[str, str], List[Callable]] = {
                dom: [fn] for dom, fn in model.fused_seq.items()
            }
        else:
            self._comb_plan = [model.task_fns[t] for t in model.comb_schedule()]
            self._seq_plans = {
                dom: [model.task_fns[t] for t in model.seq_schedule(*dom)]
                for dom in model.clock_domains()
            }

    def run_comb(self, arrays: DeviceArrays) -> None:
        if self._comb_plan:
            self.device.launch_graph(self._comb_plan, self._args(arrays))

    def run_seq(self, arrays: DeviceArrays, clock: str, edge: str) -> None:
        plan = self._seq_plans.get((clock, edge))
        if plan:
            self.device.launch_graph(plan, self._args(arrays))

    def _args(self, arrays: DeviceArrays) -> tuple:
        p = arrays.pools
        return (p[0], p[1], p[2], p[3], arrays.n, arrays.lane)


class FusedProgramExecutor:
    """Flat-program replay over the bit-packed layout (§3.2.2, strongest).

    Executes the :class:`~repro.core.codegen.FusedPrograms` lowering of
    the model: one straight-line compiled program for the whole comb
    phase and one per sequential clock domain — no per-task Python
    dispatch survives on the replay path, and 1-bit signals live
    lane-packed in the ``P1`` uint64 pool (64 lanes per machine op).

    The simulator reads three markers off this class: ``wants_packed``
    (build :class:`DeviceArrays` with the packed layout), ``layout``
    (the packed layout itself — offsets differ from the unpacked
    model's), and ``mem_writes`` (commit bindings for that layout).
    """

    name = "graph-fused"
    wants_packed = True

    def __init__(
        self,
        model: CompiledModel,
        device: SimulatedDevice,
        programs=None,
        backend: Optional[str] = None,
    ):
        self.model = model
        self.device = device
        if programs is None:
            if backend in (None, "numpy"):
                programs = model.fused()
            else:
                from repro.backends import get_backend

                programs = get_backend(backend).compile(model)
        self.backend = backend or getattr(programs, "backend", "numpy")
        self.programs = programs
        self.layout = programs.layout
        self.mem_writes = programs.mem_writes
        # cudaGraphInstantiate analog: plans are fixed at construction.
        self._comb_plan: List[Callable] = [programs.comb.fn]
        self._seq_plans: Dict[Tuple[str, str], List[Callable]] = {
            dom: [p.fn] for dom, p in programs.seq.items()
        }
        self._eval_plans: Dict[tuple, List[Callable]] = {}
        self._eval_commit: Optional[Callable] = None
        self._args_cache: Optional[Tuple[object, tuple]] = None

    def run_comb(self, arrays: DeviceArrays) -> None:
        self.device.launch_graph(self._comb_plan, self._args(arrays))

    def run_seq(self, arrays: DeviceArrays, clock: str, edge: str) -> None:
        plan = self._seq_plans.get((clock, edge))
        if plan:
            self.device.launch_graph(plan, self._args(arrays))

    def run_eval(
        self,
        arrays: DeviceArrays,
        triggered: List[Tuple[str, str]],
        commit: Callable[[Tuple[str, str]], None],
    ) -> None:
        """A whole evaluation as ONE graph launch.

        The plan is: sequential programs of every triggered domain (all
        reading pre-edge state through shadow slots), then the per-domain
        register/memory commits — modeled as the graph's device-side copy
        nodes — then the comb settle.  Identical ordering to the generic
        ``run_seq``/commit/``run_comb`` sequence in the simulator, minus
        two launch calls and the Python in between.  ``commit`` must be
        the owning simulator's domain-commit callable; the simulator only
        takes this path when no lane is quarantined (masked commits need
        the generic path).
        """
        if commit is not self._eval_commit:
            # A different simulator took over this executor: cached plans
            # hold the previous owner's commit nodes.
            self._eval_plans.clear()
            self._eval_commit = commit
        key = tuple(triggered)
        plan = self._eval_plans.get(key)
        if plan is None:
            plan = []
            for dom in triggered:
                plan.extend(self._seq_plans.get(dom, ()))
            for dom in triggered:
                def commit_node(*_a, _dom=dom):
                    commit(_dom)
                commit_node.__name__ = f"commit_{dom[0]}_{dom[1]}"
                plan.append(commit_node)
            plan.extend(self._comb_plan)
            self._eval_plans[key] = plan
        self.device.launch_graph(plan, self._args(arrays))

    def _args(self, arrays: DeviceArrays) -> tuple:
        # One simulator binds one DeviceArrays; restore() copies into the
        # pools in place, so the cached tuple stays valid across
        # checkpoint restores.
        cached = self._args_cache
        if cached is not None and cached[0] is arrays:
            return cached[1]
        p = arrays.pools
        args = (p[0], p[1], p[2], p[3], p[4], arrays.n, arrays.words,
                arrays.lane)
        self._args_cache = (arrays, args)
        return args


class ConditionalGraphExecutor:
    """Activity-aware variant of the CUDA-Graph executor (dirty-set replay).

    The unconditional executor replays every macro task each cycle — work
    proportional to design size regardless of stimulus activity (the §2.3
    trade-off the event-driven baseline exploits).  This executor keeps
    the define-once plan but, before each replay, intersects every task's
    read footprint (:meth:`CompiledModel.task_accesses`) with the per-
    offset write epochs maintained by :class:`DeviceArrays`:

    * a task is *dirty* when any offset it reads was written after the
      task's last execution (host input writes, register commits, memory
      commits, or an upstream task in this very replay);
    * dirtiness propagates through the task DAG in topological order —
      a dirty task marks its write offsets *before* downstream tasks are
      examined, so transitive wake-up costs one pass, no fixpoint;
    * clean tasks are skipped entirely: their outputs still hold exactly
      the value a re-execution would recompute (their inputs have not
      changed), which is what keeps conditional replay bit-identical to
      the unconditional executor.

    Requires a ``DeviceArrays`` built with ``track_epochs=True`` (the
    simulator arranges this via the ``wants_epochs`` marker).  Skip-rate
    telemetry: ``tasks_run``/``tasks_skipped`` attributes, the
    ``executor.tasks_run``/``executor.tasks_skipped`` counters in
    :mod:`repro.obs` metrics, and a ``dirty_check`` tracer span per
    replay.
    """

    name = "graph-conditional"
    wants_epochs = True

    def __init__(
        self,
        model: CompiledModel,
        device: SimulatedDevice,
        tracer=None,
        metrics=None,
    ):
        self.model = model
        self.device = device
        self.tracer = tracer if tracer is not None else get_tracer()
        self.metrics = metrics if metrics is not None else get_metrics()
        self._fns = model.task_fns
        self._access = model.task_accesses()
        # Hot-path representation of the footprints: scattered offset sets
        # are almost always tiny (a task reads a handful of signals), and
        # plain-Python scalar indexing beats a numpy fancy-index + .max()
        # by an order of magnitude at that size.  Large sets and memory
        # ranges stay vectorized.
        self._reads_small: Dict[int, List[Tuple[int, Tuple[int, ...]]]] = {}
        self._reads_big: Dict[int, List[Tuple[int, np.ndarray]]] = {}
        self._read_ranges: Dict[int, List[Tuple[int, int, int]]] = {}
        self._writes_small: Dict[int, List[Tuple[int, Tuple[int, ...]]]] = {}
        self._writes_big: Dict[int, List[Tuple[int, np.ndarray]]] = {}
        for tid, acc in self._access.items():
            self._reads_small[tid] = [
                (p, tuple(int(o) for o in offs))
                for p, offs in acc.read_offsets if offs.size <= 16
            ]
            self._reads_big[tid] = [
                (p, offs) for p, offs in acc.read_offsets if offs.size > 16
            ]
            self._read_ranges[tid] = [
                (p, lo, hi) for p, lo, hi in acc.read_ranges if hi > lo
            ]
            self._writes_small[tid] = [
                (p, tuple(int(o) for o in offs))
                for p, offs in acc.write_offsets if offs.size <= 16
            ]
            self._writes_big[tid] = [
                (p, offs) for p, offs in acc.write_offsets if offs.size > 16
            ]
        self._comb_order: List[int] = model.comb_schedule()
        self._comb_preds = model.taskgraph.preds
        self._seq_plans: Dict[Tuple[str, str], List[int]] = {
            dom: model.seq_schedule(*dom) for dom in model.clock_domains()
        }
        self.tasks_run = 0
        self.tasks_skipped = 0
        # Per-task epoch of last execution, valid for one DeviceArrays
        # instance at a time (a simulator binds 1:1; rebinding resets).
        self._last_run: Dict[int, int] = {}
        self._bound: Optional[DeviceArrays] = None

    # -- bookkeeping ----------------------------------------------------------

    def _bind(self, arrays: DeviceArrays) -> None:
        if arrays is self._bound:
            return
        if not arrays.track_epochs:
            raise SimulationError(
                "the graph-conditional executor needs DeviceArrays built "
                "with track_epochs=True (BatchSimulator does this when the "
                "executor advertises wants_epochs)"
            )
        self._bound = arrays
        self._last_run = {}

    def reset_activity(self) -> None:
        """Forget every task's last-run epoch (all tasks dirty once).

        Checkpoint restore rewinds the arrays' write epochs; stale
        last-run epochs from beyond the restore point would then make
        tasks look clean when their inputs are about to change.  The
        simulator calls this after every restore so the first replay
        re-executes everything against the restored state.
        """
        self._last_run = {}

    def _dirty(self, arrays: DeviceArrays, tid: int, last: int) -> bool:
        if last < 0:
            return True
        ep = arrays.write_epochs
        for pool, offs in self._reads_small[tid]:
            col = ep[pool]
            for o in offs:
                if col[o] > last:
                    return True
        for pool, offs in self._reads_big[tid]:
            if int(ep[pool][offs].max()) > last:
                return True
        for pool, lo, hi in self._read_ranges[tid]:
            if int(ep[pool][lo:hi].max()) > last:
                return True
        return False

    def _select(
        self,
        arrays: DeviceArrays,
        tids: List[int],
        preds: Optional[Dict[int, Set[int]]],
    ) -> List[Callable]:
        """One topo pass: pick dirty tasks, marking writes as we go."""
        plan: List[Callable] = []
        ran: Set[int] = set()
        epoch = 0
        last_run = self._last_run
        ep = arrays.write_epochs
        for tid in tids:
            last = last_run.get(tid, -1)
            woken = preds is not None and not ran.isdisjoint(
                preds.get(tid, ())
            )
            if not (woken or self._dirty(arrays, tid, last)):
                continue
            if not plan:
                epoch = arrays.bump_epoch()
            for pool, offs in self._writes_small[tid]:
                col = ep[pool]
                for o in offs:
                    col[o] = epoch
            for pool, offs in self._writes_big[tid]:
                ep[pool][offs] = epoch
            last_run[tid] = epoch
            ran.add(tid)
            plan.append(self._fns[tid])
        n_run, n_skip = len(plan), len(tids) - len(plan)
        self.tasks_run += n_run
        self.tasks_skipped += n_skip
        if self.metrics.enabled:
            if n_run:
                self.metrics.inc("executor.tasks_run", n_run)
            if n_skip:
                self.metrics.inc("executor.tasks_skipped", n_skip)
        return plan

    @property
    def skip_rate(self) -> float:
        total = self.tasks_run + self.tasks_skipped
        return self.tasks_skipped / total if total else 0.0

    # -- executor interface ----------------------------------------------------

    def run_comb(self, arrays: DeviceArrays) -> None:
        self._bind(arrays)
        if not self._comb_order:
            return
        if self.tracer.enabled:
            with self.tracer.span("dirty_check", resource="sim"):
                plan = self._select(arrays, self._comb_order, self._comb_preds)
        else:
            plan = self._select(arrays, self._comb_order, self._comb_preds)
        if plan:
            self.device.launch_graph(plan, self._args(arrays))

    def run_seq(self, arrays: DeviceArrays, clock: str, edge: str) -> None:
        self._bind(arrays)
        tids = self._seq_plans.get((clock, edge))
        if not tids:
            return
        # Sequential tasks are mutually independent (they all read
        # pre-edge state), so no wake-up propagation is needed.
        if self.tracer.enabled:
            with self.tracer.span("dirty_check", resource="sim"):
                plan = self._select(arrays, tids, None)
        else:
            plan = self._select(arrays, tids, None)
        if plan:
            self.device.launch_graph(plan, self._args(arrays))

    def _args(self, arrays: DeviceArrays) -> tuple:
        p = arrays.pools
        return (p[0], p[1], p[2], p[3], arrays.n, arrays.lane)
