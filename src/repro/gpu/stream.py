"""Stream/event-based task-graph execution (the Fig. 9a baseline).

Implements the state-of-the-art stream-capture transformation the paper
benchmarks against in Table 4 ([23, 24]: assign kernels of each level
round-robin to a fixed set of streams to maximize concurrency, insert
events for cross-stream dependencies) — and, crucially, *re-does this
scheduling every cycle*, which is exactly the repetitive CUDA-call
overhead CUDA Graph removes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.gpu.device import DeviceEvent, SimulatedDevice

if TYPE_CHECKING:  # type-only: avoids a core <-> gpu import cycle
    from repro.core.codegen import CompiledModel
    from repro.core.memory import DeviceArrays

DEFAULT_NUM_STREAMS = 4  # "four streams ... achieves the best performance"


class StreamExecutor:
    """Executes one evaluation by scheduling kernels onto streams."""

    name = "stream"

    def __init__(
        self,
        model: CompiledModel,
        device: SimulatedDevice,
        num_streams: int = DEFAULT_NUM_STREAMS,
    ):
        self.model = model
        self.device = device
        self.num_streams = max(1, num_streams)

    # NOTE: no state is cached between cycles on purpose — rebuilding the
    # stream/event schedule per evaluation is the baseline's defining cost.

    def run_comb(self, arrays: DeviceArrays) -> None:
        model = self.model
        device = self.device
        args = self._args(arrays)
        streams = [f"s{i}" for i in range(self.num_streams)]
        last_event: Dict[int, DeviceEvent] = {}
        stream_of: Dict[int, str] = {}
        rr = 0
        for level in model.taskgraph.comb_levels:
            for tid in level:
                stream = streams[rr % self.num_streams]
                rr += 1
                stream_of[tid] = stream
                # Wait on producer events that live on other streams.
                for pred in model.taskgraph.preds.get(tid, ()):
                    if stream_of.get(pred) != stream:
                        device.wait_event(last_event[pred])
                device.launch(model.task_fns[tid], args, stream=stream)
                ev = device.record_event()
                ev.complete()
                last_event[tid] = ev
        device.synchronize()

    def run_seq(self, arrays: DeviceArrays, clock: str, edge: str) -> None:
        args = self._args(arrays)
        streams = [f"s{i}" for i in range(self.num_streams)]
        for i, tid in enumerate(self.model.seq_schedule(clock, edge)):
            self.device.launch(
                self.model.task_fns[tid], args, stream=streams[i % self.num_streams]
            )
            self.device.record_event().complete()
        self.device.synchronize()

    def _args(self, arrays: DeviceArrays) -> tuple:
        p = arrays.pools
        return (p[0], p[1], p[2], p[3], arrays.n, arrays.lane)
