"""The simulated GPU device.

Stands in for the A6000 of the paper's experiments (see the substitution
table in DESIGN.md).  Kernels are vectorized numpy callables; the device

* executes them while accounting *busy time* (for the GPU-utilization
  figures 2 and 15),
* charges a modeled per-CUDA-call overhead in *virtual time* (the Fig. 9
  cost the stream-based executor accumulates and CUDA Graph removes), and
* counts launches, event operations and synchronizations so experiments
  can report exactly which overheads the execution strategy removed.

The per-launch Python dispatch cost is itself real, so wall-clock
comparisons between the stream and graph executors show the same *shape*
as the paper's Table 4 even before virtual-time accounting is added.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.obs import get_tracer
from repro.obs.trace import Tracer

# Defaults are in the ballpark of measured CUDA driver costs: a few
# microseconds per kernel launch / event op, slightly more for a whole
# cudaGraphLaunch.
DEFAULT_KERNEL_LAUNCH_US = 4.0
DEFAULT_EVENT_OP_US = 1.5
DEFAULT_GRAPH_LAUNCH_US = 6.0
DEFAULT_SYNC_US = 3.0


@dataclass
class DeviceStats:
    kernel_launches: int = 0
    graph_launches: int = 0
    event_ops: int = 0
    sync_calls: int = 0
    busy_seconds: float = 0.0  # time spent inside kernel bodies
    overhead_seconds: float = 0.0  # modeled CUDA-call overhead (virtual)

    def reset(self) -> None:
        self.kernel_launches = 0
        self.graph_launches = 0
        self.event_ops = 0
        self.sync_calls = 0
        self.busy_seconds = 0.0
        self.overhead_seconds = 0.0

    @property
    def total_device_seconds(self) -> float:
        """Busy plus modeled overhead: the simulated-device elapsed time."""
        return self.busy_seconds + self.overhead_seconds

    def clone(self) -> "DeviceStats":
        """An independent copy (for rollback of partial accounting)."""
        return DeviceStats(
            kernel_launches=self.kernel_launches,
            graph_launches=self.graph_launches,
            event_ops=self.event_ops,
            sync_calls=self.sync_calls,
            busy_seconds=self.busy_seconds,
            overhead_seconds=self.overhead_seconds,
        )

    def load(self, other: "DeviceStats") -> None:
        """Overwrite this instance's counters with ``other``'s, in place
        (callers hold references to ``device.stats``, so rollback must
        not swap the object)."""
        self.kernel_launches = other.kernel_launches
        self.graph_launches = other.graph_launches
        self.event_ops = other.event_ops
        self.sync_calls = other.sync_calls
        self.busy_seconds = other.busy_seconds
        self.overhead_seconds = other.overhead_seconds


class SimulatedDevice:
    """Executes kernels and accounts for launch overheads and busy time."""

    def __init__(
        self,
        kernel_launch_us: float = DEFAULT_KERNEL_LAUNCH_US,
        event_op_us: float = DEFAULT_EVENT_OP_US,
        graph_launch_us: float = DEFAULT_GRAPH_LAUNCH_US,
        sync_us: float = DEFAULT_SYNC_US,
        tracer: Optional[Tracer] = None,
    ):
        self.kernel_launch_s = kernel_launch_us * 1e-6
        self.event_op_s = event_op_us * 1e-6
        self.graph_launch_s = graph_launch_us * 1e-6
        self.sync_s = sync_us * 1e-6
        self.stats = DeviceStats()
        self.tracer = tracer if tracer is not None else get_tracer()
        self._lock = threading.RLock()

    # -- primitive operations ---------------------------------------------------

    def launch(self, kernel: Callable, args: tuple, stream: str = "s0") -> None:
        """Launch one kernel through a stream (one CUDA call).

        A kernel that raises rolls the stats back to their pre-launch
        values: a failed launch never happened as far as accounting is
        concerned, so a caller that retries (pipeline fallback, fault
        isolation) does not double-count launches or device seconds.
        """
        with self._lock:
            snap = self.stats.clone()
            try:
                self.stats.kernel_launches += 1
                self.stats.overhead_seconds += self.kernel_launch_s
                t0 = time.perf_counter()
                with self.tracer.span(getattr(kernel, "__name__", "k"),
                                      resource=f"GPU:{stream}"):
                    kernel(*args)
                self.stats.busy_seconds += time.perf_counter() - t0
            except BaseException:
                self.stats.load(snap)
                raise

    def launch_graph(self, kernels: Sequence[Callable], args: tuple) -> None:
        """Replay an instantiated graph: one CUDA call for all kernels.

        If any kernel in the sequence raises, the partial accounting
        (the launch count, the modeled overhead, and the busy time of
        the kernels that did run) is rolled back, mirroring ``launch``:
        metrics and utilization only ever see completed launches.
        """
        with self._lock:
            snap = self.stats.clone()
            try:
                self.stats.graph_launches += 1
                self.stats.overhead_seconds += self.graph_launch_s
                t0 = time.perf_counter()
                tracer = self.tracer
                if tracer.enabled:
                    # Per-task kernel spans nest under the graph-launch
                    # span, giving the per-kernel timing the MCMC
                    # estimator and the profile report read back from
                    # the aggregates.
                    with tracer.span("cudaGraphLaunch", resource="GPU"):
                        for k in kernels:
                            with tracer.span(getattr(k, "__name__", "k"),
                                             resource="GPU"):
                                k(*args)
                else:
                    for k in kernels:
                        k(*args)
                self.stats.busy_seconds += time.perf_counter() - t0
            except BaseException:
                self.stats.load(snap)
                raise

    def record_event(self) -> "DeviceEvent":
        with self._lock:
            self.stats.event_ops += 1
            self.stats.overhead_seconds += self.event_op_s
        return DeviceEvent()

    def wait_event(self, event: "DeviceEvent") -> None:
        with self._lock:
            self.stats.event_ops += 1
            self.stats.overhead_seconds += self.event_op_s
        event.synchronize()

    def synchronize(self) -> None:
        with self._lock:
            self.stats.sync_calls += 1
            self.stats.overhead_seconds += self.sync_s

    # -- reporting ---------------------------------------------------------------

    def utilization(self, wall_seconds: float) -> float:
        """Busy fraction of a wall-clock window (nvidia-smi style)."""
        if wall_seconds <= 0:
            return 0.0
        return min(1.0, self.stats.busy_seconds / wall_seconds)

    def publish_metrics(self, registry, prefix: str = "device.") -> None:
        """Publish launch/overhead/busy stats as gauges on ``registry``."""
        s = self.stats
        registry.set_gauge(prefix + "kernel_launches", s.kernel_launches)
        registry.set_gauge(prefix + "graph_launches", s.graph_launches)
        registry.set_gauge(prefix + "event_ops", s.event_ops)
        registry.set_gauge(prefix + "sync_calls", s.sync_calls)
        registry.set_gauge(prefix + "busy_seconds", s.busy_seconds)
        registry.set_gauge(prefix + "overhead_seconds", s.overhead_seconds)

    def reset(self) -> None:
        self.stats.reset()


# The paper's target device; the simulated device stands in for it
# everywhere, so the names alias (tests and docs use either).
GpuDevice = SimulatedDevice


class DeviceEvent:
    """A CUDA-event stand-in: pure bookkeeping (dependencies are enforced
    by the executor's serial schedule; the cost of creating/waiting on the
    event is what the stream executor pays repeatedly)."""

    __slots__ = ("completed",)

    def __init__(self) -> None:
        self.completed = False

    def complete(self) -> None:
        self.completed = True

    def synchronize(self) -> None:
        # The simulated device executes kernels synchronously, so by the
        # time anything waits the producer already ran.
        self.completed = True
