"""Simulated GPU execution model (§3.2.2).

No physical GPU exists in this environment, so this package provides the
substitute documented in DESIGN.md: a :class:`~repro.gpu.device.
SimulatedDevice` that executes kernels (vectorized numpy callables),
charges a modeled per-launch overhead, and accounts busy time for
utilization reporting; plus the two execution strategies the paper
compares:

* :class:`~repro.gpu.stream.StreamExecutor` — re-creates stream/event
  scheduling every cycle (the conventional approach of Fig. 9a),
* :class:`~repro.gpu.graphexec.CudaGraphExecutor` — instantiates the task
  graph once and replays it per cycle with a single launch (Fig. 9b),
  optionally with whole-graph kernel fusion.
"""

from repro.gpu.device import SimulatedDevice, DeviceStats
from repro.gpu.stream import StreamExecutor
from repro.gpu.graphexec import CudaGraphExecutor
from repro.gpu.timeline import Tracer, TimelineSpan, render_timeline

__all__ = [
    "SimulatedDevice",
    "DeviceStats",
    "StreamExecutor",
    "CudaGraphExecutor",
    "Tracer",
    "TimelineSpan",
    "render_timeline",
]
