"""Elaboration: hierarchy flattening, parameter resolution, width
inference and always-block lowering into a flat two-state design."""

from repro.elaborate.constfold import eval_const, fold_expr
from repro.elaborate.elaborator import FlatDesign, Signal, Memory, elaborate
from repro.elaborate.symexec import CombAssign, SeqUpdate, MemWrite, SeqBlock

__all__ = [
    "eval_const",
    "fold_expr",
    "FlatDesign",
    "Signal",
    "Memory",
    "elaborate",
    "CombAssign",
    "SeqUpdate",
    "MemWrite",
    "SeqBlock",
]
