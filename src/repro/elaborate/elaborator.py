"""Hierarchy flattening (the paper's "module inlining").

Elaboration turns a parsed :class:`~repro.verilog.ast_nodes.SourceUnit`
into a :class:`FlatDesign`: a single namespace of signals and memories
(cell-qualified names like ``c1.sum``, exactly as the paper's Fig. 4/7),
a list of continuous assignments, and a list of always blocks — with all
parameters substituted by constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.elaborate.constfold import eval_const, fold_expr
from repro.utils.errors import ElaborationError, UnsupportedFeatureError, WidthError
from repro.verilog import ast_nodes as A

MAX_SIGNAL_WIDTH = 512  # wide signals span var64 limbs
MAX_MEMORY_WIDTH = 64  # memory elements stay single-limb


@dataclass
class Signal:
    """A flat scalar/vector signal.

    ``line``/``col`` locate the source declaration (0 = synthesized
    signal, e.g. a concat temp or a split piece); diagnostics and lint
    records use them to point at the offending declaration.
    """

    name: str
    width: int
    kind: str  # 'input' | 'output' | 'wire' | 'reg'
    lsb: int = 0  # declared low bit index (e.g. [7:4] -> lsb 4)
    line: int = 0
    col: int = 0

    @property
    def is_state(self) -> bool:
        return self.kind == "reg"


@dataclass
class Memory:
    """A flat memory (``reg [w-1:0] name [0:d-1]``)."""

    name: str
    width: int
    depth: int
    line: int = 0
    col: int = 0


@dataclass
class RawAlways:
    """A flattened (renamed) always block, not yet lowered."""

    events: List[A.EdgeEvent]
    body: A.Stmt

    @property
    def is_sequential(self) -> bool:
        return bool(self.events)


@dataclass
class FlatFunc:
    """A flattened function, ready for call-site inlining.

    ``ret``/``formals``/``locals_`` are flat *signal names* (declared in
    the design so widths are known); ``body`` is fully renamed.
    """

    key: str
    ret: str
    ret_width: int
    formals: List[str]
    formal_widths: List[int]
    locals_: List[str]
    body: A.Stmt


@dataclass
class FlatDesign:
    """The flat, parameter-free design produced by elaboration."""

    top: str
    filename: str = "<input>"
    signals: Dict[str, Signal] = field(default_factory=dict)
    memories: Dict[str, Memory] = field(default_factory=dict)
    assigns: List[Tuple[A.Expr, A.Expr]] = field(default_factory=list)
    always: List[RawAlways] = field(default_factory=list)
    functions: Dict[str, FlatFunc] = field(default_factory=dict)
    n_cells: int = 0

    @property
    def inputs(self) -> List[Signal]:
        return [s for s in self.signals.values() if s.kind == "input"]

    @property
    def outputs(self) -> List[Signal]:
        return [s for s in self.signals.values() if s.kind == "output"]

    def add_signal(self, sig: Signal) -> None:
        if sig.name in self.signals or sig.name in self.memories:
            raise ElaborationError(
                f"duplicate signal {sig.name!r}",
                filename=self.filename, line=sig.line, col=sig.col,
            )
        if sig.width <= 0 or sig.width > MAX_SIGNAL_WIDTH:
            raise WidthError(
                f"signal {sig.name!r} has width {sig.width}; supported range is "
                f"1..{MAX_SIGNAL_WIDTH}",
                filename=self.filename, line=sig.line, col=sig.col,
            )
        self.signals[sig.name] = sig

    def width_of(self, name: str) -> int:
        if name in self.signals:
            return self.signals[name].width
        if name in self.memories:
            return self.memories[name].width
        raise ElaborationError(f"unknown signal {name!r}")


# ---------------------------------------------------------------------------
# Expression / statement renaming
# ---------------------------------------------------------------------------


def _rename_expr(e: A.Expr, prefix: str, params: Dict[str, int], portmap: Dict[str, str]) -> A.Expr:
    """Rewrite ``e`` into the flat namespace.

    Identifiers that are parameters become Numbers; others get the cell
    prefix (or a port mapping when inlining connection expressions).
    """

    def name_of(n: str) -> str:
        if n in portmap:
            return portmap[n]
        return prefix + n

    if isinstance(e, A.Number):
        return A.Number(e.value, e.size, e.xz_mask)
    if isinstance(e, A.Ident):
        if e.name in params:
            return A.Number(params[e.name], None)
        return A.Ident(name_of(e.name))
    if isinstance(e, A.Unary):
        return A.Unary(e.op, _rename_expr(e.operand, prefix, params, portmap))
    if isinstance(e, A.Binary):
        return A.Binary(
            e.op,
            _rename_expr(e.left, prefix, params, portmap),
            _rename_expr(e.right, prefix, params, portmap),
        )
    if isinstance(e, A.Ternary):
        return A.Ternary(
            _rename_expr(e.cond, prefix, params, portmap),
            _rename_expr(e.then, prefix, params, portmap),
            _rename_expr(e.other, prefix, params, portmap),
        )
    if isinstance(e, A.Concat):
        return A.Concat([_rename_expr(p, prefix, params, portmap) for p in e.parts])
    if isinstance(e, A.Repeat):
        return A.Repeat(
            _rename_expr(e.count, prefix, params, portmap),
            _rename_expr(e.value, prefix, params, portmap),
        )
    if isinstance(e, A.Index):
        if e.base in params:
            raise ElaborationError(f"cannot index parameter {e.base!r}")
        return A.Index(name_of(e.base), _rename_expr(e.index, prefix, params, portmap))
    if isinstance(e, A.PartSelect):
        return A.PartSelect(
            name_of(e.base),
            _rename_expr(e.msb, prefix, params, portmap),
            _rename_expr(e.lsb, prefix, params, portmap),
        )
    if isinstance(e, A.IndexedPartSelect):
        return A.IndexedPartSelect(
            name_of(e.base),
            _rename_expr(e.start, prefix, params, portmap),
            _rename_expr(e.part_width, prefix, params, portmap),
            e.descending,
        )
    if isinstance(e, A.FuncCall):
        return A.FuncCall(
            e.name,
            [_rename_expr(a, prefix, params, portmap) for a in e.args],
            resolved=prefix + e.name,
        )
    raise ElaborationError(f"cannot rename expression {type(e).__name__}")


def _rename_stmt(s: A.Stmt, prefix: str, params: Dict[str, int], portmap: Dict[str, str]) -> A.Stmt:
    if isinstance(s, A.Block):
        return A.Block([_rename_stmt(x, prefix, params, portmap) for x in s.stmts])
    if isinstance(s, A.BlockingAssign):
        return A.BlockingAssign(
            _rename_expr(s.lhs, prefix, params, portmap),
            _rename_expr(s.rhs, prefix, params, portmap),
        )
    if isinstance(s, A.NonBlockingAssign):
        return A.NonBlockingAssign(
            _rename_expr(s.lhs, prefix, params, portmap),
            _rename_expr(s.rhs, prefix, params, portmap),
        )
    if isinstance(s, A.If):
        return A.If(
            _rename_expr(s.cond, prefix, params, portmap),
            _rename_stmt(s.then, prefix, params, portmap),
            _rename_stmt(s.other, prefix, params, portmap) if s.other else None,
        )
    if isinstance(s, A.Case):
        return A.Case(
            _rename_expr(s.subject, prefix, params, portmap),
            [
                A.CaseItem(
                    [_rename_expr(l, prefix, params, portmap) for l in it.labels],
                    _rename_stmt(it.body, prefix, params, portmap),
                )
                for it in s.items
            ],
            s.casez,
        )
    if isinstance(s, A.For):
        if s.var in params:
            raise ElaborationError(
                f"for-loop variable {s.var!r} collides with a parameter"
            )
        return A.For(
            portmap.get(s.var, prefix + s.var),
            _rename_expr(s.init, prefix, params, portmap),
            _rename_expr(s.cond, prefix, params, portmap),
            _rename_expr(s.step, prefix, params, portmap),
            _rename_stmt(s.body, prefix, params, portmap),
        )
    raise ElaborationError(f"cannot rename statement {type(s).__name__}")


def _rewrite_split_reads(
    e: A.Expr,
    splits: Dict[str, List[Tuple[int, int, str]]],
    design: "FlatDesign",
) -> A.Expr:
    """Redirect constant selects of split signals to their piece wires."""
    from repro.elaborate.constfold import try_const

    def piece_for(name: str, lo: int, hi: int):
        for plsb, pwidth, pname in splits.get(name, ()):
            if plsb <= lo and hi < plsb + pwidth:
                return plsb, pwidth, pname
        return None

    if isinstance(e, A.Index) and e.base in splits:
        idx = try_const(e.index)
        if idx is not None:
            rel = idx - design.signals[e.base].lsb
            hit = piece_for(e.base, rel, rel)
            if hit is not None:
                plsb, pwidth, pname = hit
                if pwidth == 1 and rel == plsb:
                    return A.Ident(pname)
                return A.Index(pname, A.Number(rel - plsb, None))
    if isinstance(e, A.PartSelect) and e.base in splits:
        msb = try_const(e.msb)
        lsb = try_const(e.lsb)
        if msb is not None and lsb is not None:
            off = design.signals[e.base].lsb
            hit = piece_for(e.base, lsb - off, msb - off)
            if hit is not None:
                plsb, pwidth, pname = hit
                lo = lsb - off - plsb
                hi = msb - off - plsb
                if lo == 0 and hi == pwidth - 1:
                    return A.Ident(pname)
                return A.PartSelect(pname, A.Number(hi, None), A.Number(lo, None))

    # Recurse structurally.
    if isinstance(e, A.Unary):
        return A.Unary(e.op, _rewrite_split_reads(e.operand, splits, design))
    if isinstance(e, A.Binary):
        return A.Binary(
            e.op,
            _rewrite_split_reads(e.left, splits, design),
            _rewrite_split_reads(e.right, splits, design),
        )
    if isinstance(e, A.Ternary):
        return A.Ternary(
            _rewrite_split_reads(e.cond, splits, design),
            _rewrite_split_reads(e.then, splits, design),
            _rewrite_split_reads(e.other, splits, design),
        )
    if isinstance(e, A.Concat):
        return A.Concat([_rewrite_split_reads(p, splits, design) for p in e.parts])
    if isinstance(e, A.Repeat):
        return A.Repeat(e.count, _rewrite_split_reads(e.value, splits, design))
    if isinstance(e, A.Index):
        return A.Index(e.base, _rewrite_split_reads(e.index, splits, design),
                       e.is_memory)
    if isinstance(e, A.IndexedPartSelect):
        return A.IndexedPartSelect(
            e.base, _rewrite_split_reads(e.start, splits, design),
            e.part_width, e.descending,
        )
    if isinstance(e, A.FuncCall):
        return A.FuncCall(
            e.name,
            [_rewrite_split_reads(a, splits, design) for a in e.args],
            e.resolved,
        )
    return e


def _rewrite_split_stmt(s: A.Stmt, splits, design) -> A.Stmt:
    """Statement-level companion of :func:`_rewrite_split_reads`.

    Only *reads* are rewritten; assignment targets keep the full signal
    (pieces are continuous-assign-driven, so procedural writes to a split
    signal would be a multi-driver error anyway).
    """
    if isinstance(s, A.Block):
        return A.Block([_rewrite_split_stmt(x, splits, design) for x in s.stmts])
    if isinstance(s, A.BlockingAssign):
        return A.BlockingAssign(s.lhs, _rewrite_split_reads(s.rhs, splits, design))
    if isinstance(s, A.NonBlockingAssign):
        return A.NonBlockingAssign(s.lhs, _rewrite_split_reads(s.rhs, splits, design))
    if isinstance(s, A.If):
        return A.If(
            _rewrite_split_reads(s.cond, splits, design),
            _rewrite_split_stmt(s.then, splits, design),
            _rewrite_split_stmt(s.other, splits, design) if s.other else None,
        )
    if isinstance(s, A.Case):
        return A.Case(
            _rewrite_split_reads(s.subject, splits, design),
            [
                A.CaseItem(
                    [_rewrite_split_reads(l, splits, design) for l in it.labels],
                    _rewrite_split_stmt(it.body, splits, design),
                )
                for it in s.items
            ],
            s.casez,
        )
    if isinstance(s, A.For):
        return A.For(
            s.var,
            _rewrite_split_reads(s.init, splits, design),
            _rewrite_split_reads(s.cond, splits, design),
            _rewrite_split_reads(s.step, splits, design),
            _rewrite_split_stmt(s.body, splits, design),
        )
    return s


# ---------------------------------------------------------------------------
# Elaborator
# ---------------------------------------------------------------------------


class Elaborator:
    def __init__(self, unit: A.SourceUnit):
        self.unit = unit
        self._tempno = 0

    def elaborate(self, top: str) -> FlatDesign:
        try:
            module = self.unit.module(top)
        except KeyError as exc:
            raise ElaborationError(str(exc)) from exc
        design = FlatDesign(top=top, filename=self.unit.filename)
        self._partials: List[Tuple[str, int, int, A.Expr]] = []
        self._instantiate(design, module, prefix="", overrides={}, is_top=True, depth=0)
        self._merge_partials(design)
        design.assigns = [(lhs, fold_expr(rhs)) for lhs, rhs in design.assigns]
        return design

    def _merge_partials(self, design: FlatDesign) -> None:
        """Resolve partial continuous drivers of a signal.

        Bit/part-select targets with constant positions (common when an
        instance output binds to ``s[0]``) are handled Verilator-style:

        1. each driven range becomes its own *piece* wire,
        2. the full signal is reassembled from the pieces (undriven bits
           read zero), and
        3. constant-position reads that fall inside one piece are rewired
           to the piece directly (see ``_rewrite_split_reads``).

        Step 3 is what breaks the classic false combinational loop of a
        bit-sliced vector (a ripple-carry chain through one ``carry``
        vector is acyclic bit by bit, but cyclic at whole-signal
        granularity).
        """
        by_name: Dict[str, List[Tuple[int, int, A.Expr]]] = {}
        for name, lsb, width, expr in self._partials:
            by_name.setdefault(name, []).append((lsb, width, expr))
        self._splits: Dict[str, List[Tuple[int, int, str]]] = {}
        for name, pieces in by_name.items():
            sig = design.signals[name]
            covered = 0
            for lsb, width, _ in pieces:
                m = ((1 << width) - 1) << lsb
                if lsb + width > sig.width:
                    raise ElaborationError(
                        f"partial driver of {name!r} exceeds its width"
                    )
                if covered & m:
                    raise ElaborationError(
                        f"overlapping partial drivers for {name!r}"
                    )
                covered |= m
            split: List[Tuple[int, int, str]] = []
            expr: Optional[A.Expr] = None
            for lsb, width, piece in sorted(pieces, key=lambda p: p[0]):
                pname = f"{name}${lsb}+{width}"
                design.add_signal(Signal(pname, width, "wire"))
                design.assigns.append((A.Ident(pname), piece))
                split.append((lsb, width, pname))
                masked = A.Binary(
                    "&", A.Ident(pname), A.Number((1 << width) - 1, None)
                )
                shifted = (
                    masked
                    if lsb == 0
                    else A.Binary("<<", masked, A.Number(lsb, None))
                )
                expr = shifted if expr is None else A.Binary("|", expr, shifted)
            assert expr is not None
            design.assigns.append((A.Ident(name), expr))
            self._splits[name] = split
        if self._splits:
            self._apply_split_reads(design)

    def _apply_split_reads(self, design: FlatDesign) -> None:
        """Rewire constant-position reads of split signals to their pieces."""
        splits = self._splits
        design.assigns = [
            (lhs, _rewrite_split_reads(rhs, splits, design))
            for lhs, rhs in design.assigns
        ]
        for raw in design.always:
            raw.body = _rewrite_split_stmt(raw.body, splits, design)
        for fn in design.functions.values():
            fn.body = _rewrite_split_stmt(fn.body, splits, design)

    # -- helpers ------------------------------------------------------------

    def _fresh(self, base: str) -> str:
        self._tempno += 1
        return f"__t{self._tempno}_{base}"

    def _resolve_params(self, module: A.Module, overrides: Dict[str, int]) -> Dict[str, int]:
        env: Dict[str, int] = {}
        for p in module.params():
            if not p.local and p.name in overrides:
                env[p.name] = overrides[p.name]
            else:
                env[p.name] = eval_const(p.value, env)
        return env

    def _range_width(self, rng: Optional[A.Range], params: Dict[str, int]) -> Tuple[int, int]:
        """Return (width, lsb) for a declaration range."""
        if rng is None:
            return 1, 0
        msb = eval_const(rng.msb, params)
        lsb = eval_const(rng.lsb, params)
        if lsb > msb:
            raise UnsupportedFeatureError(
                f"ascending ranges [{lsb}:{msb}] are not supported"
            )
        return msb - lsb + 1, lsb

    # -- recursive instantiation ---------------------------------------------

    def _instantiate(
        self,
        design: FlatDesign,
        module: A.Module,
        prefix: str,
        overrides: Dict[str, int],
        is_top: bool,
        depth: int,
        portmap: Optional[Dict[str, str]] = None,
    ) -> None:
        """Flatten one module instance into ``design``.

        ``portmap`` maps child port names to already-declared flat parent
        signals (Verilator-style port collapsing): aliased ports are not
        declared and every reference is renamed to the parent signal.
        This matters for correctness, not just speed — a child clock port
        must *be* the parent clock signal, or its edges would be invisible
        to the clock-domain edge detector.
        """
        portmap = portmap or {}
        if depth > 64:
            raise ElaborationError("instantiation too deep (recursive modules?)")
        params = self._resolve_params(module, overrides)

        # Expand generate regions first: each surviving item carries the
        # parameter environment (with genvars bound) and the hierarchical
        # scope ("blk[3].") its declarations live under.
        expanded = self._expand_generates(module.items, params, "")

        # Collect declarations first: ports may be declared before nets that
        # share the name (non-ANSI style port + reg decl).
        port_dirs: Dict[str, str] = {}
        port_kinds: Dict[str, str] = {}
        widths: Dict[str, Tuple[int, int]] = {}
        memories: Dict[str, Tuple[int, int]] = {}
        locs: Dict[str, Tuple[int, int]] = {}  # name -> declaration (line, col)
        decls_by_scope: Dict[str, set] = {}

        for env, scope, item in expanded:
            if isinstance(item, A.PortDecl):
                if scope:
                    raise ElaborationError(
                        f"port {item.name!r} declared inside a generate block",
                        filename=self.unit.filename, line=item.line, col=item.col,
                    )
                port_dirs[item.name] = item.direction
                if item.kind == "reg":
                    port_kinds[item.name] = "reg"
                widths[item.name] = self._range_width(item.rng, env)
                locs[item.name] = (item.line, item.col)
            elif isinstance(item, A.NetDecl):
                if not scope and item.name in port_dirs:
                    # Non-ANSI style: `output q; reg q;` refines the kind.
                    if item.kind == "reg":
                        port_kinds[item.name] = "reg"
                    continue
                sname = scope + item.name
                if sname in widths or sname in memories:
                    raise ElaborationError(
                        f"duplicate declaration of {prefix + sname!r}",
                        filename=self.unit.filename, line=item.line, col=item.col,
                    )
                decls_by_scope.setdefault(scope, set()).add(item.name)
                locs[sname] = (item.line, item.col)
                if item.array is not None:
                    w, _ = self._range_width(item.rng, env)
                    amsb = eval_const(item.array.msb, env)
                    alsb = eval_const(item.array.lsb, env)
                    lo, hi = min(amsb, alsb), max(amsb, alsb)
                    if lo != 0:
                        raise UnsupportedFeatureError(
                            f"memory {item.name!r} must be indexed from 0",
                            filename=self.unit.filename,
                            line=item.line, col=item.col,
                        )
                    memories[sname] = (w, hi + 1)
                else:
                    widths[sname] = self._range_width(item.rng, env)
                    if item.kind == "reg":
                        port_kinds[sname] = "reg"

        def scope_chain(scope: str) -> List[str]:
            """Enclosing scopes, outermost first ("" -> "a[0]." -> ...)."""
            chain = [""]
            pos = 0
            while True:
                dot = scope.find(".", pos)
                if dot < 0:
                    break
                chain.append(scope[: dot + 1])
                pos = dot + 1
            return chain

        portmap_cache: Dict[str, Dict[str, str]] = {}

        def portmap_for(scope: str) -> Dict[str, str]:
            """Name resolution map for items in ``scope``: module portmap
            overlaid by scoped declarations, inner scopes shadowing."""
            if scope not in portmap_cache:
                pm = dict(portmap)
                for s in scope_chain(scope):
                    for n in decls_by_scope.get(s, ()):
                        if s:  # scope "" uses plain prefix+name (no entry)
                            pm[n] = prefix + s + n
                portmap_cache[scope] = pm
            return portmap_cache[scope]

        for name, (w, lsb) in widths.items():
            if name in memories:
                raise ElaborationError(f"{name!r} declared both as signal and memory")
            if name in portmap:
                # Collapsed port: the parent signal IS this port.
                parent = design.signals[portmap[name]]
                if parent.width != w:
                    raise ElaborationError(
                        f"internal: alias width mismatch on {prefix + name!r}"
                    )
                continue
            if name in port_dirs:
                kind = port_dirs[name] if is_top else port_kinds.get(name, "wire")
            else:
                kind = port_kinds.get(name, "wire")
            dline, dcol = locs.get(name, (0, 0))
            design.add_signal(Signal(prefix + name, w, kind, lsb, dline, dcol))
        for name, (w, d) in memories.items():
            dline, dcol = locs.get(name, (0, 0))
            if w > MAX_MEMORY_WIDTH:
                raise WidthError(
                    f"memory {name!r} element width {w} exceeds "
                    f"{MAX_MEMORY_WIDTH}; split into parallel memories",
                    filename=self.unit.filename, line=dline, col=dcol,
                )
            design.memories[prefix + name] = Memory(prefix + name, w, d, dline, dcol)

        # Functions: declare their formal/local/return signals (so widths
        # are known at inlining time) and register the renamed bodies.
        for env, scope, item in expanded:
            if not isinstance(item, A.FuncDecl):
                continue
            if scope:
                raise UnsupportedFeatureError(
                    f"function {item.name!r} declared inside a generate "
                    "block is not supported; declare it at module level"
                )
            key = prefix + item.name
            if key in design.functions:
                raise ElaborationError(f"duplicate function {key!r}")
            ret = f"{key}.__ret"
            rw, _ = self._range_width(item.rng, params)
            design.add_signal(Signal(ret, rw, "wire"))
            fmap: Dict[str, str] = {item.name: ret}
            formals: List[str] = []
            fwidths: List[int] = []
            for aname, arng in item.inputs:
                w, _ = self._range_width(arng, params)
                flat = f"{key}.{aname}"
                design.add_signal(Signal(flat, w, "wire"))
                fmap[aname] = flat
                formals.append(flat)
                fwidths.append(w)
            locals_: List[str] = []
            for lname, lrng in item.locals_:
                w, _ = self._range_width(lrng, params)
                flat = f"{key}.{lname}"
                design.add_signal(Signal(flat, w, "wire"))
                fmap[lname] = flat
                locals_.append(flat)
            body = _rename_stmt(item.body, prefix, params, {**portmap, **fmap})
            design.functions[key] = FlatFunc(
                key, ret, rw, formals, fwidths, locals_, body
            )

        for env, scope, item in expanded:
            if isinstance(item, (A.PortDecl, A.NetDecl, A.ParamDecl, A.FuncDecl)):
                continue
            pm = portmap_for(scope)
            if isinstance(item, A.ContinuousAssign):
                lhs = _rename_expr(item.lhs, prefix, env, pm)
                rhs = _rename_expr(item.rhs, prefix, env, pm)
                self._add_assign(design, lhs, rhs)
            elif isinstance(item, A.Always):
                events = [
                    A.EdgeEvent(ev.edge, pm.get(ev.signal, prefix + ev.signal))
                    for ev in item.events
                ]
                body = _rename_stmt(item.body, prefix, env, pm)
                design.always.append(RawAlways(events, body))
            elif isinstance(item, A.Instance):
                scoped = item
                if scope:
                    scoped = A.Instance(
                        item.module, scope + item.name, item.connections,
                        item.param_overrides, item.by_order,
                    )
                self._instantiate_cell(
                    design, module, scoped, prefix, env, depth, pm
                )
            else:  # pragma: no cover - parser prevents this
                raise ElaborationError(f"unknown module item {type(item).__name__}")

    _MAX_GENERATE = 4096

    def _expand_generates(
        self,
        items: List[A.ModuleItem],
        env: Dict[str, int],
        scope: str,
    ) -> List[Tuple[Dict[str, int], str, A.ModuleItem]]:
        """Flatten generate regions into (env, scope, item) triples."""
        out: List[Tuple[Dict[str, int], str, A.ModuleItem]] = []
        for item in items:
            if isinstance(item, A.GenvarDecl):
                continue
            if isinstance(item, A.GenerateFor):
                value = eval_const(item.init, env)
                iters = 0
                while True:
                    it_env = dict(env)
                    it_env[item.var] = value
                    if not eval_const(item.cond, it_env):
                        break
                    inner = f"{scope}{item.label}[{value}]."
                    out.extend(
                        self._expand_generates(item.items, it_env, inner)
                    )
                    value = eval_const(item.step, it_env)
                    iters += 1
                    if iters > self._MAX_GENERATE:
                        raise ElaborationError(
                            f"generate-for over {item.var!r} exceeds "
                            f"{self._MAX_GENERATE} iterations"
                        )
                continue
            if isinstance(item, A.GenerateIf):
                chosen = (
                    item.then_items
                    if eval_const(item.cond, env)
                    else item.else_items
                )
                inner = f"{scope}{item.label}." if item.label else scope
                out.extend(self._expand_generates(chosen, dict(env), inner))
                continue
            out.append((env, scope, item))
        return out

    def _instantiate_cell(
        self,
        design: FlatDesign,
        parent: A.Module,
        inst: A.Instance,
        prefix: str,
        params: Dict[str, int],
        depth: int,
        parent_portmap: Dict[str, str],
    ) -> None:
        try:
            child = self.unit.module(inst.module)
        except KeyError:
            raise ElaborationError(
                f"instance {prefix + inst.name!r} references unknown module "
                f"{inst.module!r}",
                filename=self.unit.filename, line=inst.line, col=inst.col,
            )
        design.n_cells += 1
        child_prefix = prefix + inst.name + "."
        overrides = {
            k: eval_const(_rename_expr(v, prefix, params, parent_portmap), {})
            for k, v in inst.param_overrides.items()
        }

        # Build the connection map port -> parent-namespace expression.
        conns: Dict[str, Optional[A.Expr]] = {}
        if inst.by_order is not None:
            if len(inst.by_order) > len(child.port_order):
                raise ElaborationError(
                    f"instance {inst.name!r}: too many positional connections",
                    filename=self.unit.filename, line=inst.line, col=inst.col,
                )
            for pname, expr in zip(child.port_order, inst.by_order):
                conns[pname] = expr
        else:
            conns = dict(inst.connections)

        child_ports = {p.name: p for p in child.ports()}
        for pname in conns:
            if pname not in child_ports:
                raise ElaborationError(
                    f"instance {inst.name!r}: module {child.name!r} has no port "
                    f"{pname!r}",
                    filename=self.unit.filename, line=inst.line, col=inst.col,
                )

        # Decide which ports collapse into the parent signal (connection is
        # a plain identifier of equal width) versus which keep a binding
        # assign.  Collapsing is required for clocks and reduces the flat
        # graph for everything else.
        child_params = self._resolve_params(child, overrides)
        alias: Dict[str, str] = {}
        assigns: List[Tuple[A.PortDecl, A.Expr]] = []
        for pname, port in child_ports.items():
            expr = conns.get(pname)
            if expr is None:
                if port.direction == "input":
                    # Unconnected input: tie to zero.
                    assigns.append((port, A.Number(0, None)))
                continue
            bound = _rename_expr(expr, prefix, params, parent_portmap)
            pwidth, _ = self._range_width(port.rng, child_params)
            if (
                isinstance(bound, A.Ident)
                and bound.name in design.signals
                and design.signals[bound.name].width == pwidth
            ):
                alias[pname] = bound.name
            else:
                assigns.append((port, bound))

        # Recurse so child signals exist before we bind the leftovers.
        self._instantiate(
            design, child, child_prefix, overrides, is_top=False,
            depth=depth + 1, portmap=alias,
        )

        for port, bound in assigns:
            flat_port = child_prefix + port.name
            if port.direction == "input":
                self._add_assign(design, A.Ident(flat_port), bound)
            else:  # output
                self._add_assign(design, bound, A.Ident(flat_port))

    # -- assign splitting -----------------------------------------------------

    def _add_assign(self, design: FlatDesign, lhs: A.Expr, rhs: A.Expr) -> None:
        """Record a continuous assignment, splitting concat l-values.

        ``assign {co, s} = a + b;`` becomes a fresh wire for the RHS plus a
        part-select assignment per concat element.
        """
        if isinstance(lhs, A.Concat):
            widths = [self._lvalue_width(design, p) for p in lhs.parts]
            total = sum(widths)
            tmp = self._fresh("cat")
            design.add_signal(Signal(tmp, total, "wire"))
            design.assigns.append((A.Ident(tmp), rhs))
            # MSB-first: the first concat part takes the top bits.
            pos = total
            for part, w in zip(lhs.parts, widths):
                pos -= w
                sel = A.PartSelect(tmp, A.Number(pos + w - 1), A.Number(pos))
                self._add_assign(design, part, sel)
            return
        if isinstance(lhs, A.Index) and lhs.base in design.memories:
            raise UnsupportedFeatureError(
                "memories cannot be driven by continuous assigns"
            )
        if isinstance(lhs, A.PartSelect):
            sig = design.signals[lhs.base]
            msb = eval_const(lhs.msb) - sig.lsb
            lsb = eval_const(lhs.lsb) - sig.lsb
            self._partials.append((lhs.base, lsb, msb - lsb + 1, rhs))
            return
        if isinstance(lhs, A.IndexedPartSelect):
            sig = design.signals[lhs.base]
            w = eval_const(lhs.part_width)
            start = eval_const(lhs.start)
            lsb = (start - w + 1 if lhs.descending else start) - sig.lsb
            self._partials.append((lhs.base, lsb, w, rhs))
            return
        if isinstance(lhs, A.Index):
            sig = design.signals[lhs.base]
            idx = eval_const(lhs.index) - sig.lsb
            self._partials.append((lhs.base, idx, 1, rhs))
            return
        if not isinstance(lhs, A.Ident):
            raise ElaborationError(f"invalid assign target {type(lhs).__name__}")
        design.assigns.append((lhs, rhs))

    def _lvalue_width(self, design: FlatDesign, lv: A.Expr) -> int:
        if isinstance(lv, A.Ident):
            return design.width_of(lv.name)
        if isinstance(lv, A.Index):
            return 1
        if isinstance(lv, A.PartSelect):
            return eval_const(lv.msb) - eval_const(lv.lsb) + 1
        if isinstance(lv, A.IndexedPartSelect):
            return eval_const(lv.part_width)
        if isinstance(lv, A.Concat):
            return sum(self._lvalue_width(design, p) for p in lv.parts)
        raise ElaborationError(f"invalid l-value {type(lv).__name__}")


def elaborate(unit: A.SourceUnit, top: str) -> FlatDesign:
    """Flatten ``unit`` under top module ``top``."""
    return Elaborator(unit).elaborate(top)
