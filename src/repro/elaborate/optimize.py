"""Design-level optimizations inherited from the Verilator lineage.

The paper builds on Verilator's front end precisely to reuse its
"RTL-level optimization facilities, such as inverter pushing, module
inlining, and constant propagation".  Module inlining happens in the
elaborator and constant folding in :mod:`repro.elaborate.constfold`; this
module adds the remaining two classic passes over the lowered design:

* **copy propagation** — a combinational alias ``t = y`` (same width) is
  substituted into every reader and its node dropped (the flattener's
  port-binding assigns mostly disappear here);
* **dead-code elimination** — combinational nodes whose targets can never
  reach an output, register, memory write or clock are removed, and their
  signals deallocated (smaller pools, fewer kernels);
* **inverter pushing** — ``~~x``, ``!(a == b)`` and friends are rewritten
  into their positive forms during folding (see ``push_inverters``).

All passes preserve simulation semantics for every surviving signal; the
differential suite runs both optimized and unoptimized pipelines.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.elaborate.symexec import CombAssign, LoweredDesign, MemWrite, SeqBlock
from repro.verilog import ast_nodes as A


# ---------------------------------------------------------------------------
# Inverter pushing
# ---------------------------------------------------------------------------

_CMP_NEGATION = {
    "==": "!=", "!=": "==", "===": "!==", "!==": "===",
    "<": ">=", ">=": "<", ">": "<=", "<=": ">",
}


def push_inverters(e: A.Expr) -> A.Expr:
    """Rewrite negations into positive forms where semantics allow.

    Handled patterns (all 1-bit-safe):

    * ``!!x``            -> ``x != 0`` is preserved via ``|x`` reduction? No:
      ``!!x`` simply becomes the reduction-or of x when x is 1 bit wide is
      not knowable here, so only ``!(!x)`` with boolean-valued operand
      classes is folded;
    * ``!(a CMP b)``     -> ``a CMP' b`` (negated comparison);
    * ``~(~x)``          -> ``x`` (widths of ~ operands equal, so safe);
    * ``!(a && b)``      -> ``!a || !b`` and ``!(a || b)`` -> ``!a && !b``.
    """
    if isinstance(e, A.Unary):
        operand = push_inverters(e.operand)
        if e.op == "~" and isinstance(operand, A.Unary) and operand.op == "~":
            return operand.operand
        if e.op == "!":
            if isinstance(operand, A.Binary) and operand.op in _CMP_NEGATION:
                return A.Binary(_CMP_NEGATION[operand.op], operand.left,
                                operand.right)
            if isinstance(operand, A.Binary) and operand.op == "&&":
                return A.Binary(
                    "||",
                    push_inverters(A.Unary("!", operand.left)),
                    push_inverters(A.Unary("!", operand.right)),
                )
            if isinstance(operand, A.Binary) and operand.op == "||":
                return A.Binary(
                    "&&",
                    push_inverters(A.Unary("!", operand.left)),
                    push_inverters(A.Unary("!", operand.right)),
                )
            if isinstance(operand, A.Unary) and operand.op == "!":
                # !!x == (x != 0): keep as a comparison against zero.
                return A.Binary("!=", operand.operand, A.Number(0, None))
        return A.Unary(e.op, operand)
    if isinstance(e, A.Binary):
        return A.Binary(e.op, push_inverters(e.left), push_inverters(e.right))
    if isinstance(e, A.Ternary):
        cond = push_inverters(e.cond)
        then = push_inverters(e.then)
        other = push_inverters(e.other)
        # (!c) ? a : b  ->  c ? b : a
        if isinstance(cond, A.Unary) and cond.op == "!":
            return A.Ternary(cond.operand, other, then)
        return A.Ternary(cond, then, other)
    if isinstance(e, A.Concat):
        return A.Concat([push_inverters(p) for p in e.parts])
    if isinstance(e, A.Repeat):
        return A.Repeat(e.count, push_inverters(e.value))
    if isinstance(e, A.Index):
        return A.Index(e.base, push_inverters(e.index), e.is_memory)
    return e


# ---------------------------------------------------------------------------
# Copy propagation + dead-code elimination
# ---------------------------------------------------------------------------


def _subst_reads(e: A.Expr, aliases: Dict[str, str]) -> A.Expr:
    if isinstance(e, A.Ident):
        return A.Ident(aliases.get(e.name, e.name))
    if isinstance(e, A.Unary):
        return A.Unary(e.op, _subst_reads(e.operand, aliases))
    if isinstance(e, A.Binary):
        return A.Binary(e.op, _subst_reads(e.left, aliases),
                        _subst_reads(e.right, aliases))
    if isinstance(e, A.Ternary):
        return A.Ternary(
            _subst_reads(e.cond, aliases),
            _subst_reads(e.then, aliases),
            _subst_reads(e.other, aliases),
        )
    if isinstance(e, A.Concat):
        return A.Concat([_subst_reads(p, aliases) for p in e.parts])
    if isinstance(e, A.Repeat):
        return A.Repeat(e.count, _subst_reads(e.value, aliases))
    if isinstance(e, A.Index):
        base = aliases.get(e.base, e.base)
        return A.Index(base, _subst_reads(e.index, aliases), e.is_memory)
    if isinstance(e, A.PartSelect):
        base = aliases.get(e.base, e.base)
        return A.PartSelect(base, e.msb, e.lsb)
    if isinstance(e, A.IndexedPartSelect):
        base = aliases.get(e.base, e.base)
        return A.IndexedPartSelect(base, _subst_reads(e.start, aliases),
                                   e.part_width, e.descending)
    return e


def _resolve(aliases: Dict[str, str], name: str) -> str:
    seen = set()
    while name in aliases and name not in seen:
        seen.add(name)
        name = aliases[name]
    return name


def optimize_design(design: LoweredDesign, inverters: bool = True) -> LoweredDesign:
    """Run copy propagation + DCE (+ inverter pushing) in place-ish.

    Returns a new LoweredDesign sharing the signal objects of the input.
    """
    keep: Set[str] = {s.name for s in design.outputs}
    keep |= {s.name for s in design.inputs}
    for blk in design.seq:
        keep.add(blk.clock)
        keep |= set(blk.pseudo_async)
        for upd in blk.updates:
            keep.add(upd.target)  # registers are architectural state

    # Pass 1: collect aliases t = y with equal widths, t not kept.
    aliases: Dict[str, str] = {}
    for ca in design.comb:
        if (
            isinstance(ca.expr, A.Ident)
            and ca.target not in keep
            and ca.expr.name not in design.memories
            and ca.expr.name in design.signals
            and design.signals[ca.target].width
            == design.signals[ca.expr.name].width
        ):
            aliases[ca.target] = ca.expr.name
    # Flatten alias chains (a -> b -> c becomes a -> c).
    aliases = {t: _resolve(aliases, t) for t in aliases}

    def rewrite(e: A.Expr) -> A.Expr:
        e = _subst_reads(e, aliases)
        return push_inverters(e) if inverters else e

    comb = [
        CombAssign(ca.target, rewrite(ca.expr))
        for ca in design.comb
        if ca.target not in aliases
    ]
    seq: List[SeqBlock] = []
    for blk in design.seq:
        nb = SeqBlock(blk.clock, blk.edge, pseudo_async=list(blk.pseudo_async))
        for upd in blk.updates:
            nb.updates.append(type(upd)(upd.target, rewrite(upd.expr)))
        for mw in blk.mem_writes:
            nb.mem_writes.append(
                MemWrite(mw.mem, rewrite(mw.cond), rewrite(mw.addr),
                         rewrite(mw.data))
            )
        seq.append(nb)

    # Pass 2: liveness from outputs / seq / memw reads, backwards fixpoint.
    producers = {ca.target: ca for ca in comb}
    live: Set[str] = set(keep)
    for blk in seq:
        for upd in blk.updates:
            live |= set(A.expr_reads(upd.expr))
        for mw in blk.mem_writes:
            live |= set(A.expr_reads(mw.cond))
            live |= set(A.expr_reads(mw.addr))
            live |= set(A.expr_reads(mw.data))
    worklist = [s for s in live if s in producers]
    seen = set(worklist)
    while worklist:
        name = worklist.pop()
        for read in A.expr_reads(producers[name].expr):
            if read not in live:
                live.add(read)
            if read in producers and read not in seen:
                seen.add(read)
                worklist.append(read)

    comb = [ca for ca in comb if ca.target in live]
    used: Set[str] = set(live)
    for ca in comb:
        used |= set(A.expr_reads(ca.expr))
    signals = {
        name: sig
        for name, sig in design.signals.items()
        if name in used or name in keep
    }

    return LoweredDesign(
        top=design.top,
        signals=signals,
        memories=design.memories,
        comb=comb,
        seq=seq,
        n_cells=design.n_cells,
        filename=design.filename,
    )
