"""Constant evaluation and folding for elaboration-time expressions.

Parameters, range bounds, replication counts and case labels must all
elaborate to constants; this module evaluates them with the same two-state
semantics as the runtime engines (``repro.utils.bitvec``).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.utils import bitvec as bv
from repro.utils.errors import ElaborationError
from repro.verilog import ast_nodes as A

_MOD64 = 1 << 64


def eval_const(e: A.Expr, env: Optional[Dict[str, int]] = None) -> int:
    """Evaluate ``e`` to a non-negative integer, or raise ElaborationError.

    ``env`` maps parameter names to already-resolved values.
    """
    env = env or {}
    if isinstance(e, A.Number):
        return e.value
    if isinstance(e, A.Ident):
        if e.name in env:
            return env[e.name]
        raise ElaborationError(f"{e.name!r} is not a constant")
    if isinstance(e, A.Unary):
        v = eval_const(e.operand, env)
        if e.op == "-":
            return (-v) % _MOD64
        if e.op == "+":
            return v
        if e.op == "~":
            return (~v) % _MOD64
        if e.op == "!":
            return 0 if v else 1
        raise ElaborationError(f"unary {e.op!r} is not a constant operator")
    if isinstance(e, A.Binary):
        l = eval_const(e.left, env)
        r = eval_const(e.right, env)
        op = e.op
        if op == "+":
            return bv.s_add(l, r)
        if op == "-":
            return bv.s_sub(l, r)
        if op == "*":
            return bv.s_mul(l, r)
        if op == "/":
            if r == 0:
                raise ElaborationError("constant division by zero")
            return l // r
        if op == "%":
            if r == 0:
                raise ElaborationError("constant modulo by zero")
            return l % r
        if op == "**":
            return bv.s_pow(l, r)
        if op in ("<<", "<<<"):
            return bv.s_shl(l, r)
        if op in (">>", ">>>"):
            return bv.s_shr(l, r)
        if op == "&":
            return l & r
        if op == "|":
            return l | r
        if op == "^":
            return l ^ r
        if op in ("==", "==="):
            return 1 if l == r else 0
        if op in ("!=", "!=="):
            return 1 if l != r else 0
        if op == "<":
            return 1 if l < r else 0
        if op == "<=":
            return 1 if l <= r else 0
        if op == ">":
            return 1 if l > r else 0
        if op == ">=":
            return 1 if l >= r else 0
        if op == "&&":
            return 1 if (l and r) else 0
        if op == "||":
            return 1 if (l or r) else 0
        raise ElaborationError(f"binary {op!r} is not a constant operator")
    if isinstance(e, A.Ternary):
        return eval_const(e.then if eval_const(e.cond, env) else e.other, env)
    raise ElaborationError(f"expression {type(e).__name__} is not constant")


def try_const(e: A.Expr, env: Optional[Dict[str, int]] = None) -> Optional[int]:
    """Evaluate if constant, else None."""
    try:
        return eval_const(e, env)
    except ElaborationError:
        return None


def _lit_width(n: A.Number) -> int:
    """Self-determined width of a literal (unsized literals are 32-bit)."""
    return n.size if n.size is not None else max(32, n.value.bit_length() or 1)


def fold_expr(e: A.Expr) -> A.Expr:
    """Bottom-up constant folding over an expression tree.

    Performs the paper's inherited Verilator-style "constant propagation"
    optimizations at the expression level: fully-constant subtrees are
    replaced by Number nodes — *width-preserving*, so e.g. ``~1'd0`` folds
    to ``1'd1``, not to a 64-bit all-ones constant (the self-determined
    width of a folded literal must match the unfolded expression's, or
    concat widths change) — and identity operations (``x | 0``-style
    neutral operands) are simplified where safe without width information.
    """
    if isinstance(e, A.Unary):
        operand = fold_expr(e.operand)
        e = A.Unary(e.op, operand)
        if isinstance(operand, A.Number):
            if e.op == "!":
                return A.Number(0 if operand.value else 1, 1)
            if e.op in ("-", "+", "~"):
                w = _lit_width(operand)
                value = eval_const(e) & ((1 << w) - 1)
                return A.Number(value, operand.size)
        return e
    if isinstance(e, A.Binary):
        left = fold_expr(e.left)
        right = fold_expr(e.right)
        e = A.Binary(e.op, left, right)
        if isinstance(left, A.Number) and isinstance(right, A.Number):
            try:
                value = eval_const(e)
            except ElaborationError:
                return e
            op = e.op
            if op in ("==", "!=", "===", "!==", "<", "<=", ">", ">=",
                      "&&", "||"):
                return A.Number(value, 1)
            if op in ("<<", "<<<", ">>", ">>>", "**"):
                w = _lit_width(left)
                return A.Number(value & ((1 << w) - 1), left.size)
            # Arithmetic/bitwise: self width is max of the operand widths;
            # the result stays sized only if both operands were.
            w = max(_lit_width(left), _lit_width(right))
            size = w if (left.size is not None and right.size is not None) else None
            return A.Number(value & ((1 << w) - 1), size)
        # Safe identities (result widths follow from the surviving operand).
        if isinstance(right, A.Number) and right.value == 0:
            if e.op in ("+", "-", "|", "^", "<<", ">>", "<<<", ">>>"):
                return left
            if e.op in ("*", "&"):
                return A.Number(0, right.size)
        if isinstance(left, A.Number) and left.value == 0:
            if e.op in ("+", "|", "^"):
                return right
            if e.op in ("*", "&", "<<", ">>", "<<<", ">>>", "/", "%"):
                return A.Number(0, left.size)
        if isinstance(right, A.Number) and right.value == 1 and e.op in ("*", "/"):
            return left
        return e
    if isinstance(e, A.Ternary):
        cond = fold_expr(e.cond)
        then = fold_expr(e.then)
        other = fold_expr(e.other)
        if isinstance(cond, A.Number):
            return then if cond.value else other
        return A.Ternary(cond, then, other)
    if isinstance(e, A.Concat):
        return A.Concat([fold_expr(p) for p in e.parts])
    if isinstance(e, A.Repeat):
        return A.Repeat(fold_expr(e.count), fold_expr(e.value))
    if isinstance(e, A.Index):
        return A.Index(e.base, fold_expr(e.index), e.is_memory)
    if isinstance(e, A.PartSelect):
        return A.PartSelect(e.base, fold_expr(e.msb), fold_expr(e.lsb))
    if isinstance(e, A.IndexedPartSelect):
        return A.IndexedPartSelect(
            e.base, fold_expr(e.start), fold_expr(e.part_width), e.descending
        )
    if isinstance(e, A.FuncCall):
        return A.FuncCall(e.name, [fold_expr(a) for a in e.args], e.resolved)
    return e
