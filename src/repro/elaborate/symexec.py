"""Always-block lowering via symbolic execution.

Full-cycle simulators (Verilator, and the paper's RTLflow) turn procedural
code into straight-line assignments.  This module performs that lowering:

* combinational ``always @*`` blocks and continuous assigns become one
  mux-tree expression per driven signal (:class:`CombAssign`);
* sequential ``always @(posedge clk)`` blocks become per-register
  next-state expressions (:class:`SeqUpdate`) plus an ordered list of
  guarded memory writes (:class:`MemWrite`), all with correct
  blocking/non-blocking semantics.

The result, :class:`LoweredDesign`, is the input to width annotation,
RTL-graph construction and every code generator in the package.
"""

from __future__ import annotations

import copy
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.elaborate.constfold import eval_const, fold_expr, try_const
from repro.elaborate.elaborator import FlatDesign, Memory, Signal
from repro.utils.errors import ElaborationError, UnsupportedFeatureError
from repro.verilog import ast_nodes as A

_CLOCK_NAME_RE = re.compile(r"(^|[._])(clk|clock|ck)\w*$", re.IGNORECASE)


@dataclass
class CombAssign:
    """``target = expr`` — one combinational driver for a full signal."""

    target: str
    expr: A.Expr


@dataclass
class SeqUpdate:
    """``target <= expr`` at a clock edge (expr reads pre-edge state)."""

    target: str
    expr: A.Expr


@dataclass
class MemWrite:
    """A guarded memory write ``if (cond) mem[addr] <= data`` at an edge.

    Writes are applied in program order, so a later write to the same
    address in the same block wins — matching non-blocking semantics.
    """

    mem: str
    cond: A.Expr
    addr: A.Expr
    data: A.Expr


@dataclass
class SeqBlock:
    """One lowered sequential always block."""

    clock: str
    edge: str  # 'posedge' | 'negedge'
    updates: List[SeqUpdate] = field(default_factory=list)
    mem_writes: List[MemWrite] = field(default_factory=list)
    # Additional edge events in the sensitivity list (async resets).  We
    # simulate them synchronously; see DESIGN.md §5.
    pseudo_async: List[str] = field(default_factory=list)


@dataclass
class LoweredDesign:
    """Flat design with all procedural code lowered to assignments."""

    top: str
    signals: Dict[str, Signal]
    memories: Dict[str, Memory]
    comb: List[CombAssign]
    seq: List[SeqBlock]
    n_cells: int = 0
    filename: str = "<input>"

    @property
    def inputs(self) -> List[Signal]:
        return [s for s in self.signals.values() if s.kind == "input"]

    @property
    def outputs(self) -> List[Signal]:
        return [s for s in self.signals.values() if s.kind == "output"]

    @property
    def state_signals(self) -> List[str]:
        """Names of registers (targets of sequential updates)."""
        seen = []
        found = set()
        for blk in self.seq:
            for upd in blk.updates:
                if upd.target not in found:
                    found.add(upd.target)
                    seen.append(upd.target)
        return seen

    def clocks(self) -> List[str]:
        out = []
        for blk in self.seq:
            if blk.clock not in out:
                out.append(blk.clock)
        return out


# ---------------------------------------------------------------------------
# Expression utilities
# ---------------------------------------------------------------------------


def copy_expr(e: A.Expr) -> A.Expr:
    """Deep copy an expression tree (annotation fields are per-node)."""
    return copy.deepcopy(e)


def _mask_const(width: int) -> A.Number:
    return A.Number((1 << width) - 1, None)


class _Lowerer:
    def __init__(self, design: FlatDesign):
        self.design = design
        self._call_depth = 0

    # -- function inlining -----------------------------------------------------

    _MAX_CALL_DEPTH = 32

    def _inline_call(self, e: A.FuncCall, env: Dict[str, A.Expr]) -> A.Expr:
        """Inline a function call: symbolically execute the body with the
        actuals (evaluated in the caller's blocking environment) bound to
        the formals, and return the accumulated return-value expression."""
        fdef = self.design.functions.get(e.resolved)
        if fdef is None:
            raise ElaborationError(f"call to unknown function {e.name!r}")
        if len(e.args) != len(fdef.formals):
            raise ElaborationError(
                f"function {e.name!r} takes {len(fdef.formals)} arguments, "
                f"got {len(e.args)}"
            )
        if self._call_depth >= self._MAX_CALL_DEPTH:
            raise ElaborationError(
                f"function call depth exceeds {self._MAX_CALL_DEPTH} "
                f"(recursive function {e.name!r}?)"
            )
        env_f: Dict[str, A.Expr] = dict(env)
        for formal, width, arg in zip(fdef.formals, fdef.formal_widths, e.args):
            actual = self.subst(arg, env)
            # Verilog truncates the actual at the formal's width.
            env_f[formal] = A.Binary(
                "&", actual, A.Number((1 << width) - 1, None)
            )
        for lname in fdef.locals_:
            env_f[lname] = A.Number(0, None)
        env_f[fdef.ret] = A.Number(0, None)
        self._call_depth += 1
        try:
            # Functions are purely combinational: no NBA, no memory writes.
            self.exec_stmt(fdef.body, env_f, {}, [], [], sequential=False)
        finally:
            self._call_depth -= 1
        result = env_f[fdef.ret]
        return A.Binary(
            "&", copy_expr(result), A.Number((1 << fdef.ret_width) - 1, None)
        )

    # -- reads ---------------------------------------------------------------

    def subst(self, e: A.Expr, env: Dict[str, A.Expr]) -> A.Expr:
        """Substitute blocking-assignment values into a read expression.

        Always returns a freshly-built tree (no sharing with ``env``).
        """
        if isinstance(e, A.Number):
            return A.Number(e.value, e.size, e.xz_mask)
        if isinstance(e, A.Ident):
            if e.name in env:
                return copy_expr(env[e.name])
            return A.Ident(e.name)
        if isinstance(e, A.FuncCall):
            return self._inline_call(e, env)
        if isinstance(e, A.Unary):
            return A.Unary(e.op, self.subst(e.operand, env))
        if isinstance(e, A.Binary):
            return A.Binary(e.op, self.subst(e.left, env), self.subst(e.right, env))
        if isinstance(e, A.Ternary):
            return A.Ternary(
                self.subst(e.cond, env),
                self.subst(e.then, env),
                self.subst(e.other, env),
            )
        if isinstance(e, A.Concat):
            return A.Concat([self.subst(p, env) for p in e.parts])
        if isinstance(e, A.Repeat):
            return A.Repeat(self.subst(e.count, env), self.subst(e.value, env))
        if isinstance(e, A.Index):
            idx = self.subst(e.index, env)
            if e.base in self.design.memories:
                return A.Index(e.base, idx, is_memory=True)
            if e.base in env:
                # Bit select of a blocking-assigned value: (val >> i) & 1.
                return A.Binary(
                    "&", A.Binary(">>", copy_expr(env[e.base]), idx), A.Number(1, None)
                )
            return A.Index(e.base, idx)
        if isinstance(e, A.PartSelect):
            if e.base in env:
                lsb = eval_const(e.lsb)
                msb = eval_const(e.msb)
                return A.Binary(
                    "&",
                    A.Binary(">>", copy_expr(env[e.base]), A.Number(lsb, None)),
                    _mask_const(msb - lsb + 1),
                )
            return A.PartSelect(e.base, self.subst(e.msb, env), self.subst(e.lsb, env))
        if isinstance(e, A.IndexedPartSelect):
            if e.base in env:
                w = eval_const(e.part_width)
                start = self.subst(e.start, env)
                if e.descending:
                    start = A.Binary("-", start, A.Number(w - 1, None))
                return A.Binary(
                    "&",
                    A.Binary(">>", copy_expr(env[e.base]), start),
                    _mask_const(w),
                )
            return A.IndexedPartSelect(
                e.base, self.subst(e.start, env), self.subst(e.part_width, env), e.descending
            )
        raise ElaborationError(f"cannot substitute {type(e).__name__}")

    # -- writes ----------------------------------------------------------------

    def _sig(self, name: str) -> Signal:
        try:
            return self.design.signals[name]
        except KeyError:
            raise ElaborationError(f"assignment to undeclared signal {name!r}")

    def _current(self, view: Dict[str, A.Expr], name: str) -> A.Expr:
        if name in view:
            return copy_expr(view[name])
        return A.Ident(name)

    def store(self, lhs: A.Expr, val: A.Expr, view: Dict[str, A.Expr]) -> None:
        """Apply an assignment to ``view`` (read-modify-write for selects)."""
        if isinstance(lhs, A.Ident):
            view[lhs.name] = val
            return
        if isinstance(lhs, A.Index):
            if lhs.base in self.design.memories:
                raise ElaborationError(
                    "internal: memory writes must be routed through store_mem"
                )
            sig = self._sig(lhs.base)
            pos = A.Binary("-", copy_expr(lhs.index), A.Number(sig.lsb, None)) \
                if sig.lsb else copy_expr(lhs.index)
            old = self._current(view, lhs.base)
            bitmask = A.Binary("<<", A.Number(1, None), pos)
            cleared = A.Binary("&", old, A.Unary("~", bitmask))
            setbit = A.Binary(
                "<<", A.Binary("&", val, A.Number(1, None)), copy_expr(pos)
            )
            view[lhs.base] = A.Binary("|", cleared, setbit)
            return
        if isinstance(lhs, A.PartSelect):
            sig = self._sig(lhs.base)
            msb = eval_const(lhs.msb) - sig.lsb
            lsb = eval_const(lhs.lsb) - sig.lsb
            w = msb - lsb + 1
            old = self._current(view, lhs.base)
            clear = A.Number(
                (((1 << sig.width) - 1) ^ (((1 << w) - 1) << lsb)), None
            )
            cleared = A.Binary("&", old, clear)
            part = A.Binary(
                "<<", A.Binary("&", val, _mask_const(w)), A.Number(lsb, None)
            )
            view[lhs.base] = A.Binary("|", cleared, part)
            return
        if isinstance(lhs, A.IndexedPartSelect):
            sig = self._sig(lhs.base)
            w = eval_const(lhs.part_width)
            start = copy_expr(lhs.start)
            if lhs.descending:
                start = A.Binary("-", start, A.Number(w - 1, None))
            if sig.lsb:
                start = A.Binary("-", start, A.Number(sig.lsb, None))
            old = self._current(view, lhs.base)
            maskshift = A.Binary("<<", _mask_const(w), start)
            cleared = A.Binary("&", old, A.Unary("~", maskshift))
            part = A.Binary(
                "<<", A.Binary("&", val, _mask_const(w)), copy_expr(start)
            )
            view[lhs.base] = A.Binary("|", cleared, part)
            return
        if isinstance(lhs, A.Concat):
            widths = []
            for p in lhs.parts:
                widths.append(self._lvalue_width(p))
            total = sum(widths)
            pos = total
            for p, w in zip(lhs.parts, widths):
                pos -= w
                piece = A.Binary(
                    "&", A.Binary(">>", copy_expr(val), A.Number(pos, None)), _mask_const(w)
                )
                self.store(p, piece, view)
            return
        raise ElaborationError(f"invalid l-value {type(lhs).__name__}")

    def _lvalue_width(self, lv: A.Expr) -> int:
        if isinstance(lv, A.Ident):
            return self._sig(lv.name).width
        if isinstance(lv, A.Index):
            return 1
        if isinstance(lv, A.PartSelect):
            return eval_const(lv.msb) - eval_const(lv.lsb) + 1
        if isinstance(lv, A.IndexedPartSelect):
            return eval_const(lv.part_width)
        if isinstance(lv, A.Concat):
            return sum(self._lvalue_width(p) for p in lv.parts)
        raise ElaborationError(f"invalid l-value {type(lv).__name__}")

    # -- statements ---------------------------------------------------------

    def exec_stmt(
        self,
        stmt: A.Stmt,
        env: Dict[str, A.Expr],
        nba: Dict[str, A.Expr],
        memw: List[MemWrite],
        path: List[A.Expr],
        sequential: bool,
    ) -> None:
        if isinstance(stmt, A.Block):
            for s in stmt.stmts:
                self.exec_stmt(s, env, nba, memw, path, sequential)
            return
        if isinstance(stmt, A.BlockingAssign):
            if isinstance(stmt.lhs, A.Index) and stmt.lhs.base in self.design.memories:
                raise UnsupportedFeatureError(
                    f"blocking writes to memory {stmt.lhs.base!r} are not supported; "
                    "use '<=' in a clocked block"
                )
            val = self.subst(stmt.rhs, env)
            self.store(stmt.lhs, val, env)
            return
        if isinstance(stmt, A.NonBlockingAssign):
            if not sequential:
                raise UnsupportedFeatureError(
                    "non-blocking assignment in a combinational block"
                )
            val = self.subst(stmt.rhs, env)
            if isinstance(stmt.lhs, A.Index) and stmt.lhs.base in self.design.memories:
                cond = self._conj(path)
                addr = self.subst(stmt.lhs.index, env)
                memw.append(MemWrite(stmt.lhs.base, cond, addr, val))
                return
            self.store(stmt.lhs, val, nba)
            return
        if isinstance(stmt, A.If):
            cond = self.subst(stmt.cond, env)
            self._branch(
                cond,
                stmt.then,
                stmt.other,
                env,
                nba,
                memw,
                path,
                sequential,
            )
            return
        if isinstance(stmt, A.Case):
            self._exec_case(stmt, env, nba, memw, path, sequential)
            return
        if isinstance(stmt, A.For):
            self._exec_for(stmt, env, nba, memw, path, sequential)
            return
        raise ElaborationError(f"cannot lower statement {type(stmt).__name__}")

    _MAX_UNROLL = 4096

    def _exec_for(
        self,
        stmt: A.For,
        env: Dict[str, A.Expr],
        nba: Dict[str, A.Expr],
        memw: List[MemWrite],
        path: List[A.Expr],
        sequential: bool,
    ) -> None:
        """Fully unroll a constant-bounded for loop.

        The loop variable is driven through the blocking environment as a
        constant per iteration, so body statements that index with it fold
        to static selects (note: comparisons are unsigned two-state —
        count upward with ``<`` bounds).
        """
        sig = self.design.signals.get(stmt.var)
        if sig is None:
            raise ElaborationError(
                f"for-loop variable {stmt.var!r} is not declared "
                "(declare it as `integer` or a reg)"
            )
        from repro.utils import bitvec as _bv

        m = _bv.mask(sig.width)
        value = try_const(self.subst(stmt.init, env))
        if value is None:
            raise UnsupportedFeatureError(
                "for-loop initial value must be elaboration-time constant"
            )
        env[stmt.var] = A.Number(value & m, None)
        iters = 0
        while True:
            cond = try_const(self.subst(stmt.cond, env))
            if cond is None:
                raise UnsupportedFeatureError(
                    "for-loop condition must fold to a constant each "
                    "iteration (did the body assign the loop variable?)"
                )
            if not cond:
                break
            try:
                self.exec_stmt(stmt.body, env, nba, memw, path, sequential)
            except RecursionError:
                raise ElaborationError(
                    f"unrolling the for loop over {stmt.var!r} produced "
                    "expressions too deep to lower (unsigned-wrapping "
                    "condition, or an accumulation that never terminates?)"
                )
            nxt = try_const(self.subst(stmt.step, env))
            if nxt is None:
                raise UnsupportedFeatureError(
                    "for-loop step must fold to a constant each iteration"
                )
            env[stmt.var] = A.Number(nxt & m, None)
            iters += 1
            if iters > self._MAX_UNROLL:
                raise ElaborationError(
                    f"for-loop exceeds {self._MAX_UNROLL} iterations; "
                    "is the condition unsigned-wrapping?"
                )

    def _branch(
        self,
        cond: A.Expr,
        then_stmt: Optional[A.Stmt],
        else_stmt: Optional[A.Stmt],
        env: Dict[str, A.Expr],
        nba: Dict[str, A.Expr],
        memw: List[MemWrite],
        path: List[A.Expr],
        sequential: bool,
    ) -> None:
        # Constant conditions collapse to one branch (common after
        # parameter substitution).
        cval = try_const(cond)
        if cval is not None:
            taken = then_stmt if cval else else_stmt
            if taken is not None:
                self.exec_stmt(taken, env, nba, memw, path, sequential)
            return

        t_env, t_nba = dict(env), dict(nba)
        e_env, e_nba = dict(env), dict(nba)
        if then_stmt is not None:
            self.exec_stmt(
                then_stmt, t_env, t_nba, memw, path + [cond], sequential
            )
        if else_stmt is not None:
            self.exec_stmt(
                else_stmt, e_env, e_nba, memw, path + [A.Unary("!", copy_expr(cond))],
                sequential,
            )
        self._merge(cond, env, t_env, e_env)
        self._merge(cond, nba, t_nba, e_nba)

    def _merge(
        self,
        cond: A.Expr,
        base: Dict[str, A.Expr],
        t: Dict[str, A.Expr],
        e: Dict[str, A.Expr],
    ) -> None:
        keys = set(t) | set(e)
        for k in keys:
            tv = t.get(k)
            ev = e.get(k)
            old = base.get(k)
            if tv is ev is None:
                continue
            default = old if old is not None else A.Ident(k)
            tval = tv if tv is not None else default
            eval_ = ev if ev is not None else default
            if tval is eval_:
                base[k] = copy_expr(tval)
            else:
                base[k] = A.Ternary(copy_expr(cond), copy_expr(tval), copy_expr(eval_))

    def _exec_case(
        self,
        stmt: A.Case,
        env: Dict[str, A.Expr],
        nba: Dict[str, A.Expr],
        memw: List[MemWrite],
        path: List[A.Expr],
        sequential: bool,
    ) -> None:
        subject = self.subst(stmt.subject, env)
        default_body: Optional[A.Stmt] = None
        chain: List[Tuple[A.Expr, A.Stmt]] = []
        for item in stmt.items:
            if not item.labels:
                if default_body is not None:
                    raise ElaborationError("multiple default labels in case")
                default_body = item.body
                continue
            conds: List[A.Expr] = []
            for label in item.labels:
                lab = self.subst(label, env)
                if stmt.casez and isinstance(lab, A.Number) and lab.xz_mask:
                    care = ~lab.xz_mask
                    conds.append(
                        A.Binary(
                            "==",
                            A.Binary("&", copy_expr(subject), A.Number(care & _care_mask(lab), None)),
                            A.Number(lab.value & care, None),
                        )
                    )
                else:
                    conds.append(A.Binary("==", copy_expr(subject), lab))
            cond = conds[0]
            for extra in conds[1:]:
                cond = A.Binary("||", cond, extra)
            chain.append((cond, item.body))

        def build(i: int, env_, nba_, path_):
            if i >= len(chain):
                if default_body is not None:
                    self.exec_stmt(default_body, env_, nba_, memw, path_, sequential)
                return
            cond, body = chain[i]
            cval = try_const(cond)
            if cval is not None:
                if cval:
                    self.exec_stmt(body, env_, nba_, memw, path_, sequential)
                else:
                    build(i + 1, env_, nba_, path_)
                return
            t_env, t_nba = dict(env_), dict(nba_)
            e_env, e_nba = dict(env_), dict(nba_)
            self.exec_stmt(body, t_env, t_nba, memw, path_ + [cond], sequential)
            build(i + 1, e_env, e_nba, path_ + [A.Unary("!", copy_expr(cond))])
            self._merge(cond, env_, t_env, e_env)
            self._merge(cond, nba_, t_nba, e_nba)
            for k in t_env:
                if k not in env_:
                    env_[k] = t_env[k]
            for k in t_nba:
                if k not in nba_:
                    nba_[k] = t_nba[k]

        build(0, env, nba, path)

    def _conj(self, path: List[A.Expr]) -> A.Expr:
        if not path:
            return A.Number(1, 1)
        cond = copy_expr(path[0])
        for p in path[1:]:
            cond = A.Binary("&&", cond, copy_expr(p))
        return cond


def _care_mask(lab: A.Number) -> int:
    width = lab.size if lab.size else max(32, lab.value.bit_length() or 1)
    return (1 << width) - 1


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def _pick_clock(events: List[A.EdgeEvent]) -> Tuple[A.EdgeEvent, List[str]]:
    """Choose the clock among sensitivity events; others become pseudo-async."""
    for ev in events:
        if _CLOCK_NAME_RE.search(ev.signal):
            rest = [e.signal for e in events if e is not ev]
            return ev, rest
    return events[0], [e.signal for e in events[1:]]


def lower(flat: FlatDesign) -> LoweredDesign:
    """Lower a flat design's procedural code to assignments."""
    lw = _Lowerer(flat)
    comb: List[CombAssign] = []
    seq: List[SeqBlock] = []

    for lhs, rhs in flat.assigns:
        if not isinstance(lhs, A.Ident):  # elaborator guarantees this
            raise ElaborationError("continuous assign target must be a signal")
        # subst with an empty environment inlines any function calls.
        comb.append(CombAssign(lhs.name, fold_expr(lw.subst(rhs, {}))))

    for raw in flat.always:
        env: Dict[str, A.Expr] = {}
        nba: Dict[str, A.Expr] = {}
        memw: List[MemWrite] = []
        lw.exec_stmt(raw.body, env, nba, memw, [], sequential=raw.is_sequential)
        if raw.is_sequential:
            clock_ev, pseudo = _pick_clock(raw.events)
            block = SeqBlock(clock_ev.signal, clock_ev.edge, pseudo_async=pseudo)
            overlap = set(env) & set(nba)
            if overlap:
                raise UnsupportedFeatureError(
                    "signals assigned with both '=' and '<=' in one block: "
                    + ", ".join(sorted(overlap))
                )
            for target, expr in {**env, **nba}.items():
                if target in flat.memories:
                    raise ElaborationError(f"memory {target!r} assigned as scalar")
                block.updates.append(SeqUpdate(target, fold_expr(expr)))
            block.mem_writes = [
                MemWrite(w.mem, fold_expr(w.cond), fold_expr(w.addr), fold_expr(w.data))
                for w in memw
            ]
            seq.append(block)
        else:
            if memw:
                raise UnsupportedFeatureError(
                    "memory writes are only supported in clocked blocks"
                )
            for target, expr in env.items():
                comb.append(CombAssign(target, fold_expr(expr)))

    # Duplicate-driver check: each signal may have exactly one comb driver.
    seen: Dict[str, int] = {}
    for ca in comb:
        seen[ca.target] = seen.get(ca.target, 0) + 1
    dupes = sorted(name for name, cnt in seen.items() if cnt > 1)
    if dupes:
        raise ElaborationError(
            "multiple combinational drivers for: " + ", ".join(dupes)
        )

    # A register must have exactly one sequential driver block.
    seq_seen: Dict[str, int] = {}
    for blk in seq:
        for u in blk.updates:
            seq_seen[u.target] = seq_seen.get(u.target, 0) + 1
    seq_dupes = sorted(t for t, c in seq_seen.items() if c > 1)
    if seq_dupes:
        raise ElaborationError(
            "registers driven from multiple always blocks: " + ", ".join(seq_dupes)
        )

    # A signal must not be driven both combinationally and sequentially.
    seq_targets = {u.target for blk in seq for u in blk.updates}
    both = sorted(seq_targets & set(seen))
    if both:
        raise ElaborationError(
            "signals driven by both comb and seq logic: " + ", ".join(both)
        )

    return LoweredDesign(
        top=flat.top,
        signals=flat.signals,
        memories=flat.memories,
        comb=comb,
        seq=seq,
        n_cells=flat.n_cells,
        filename=flat.filename,
    )
