"""Command-line interface: ``python -m repro <command>``.

Commands
--------
stats      Parse + elaborate a design and print RTL graph statistics.
lint       Run the static-analysis rule pack (comb loops, multiple
           drivers, width truncation, batch hazards, ...) and report
           structured diagnostics; ``--fail-on`` gates the exit code.
verify     Translation-validation verifier: re-derive the IR invariants
           of every lowering boundary, re-prove the fused emitter's
           rewrites through the known-bits engine, and detect task-graph
           scheduling hazards.  ``--selftest`` runs the mutation harness;
           ``repro run/campaign --verify`` adds the runtime sanitizer.
transpile  Emit the generated batch-kernel module (and optionally the
           Verilator-style scalar module) to files.
simulate   Run a batch simulation from stimulus files (or random stimulus)
           and print final outputs / write a VCD for one lane.
run        Run a bundled design under the resilience harness: per-lane
           fault isolation, durable checkpoint/resume
           (``--checkpoint-dir``/``--resume``), and deterministic fault
           injection (``--inject-lane-fault``, ``--inject-checkpoint-failure``).
campaign   Run a bundled design as a sharded multi-process campaign:
           lane shards on a pool of worker processes with heartbeats,
           crash recovery from per-shard checkpoints
           (``--workers``/``--shard-lanes``/``--checkpoint-dir``/``--resume``)
           and merged outputs/coverage/faults/telemetry.
coverage   Run random stimulus and report toggle coverage.
profile    Run a bundled design under full telemetry and export a
           Chrome-trace JSON (loads in ui.perfetto.dev) plus a metrics
           JSON (per-task kernel times, pool bytes, MCMC statistics).
serve      Run the long-running campaign service: HTTP/JSON job queue,
           multi-tenant fair scheduling at shard granularity, and a
           content-addressed result store (identical shards are never
           re-simulated).  ``submit``/``jobs``/``result``/``cancel``
           are the matching client commands.
submit     Submit a campaign to a running service (``--wait`` blocks
           until it finishes and prints the merged-output digest).
jobs       List a service's jobs and their progress.
result     Fetch a finished job's merged outputs, digest and cache
           metrics.
cancel     Cancel a queued/running job (releases its queue slots).
designs    List the bundled benchmark designs.

``simulate`` and ``coverage`` also accept ``--trace-json PATH`` /
``--metrics-json PATH`` to capture telemetry of a normal run.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


from repro import RTLFlow, obs
from repro.analysis.metrics import code_metrics
from repro.analysis.report import format_table
from repro.coverage.collector import CoverageCollector
from repro.stimulus.batch import StimulusBatch
from repro.utils.errors import ReproError


def _load_flow(args) -> RTLFlow:
    return RTLFlow.from_files(args.sources, args.top)


#: ``--backend`` choices (availability is checked at use, not parse).
BACKEND_CHOICES = ("numpy", "tensor", "numba", "cupy")


def _resolve_executor_backend(executor: str, backend: str) -> str:
    """Reconcile ``--executor`` and ``--backend``.

    Non-numpy backends only execute through the fused engine; the default
    ``graph`` executor silently upgrades (with a note) so
    ``repro run --backend tensor`` just works.  An explicit non-fused
    executor is a real conflict and raises.
    """
    if backend in (None, "numpy"):
        return executor
    if executor in ("graph-fused", "fused"):
        return executor
    if executor == "graph":
        print(f"note: --backend {backend} runs on the fused engine; "
              f"using executor graph-fused", file=sys.stderr)
        return "graph-fused"
    raise ReproError(
        f"--backend {backend} requires --executor graph-fused "
        f"(got {executor!r})"
    )


def cmd_stats(args) -> int:
    from repro.backends import backend_report

    flow = _load_flow(args)
    stats = flow.graph.stats()
    tg = flow.taskgraph()
    backends = backend_report()
    if args.json:
        import json

        print(json.dumps(
            {"top": args.top, "graph": stats, "taskgraph": tg.stats(),
             "active_backend": args.backend, "backends": backends},
            indent=2, sort_keys=True, default=float,
        ))
        return 0
    rows = [[k, v] for k, v in stats.items()]
    print(format_table(["metric", "value"], rows,
                       title=f"RTL graph statistics: {args.top}"))
    print()
    print(format_table(
        ["metric", "value"],
        [[k, round(v, 2) if isinstance(v, float) else v]
         for k, v in tg.stats().items()],
        title="default task graph",
    ))
    print()
    print(format_table(
        ["backend", "available", "summary"],
        [[b["name"] + (" *" if b["name"] == args.backend else ""),
          "yes" if b["available"] else f"no ({b['reason']})",
          b["summary"]] for b in backends],
        title="executor backends (* = selected)",
    ))
    return 0


def cmd_lint(args) -> int:
    from repro.lint import Severity, lint_source

    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        from repro.lint import RULES

        unknown = sorted(set(rules) - set(RULES))
        if unknown:
            raise ReproError(
                f"unknown lint rule(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(RULES))})"
            )

    jobs = []  # (filename, text, top)
    if args.design:
        from repro.designs import get_design, list_designs

        names = list_designs() if "all" in args.design else args.design
        for name in names:
            bundle = get_design(name)
            jobs.append((f"<design:{name}>", bundle.source, bundle.top))
    if args.sources:
        if not args.top:
            raise ReproError("--top is required when linting source files")
        texts = []
        for path in args.sources:
            with open(path, "r", encoding="utf-8") as fh:
                texts.append(fh.read())
        filename = args.sources[0] if len(args.sources) == 1 else "<input>"
        jobs.append((filename, "\n".join(texts), args.top))
    if not jobs:
        raise ReproError("nothing to lint: pass source files or --design")

    reports = [
        lint_source(text, top, filename=fname, rules=rules)
        for fname, text, top in jobs
    ]

    if args.json:
        import json

        payload = [r.to_dict() for r in reports]
        print(json.dumps(payload[0] if len(payload) == 1 else payload,
                         indent=2, sort_keys=True))
    else:
        for i, report in enumerate(reports):
            if i:
                print()
            print(report.format_text())

    if args.fail_on == "never":
        return 0
    threshold = Severity.parse(args.fail_on)
    return 1 if any(r.at_least(threshold) for r in reports) else 0


def cmd_verify(args) -> int:
    from repro.lint import Severity
    from repro.verify import VERIFY_RULE_IDS, verify_source

    if args.selftest:
        from repro.verify.mutate import MUTATIONS, verify_selftest

        rows = verify_selftest()
        missed = [r for r in rows if not r["flagged"]]
        if args.json:
            import json

            print(json.dumps(rows, indent=2, sort_keys=True))
        else:
            table = [[r["mutation"], r["area"],
                      "flagged" if r["flagged"] else "MISSED",
                      ", ".join(r["rules"])] for r in rows]
            print(format_table(
                ["mutation", "area", "result", "rules fired"], table,
                title=f"verifier mutation self-test "
                      f"({len(MUTATIONS)} corruptions)",
            ))
            print(f"{len(rows) - len(missed)}/{len(rows)} mutations flagged")
        return 1 if missed else 0

    rules = list(VERIFY_RULE_IDS)
    if args.rules:
        from repro.lint import RULES

        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = sorted(set(rules) - set(RULES))
        if unknown:
            raise ReproError(
                f"unknown rule(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(RULES))})"
            )

    jobs = []  # (filename, text, top)
    if args.design:
        from repro.designs import get_design, list_designs

        names = list_designs() if "all" in args.design else args.design
        for name in names:
            bundle = get_design(name)
            jobs.append((f"<design:{name}>", bundle.source, bundle.top))
    if args.sources:
        if not args.top:
            raise ReproError("--top is required when verifying source files")
        texts = []
        for path in args.sources:
            with open(path, "r", encoding="utf-8") as fh:
                texts.append(fh.read())
        filename = args.sources[0] if len(args.sources) == 1 else "<input>"
        jobs.append((filename, "\n".join(texts), args.top))
    if not jobs:
        raise ReproError("nothing to verify: pass source files or --design")

    reports = [
        verify_source(text, top, filename=fname, rules=rules,
                      target_weight=args.target_weight,
                      backend=args.backend)
        for fname, text, top in jobs
    ]

    if args.json:
        import json

        payload = []
        for r in reports:
            d = r.to_dict()
            d["backend"] = args.backend
            payload.append(d)
        print(json.dumps(payload[0] if len(payload) == 1 else payload,
                         indent=2, sort_keys=True))
    else:
        for i, report in enumerate(reports):
            if i:
                print()
            print(report.format_text())
            print(f"backend under verification: {args.backend}")

    if args.fail_on == "never":
        return 0
    threshold = Severity.parse(args.fail_on)
    return 1 if any(r.at_least(threshold) for r in reports) else 0


def cmd_transpile(args) -> int:
    flow = _load_flow(args)
    model = flow.compile(target_weight=args.target_weight)
    with open(args.output, "w", encoding="utf-8") as fh:
        fh.write(model.source)
    m = code_metrics(model.source, model.transpile_seconds)
    print(f"wrote {args.output}: {m.loc} LOC, {m.tokens} tokens, "
          f"{len(model.task_fns)} kernels, "
          f"transpiled in {model.transpile_seconds * 1000:.0f} ms")
    if args.scalar_output:
        from repro.baselines.scalargen import generate_scalar_model

        spec = generate_scalar_model(flow.graph)
        with open(args.scalar_output, "w", encoding="utf-8") as fh:
            fh.write(spec.source)
        print(f"wrote {args.scalar_output} (Verilator-style scalar module)")
    return 0


def _make_stimulus(flow: RTLFlow, args) -> StimulusBatch:
    if args.stimulus:
        texts = []
        for path in args.stimulus:
            with open(path, "r", encoding="utf-8") as fh:
                texts.append(fh.read())
        batch = StimulusBatch.from_texts(texts)
        if batch.n != args.batch:
            print(
                f"note: batch size {args.batch} ignored; "
                f"{batch.n} stimulus files supplied",
                file=sys.stderr,
            )
        return batch
    return flow.random_stimulus(args.batch, args.cycles, seed=args.seed)


def _apply_loads(flow: RTLFlow, sim, loads) -> None:
    from repro.stimulus.memimage import read_hex_image

    for spec in loads or ():
        if "=" not in spec:
            raise ReproError(f"--load expects NAME=FILE, got {spec!r}")
        name, path = spec.split("=", 1)
        mem = flow.design.memories.get(name)
        if mem is None:
            known = ", ".join(flow.design.memories) or "(none)"
            raise ReproError(f"no memory {name!r}; design has: {known}")
        sim.load_memory(name, read_hex_image(path, depth=mem.depth))


def cmd_simulate(args) -> int:
    flow = _load_flow(args)
    stim = _make_stimulus(flow, args)
    executor = _resolve_executor_backend(args.executor, args.backend)
    sim = flow.simulator(n=stim.n, executor=executor, backend=args.backend)
    _apply_loads(flow, sim, args.load)
    outs = sim.run(stim, cycles=args.cycles)
    rows = []
    for name, values in outs.items():
        preview = " ".join(format(int(v), "x") for v in values[:8])
        more = " ..." if stim.n > 8 else ""
        rows.append([name, f"{preview}{more}"])
    print(format_table(
        ["output", "final values (hex, first lanes)"], rows,
        title=f"{args.top}: {stim.n} stimulus x {args.cycles} cycles",
    ))
    if args.vcd is not None:
        from repro.waveform.vcd import dump_vcd

        sim2 = flow.simulator(n=stim.n, executor=executor,
                              backend=args.backend)
        _apply_loads(flow, sim2, args.load)
        dump_vcd(args.vcd, sim2, stim, lane=args.vcd_lane, cycles=args.cycles)
        print(f"wrote {args.vcd} (lane {args.vcd_lane})")
    return 0


def cmd_coverage(args) -> int:
    flow = _load_flow(args)
    stim = _make_stimulus(flow, args)
    sim = flow.simulator(n=stim.n)
    _apply_loads(flow, sim, args.load)
    cov = CoverageCollector(sim, include_internal=not args.ports_only)
    report = cov.run(stim, cycles=args.cycles)
    print(report.summary())
    missing = report.uncovered()
    if missing:
        shown = missing if args.all_uncovered else missing[:20]
        print(f"uncovered points ({len(missing)} total):")
        for point in shown:
            print(f"  {point}")
        if not args.all_uncovered and len(missing) > 20:
            print("  ... (--all-uncovered to list every point)")
    return 0 if report.percent >= args.threshold else 1


def cmd_profile(args) -> int:
    """Profile one bundled design end to end under full telemetry."""
    from repro.core.simulator import BatchSimulator
    from repro.gpu.device import SimulatedDevice

    from repro.designs import get_design

    bundle = get_design(args.design)
    with obs.capture() as (tracer, metrics):
        with tracer.span("parse+elaborate", resource="flow"):
            flow = RTLFlow.from_source(bundle.source, bundle.top)
        if args.mcmc_iters > 0:
            with tracer.span("optimize_partition", resource="flow"):
                flow.optimize_partition(
                    n_stimulus=min(32, args.batch),
                    cycles=8,
                    max_iter=args.mcmc_iters,
                    max_unimproved=max(4, args.mcmc_iters // 3),
                )
        with tracer.span("transpile+compile", resource="flow"):
            model = flow.compile(use_mcmc=args.mcmc_iters > 0)
        device = SimulatedDevice(tracer=tracer)
        executor = _resolve_executor_backend(args.executor, args.backend)
        sim = BatchSimulator(model, args.batch, executor=executor,
                             device=device, tracer=tracer, metrics=metrics,
                             backend=args.backend)
        bundle.preload(sim)
        stim = bundle.make_stimulus(args.batch, args.cycles, args.seed)
        sim.run(stim)
        device.publish_metrics(metrics)

    trace_path = args.trace_json or f"{args.design}.trace.json"
    metrics_path = args.metrics_json or f"{args.design}.metrics.json"
    tracer.write_chrome_trace(trace_path)
    metrics.write_json(
        metrics_path, extra={"kernels": obs.kernel_time_summary(tracer)}
    )

    agg = sorted(tracer.aggregate().items(),
                 key=lambda kv: kv[1].total, reverse=True)
    rows = [
        [name, s.count, f"{s.total * 1000:.2f}ms",
         f"{s.total / s.count * 1000:.3f}ms"]
        for name, s in agg[: args.top]
    ]
    print(format_table(
        ["span", "count", "total", "mean"], rows,
        title=f"profile: {args.design} ({args.batch} stimulus x "
              f"{args.cycles} cycles, executor={executor}, "
              f"backend={sim.backend})",
    ))
    mcmc = flow.mcmc_result
    if mcmc is not None:
        print(f"MCMC: {mcmc.iterations} iterations, {mcmc.evaluations} "
              f"evaluations, acceptance "
              f"{mcmc.accepted / max(1, mcmc.iterations):.0%}, "
              f"improvement {mcmc.improvement:+.1%}")
    print(f"device: {device.stats.kernel_launches} kernel launches, "
          f"{device.stats.graph_launches} graph launches, "
          f"busy {device.stats.busy_seconds * 1000:.1f}ms")
    if args.timeline:
        print()
        print(tracer.render_ascii(width=88))
    print(f"wrote {trace_path} (Chrome trace; open in ui.perfetto.dev)")
    print(f"wrote {metrics_path}")
    return 0


def _verified_executor(
    model, design: str, executor: str, backend: str = "numpy"
) -> str:
    """``--verify`` preflight: statically verify the compiled model (the
    selected backend's lowering included), then swap the executor for the
    runtime sanitizer so the run also checks declared write footprints
    and epoch monotonicity.  The sanitizer replays the reference task
    path regardless of backend — the backend's bundle was just verified
    statically, and the sanitizer's job is the task-level invariants."""
    from repro.utils.errors import VerificationError
    from repro.verify import verify_model

    report = verify_model(
        model, filename=f"<design:{design}>", backend=backend
    )
    if report.errors:
        raise VerificationError(
            f"{design}: verifier found {len(report.errors)} error(s):\n"
            + "\n".join(d.format() for d in report.sorted_diagnostics()),
            diagnostics=report.errors,
        )
    print(f"verify: {design} passed "
          f"({len(report.diagnostics)} findings); sanitizer enabled",
          file=sys.stderr)
    return "sanitize"


def cmd_run(args) -> int:
    """Run a bundled design with the resilience harness: lane fault
    isolation, durable periodic checkpoints, resume, fault injection."""
    from repro import resilience as rz
    from repro.core.simulator import BatchSimulator
    from repro.designs import get_design
    from repro.pipeline.scheduler import PipelineSimulator

    bundle = get_design(args.design)
    flow = RTLFlow.from_source(bundle.source, bundle.top)
    model = flow.compile()

    executor = _resolve_executor_backend(args.executor, args.backend)
    if args.verify:
        executor = _verified_executor(
            model, args.design, executor, backend=args.backend
        )

    plan = None
    if args.inject_lane_fault or args.inject_checkpoint_failure:
        try:
            plan = rz.FaultPlan(
                lane_faults=[rz.parse_lane_fault(s)
                             for s in args.inject_lane_fault],
                checkpoint_failures=set(args.inject_checkpoint_failure),
            )
        except ValueError as exc:
            raise ReproError(str(exc)) from exc
    isolation = args.fault_isolation or bool(args.inject_lane_fault)

    mgr = None
    if args.checkpoint_dir:
        policy = None
        if args.checkpoint_every or args.checkpoint_every_seconds:
            policy = rz.CheckpointPolicy(
                every_cycles=args.checkpoint_every or None,
                every_seconds=args.checkpoint_every_seconds or None,
            )
        mgr = rz.CheckpointManager(
            args.checkpoint_dir, policy=policy, keep=args.keep_checkpoints,
            fault_plan=plan,
        )
    elif args.resume:
        raise ReproError("--resume requires --checkpoint-dir")

    if args.groups > 1:
        if args.backend != "numpy":
            raise ReproError(
                "--groups > 1 (pipeline scheduler) supports only the "
                "numpy backend for now"
            )
        sim = PipelineSimulator(
            model, args.batch, groups=args.groups, executor=executor,
            fault_isolation=isolation,
        )
    else:
        sim = BatchSimulator(model, args.batch, executor=executor,
                             fault_isolation=isolation,
                             backend=args.backend)
    bundle.preload(sim)

    start = 0
    if args.resume and mgr is not None:
        ckpt = mgr.load_latest()
        if ckpt is None:
            print(f"no checkpoint in {args.checkpoint_dir}; "
                  f"starting from cycle 0")
        else:
            sim.restore_checkpoint(ckpt)
            start = sim.cycles_run
            print(f"resumed from checkpoint at cycle {start}")

    stim = bundle.make_stimulus(args.batch, args.cycles, args.seed)
    outs = sim.run(stim, watch=bundle.watch, checkpoint=mgr,
                   fault_plan=plan, start_cycle=start)
    if mgr is not None:
        # A final snapshot so a later --resume skips the finished work
        # (best-effort: a failed write degrades like any periodic one).
        mgr.save(sim, required=False)

    rows = []
    for name, values in outs.items():
        preview = " ".join(format(int(v), "x") for v in values[:8])
        more = " ..." if args.batch > 8 else ""
        rows.append([name, f"{preview}{more}"])
    print(format_table(
        ["output", "final values (hex, first lanes)"], rows,
        title=f"{args.design}: {args.batch} stimulus x {args.cycles} cycles "
              f"(executor={executor}"
              + (f", backend={args.backend}" if args.backend != "numpy"
                 else "")
              + (f", groups={args.groups}" if args.groups > 1 else "") + ")",
    ))
    if mgr is not None:
        print(f"checkpoints: {mgr.writes} written, "
              f"{mgr.write_failures} failed, latest {mgr.latest_path()}")

    if isinstance(sim, PipelineSimulator):
        report = sim.fault_report() if isolation else None
    else:
        report = sim.quarantine.report() if sim.quarantine is not None else None
    if report is not None:
        faulted = len(report["faulted_lanes"])
        if faulted:
            print(f"quarantined {faulted}/{report['n']} lanes:")
            for f in report["faults"][:20]:
                print(f"  lane {f['lane']} @ cycle {f['cycle']}: "
                      f"{f['reason']}")
        else:
            print(f"all {report['n']} lanes healthy")
        if args.fault_report:
            payload = dict(report)
            payload["design"] = args.design
            payload["fault_plan"] = plan.to_dict() if plan else None
            rz.atomic_write_json(args.fault_report, payload)
            print(f"wrote {args.fault_report}")
        if faulted >= report["n"]:
            return 1  # every lane died: nothing useful survived
    return 0


def cmd_campaign(args) -> int:
    """Run a bundled design as a sharded multi-process campaign."""
    from repro import resilience as rz
    from repro.cluster import CampaignSpec, run_campaign
    from repro.designs import get_design

    bundle = get_design(args.design)

    if args.verify:
        from repro.utils.errors import VerificationError
        from repro.verify import verify_source

        report = verify_source(bundle.source, bundle.top,
                               filename=f"<design:{args.design}>",
                               backend=args.backend)
        if report.errors:
            raise VerificationError(
                f"{args.design}: verifier found {len(report.errors)} "
                "error(s):\n"
                + "\n".join(d.format() for d in report.sorted_diagnostics()),
                diagnostics=report.errors,
            )
        print(f"verify: {args.design} passed; workers will re-verify",
              file=sys.stderr)

    lane_faults = []
    for s in args.inject_lane_fault:
        try:
            f = rz.parse_lane_fault(s)
        except ValueError as exc:
            raise ReproError(str(exc)) from exc
        lane_faults.append((f.cycle, f.lane, f.reason))

    crash = {}
    for s in args.inject_worker_crash:
        parts = s.split(":")
        try:
            shard, cycle = int(parts[0]), int(parts[1])
            if len(parts) != 2:
                raise ValueError
        except (ValueError, IndexError):
            raise ReproError(
                f"worker crash spec must be SHARD:CYCLE, got {s!r}"
            ) from None
        crash[shard] = cycle

    if args.resume and not args.checkpoint_dir:
        raise ReproError("--resume requires --checkpoint-dir")
    if crash and not args.checkpoint_dir:
        print("note: --inject-worker-crash without --checkpoint-dir "
              "recomputes the killed shard from scratch", file=sys.stderr)

    spec = CampaignSpec(
        n=args.batch,
        cycles=args.cycles,
        design=args.design,
        seed=args.seed,
        executor=_resolve_executor_backend(args.executor, args.backend),
        backend=args.backend,
        watch=bundle.watch,
        fault_isolation=args.fault_isolation or bool(lane_faults),
        lane_faults=lane_faults,
        coverage=args.coverage,
        checkpoint_every=args.checkpoint_every or None,
        checkpoint_every_seconds=args.checkpoint_every_seconds or None,
        verify=args.verify,
    )
    result = run_campaign(
        spec,
        workers=args.workers,
        shard_lanes=args.shard_lanes,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        inject_worker_crash=crash,
        heartbeat_timeout=args.heartbeat_timeout,
        max_restarts=args.max_restarts,
        store=args.store,
    )

    rows = []
    for name, values in result.outputs.items():
        preview = " ".join(format(int(v), "x") for v in values[:8])
        more = " ..." if args.batch > 8 else ""
        rows.append([name, f"{preview}{more}"])
    print(format_table(
        ["output", "final values (hex, first lanes)"], rows,
        title=f"{args.design}: {args.batch} stimulus x {args.cycles} cycles "
              f"({len(result.shards)} shards, {args.workers} workers, "
              f"executor={spec.executor}"
              + (f", backend={spec.backend}" if spec.backend != "numpy"
                 else "") + ")",
    ))
    print(result.summary())
    hits = sum(1 for o in result.shards if o.cache_hit)
    if args.store:
        print(f"store: {hits}/{len(result.shards)} shard(s) served from "
              f"{args.store} ({len(result.shards) - hits} simulated)")
    cached = sum(1 for o in result.shards if o.cached and not o.cache_hit)
    if cached:
        print(f"resumed {cached}/{len(result.shards)} shards from "
              f"persisted results")
    for o in result.shards:
        if o.attempts > 1:
            print(f"shard {o.id} [lanes {o.lo}:{o.hi}] needed {o.attempts} "
                  f"attempts (restarted from cycle {o.resumed_from})")

    report = result.fault_report()
    if report["faulted_lanes"]:
        print(f"quarantined {len(report['faulted_lanes'])}/{report['n']} lanes:")
        for f in report["faults"][:20]:
            print(f"  lane {f['lane']} @ cycle {f['cycle']}: {f['reason']}")
    if args.fault_report:
        payload = dict(report)
        payload["design"] = args.design
        payload["shards"] = [o.to_dict() for o in result.shards]
        payload["restarts"] = result.restarts
        rz.atomic_write_json(args.fault_report, payload)
        print(f"wrote {args.fault_report}")
    if len(report["faulted_lanes"]) >= report["n"]:
        return 1  # every lane died: nothing useful survived
    return 0


def cmd_serve(args) -> int:
    """Run the long-running campaign service until SIGTERM/SIGINT."""
    from repro.serve import CampaignService, run_service

    service = CampaignService(
        data_dir=args.data_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        shard_lanes=args.shard_lanes,
        max_queued_shards=args.max_queued_shards,
        tenant_inflight_cap=args.tenant_inflight_cap,
        store_max_bytes=args.store_max_bytes,
        store_max_entries=args.store_max_entries,
        max_restarts=args.max_restarts,
    )
    return run_service(service)


def _submit_spec(args):
    """Build the CampaignSpec a ``repro submit`` invocation describes."""
    from repro import resilience as rz
    from repro.cluster import CampaignSpec
    from repro.designs import get_design

    bundle = get_design(args.design)
    lane_faults = []
    for s in args.inject_lane_fault:
        try:
            f = rz.parse_lane_fault(s)
        except ValueError as exc:
            raise ReproError(str(exc)) from exc
        lane_faults.append((f.cycle, f.lane, f.reason))
    return CampaignSpec(
        n=args.batch,
        cycles=args.cycles,
        design=args.design,
        seed=args.seed,
        executor=_resolve_executor_backend(args.executor, args.backend),
        backend=args.backend,
        watch=bundle.watch,
        fault_isolation=bool(lane_faults),
        lane_faults=lane_faults,
    )


def _print_job_line(job: dict) -> None:
    line = (f"{job['id']}  {job['state']:<9} tenant={job['tenant']} "
            f"shards={job['shards_done']}/{job['shards_total']} "
            f"hits={job['store_hits']} simulated={job['shards_simulated']}")
    if job.get("result_digest"):
        line += f" digest={job['result_digest'][:12]}"
    if job.get("error"):
        line += f" error={job['error']}"
    print(line)


def cmd_submit(args) -> int:
    from repro.serve import ServiceClient, spec_to_dict

    spec = _submit_spec(args)
    client = ServiceClient(args.url)
    status = client.submit(spec_to_dict(spec), tenant=args.tenant,
                           weight=args.weight)
    job = status["job"]
    print(f"submitted {job['id']} (tenant={job['tenant']}, "
          f"{job['shards_total']} shards, "
          f"{job['store_hits']} cache hits)")
    if args.wait:
        status = client.wait(job["id"], timeout=args.timeout)
        job = status["job"]
        _print_job_line({**job, **status["progress"]})
    if args.status_json:
        from repro import resilience as rz

        rz.atomic_write_json(args.status_json, status)
        print(f"wrote {args.status_json}")
    if args.wait and job["state"] != "done":
        return 1
    return 0


def cmd_jobs(args) -> int:
    import json as json_mod

    from repro.serve import ServiceClient

    client = ServiceClient(args.url)
    jobs = client.jobs(tenant=args.tenant)
    if args.json:
        print(json_mod.dumps({"jobs": jobs}, indent=1))
        return 0
    if not jobs:
        print("no jobs")
        return 0
    for job in jobs:
        _print_job_line(job)
    return 0


def cmd_result(args) -> int:
    import json as json_mod

    from repro.serve import ServiceClient

    client = ServiceClient(args.url)
    res = client.result(args.job)
    if args.json:
        print(json_mod.dumps(res, indent=1))
        return 0
    job = res["job"]
    m = res["metrics"]
    rows = []
    for name, rec in res["outputs"].items():
        preview = " ".join(rec["hex"][:8])
        more = " ..." if len(rec["hex"]) > 8 else ""
        rows.append([name, f"{preview}{more}"])
    print(format_table(
        ["output", "final values (hex, first lanes)"], rows,
        title=f"{job['id']}: {job['spec']['n']} lanes x "
              f"{job['spec']['cycles']} cycles",
    ))
    print(f"digest: {res['digest']}")
    print(f"cache: {m['store_hits']} hits, {m['shards_simulated']} "
          f"simulated (hit rate {m['hit_rate']:.2f})")
    return 0


def cmd_cancel(args) -> int:
    from repro.serve import ServiceClient

    status = ServiceClient(args.url).cancel(args.job)
    job = status["job"]
    print(f"{job['id']}: {job['state']} "
          f"({job['cancelled_shards']} shard(s) not run)")
    return 0


def cmd_designs(args) -> int:
    from repro.designs import get_design, list_designs

    rows = []
    for name in list_designs():
        b = get_design(name)
        rows.append([name, b.top, len(b.source.splitlines()), ", ".join(b.watch[:3])])
    print(format_table(["name", "top module", "verilog lines", "key outputs"],
                       rows, title="bundled designs"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="command", required=True)

    def add_design_args(p):
        p.add_argument("sources", nargs="+", help="Verilog source files")
        p.add_argument("--top", required=True, help="top module name")

    def add_telemetry_args(p):
        p.add_argument("--trace-json", default=None, metavar="PATH",
                       help="write a Chrome-trace/Perfetto JSON of the run")
        p.add_argument("--metrics-json", default=None, metavar="PATH",
                       help="write a metrics snapshot JSON of the run")
        p.set_defaults(_auto_telemetry=True)

    def add_backend_arg(p):
        p.add_argument("--backend", choices=list(BACKEND_CHOICES),
                       default="numpy",
                       help="lowering backend for the fused engine "
                            "(numpy is the default; tensor always works; "
                            "numba/cupy when importable — see "
                            "docs/backends.md)")

    def add_stim_args(p):
        p.add_argument("--batch", "-n", type=int, default=256,
                       help="number of stimulus (random mode)")
        p.add_argument("--cycles", "-c", type=int, default=1000)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--stimulus", nargs="*", default=None,
                       help="stimulus files (one per lane) instead of random")
        p.add_argument("--load", action="append", default=[],
                       metavar="MEM=FILE.hex",
                       help="preload a memory from a $readmemh file "
                            "(repeatable)")

    p = sub.add_parser("stats", help="print RTL graph statistics")
    add_design_args(p)
    add_backend_arg(p)
    p.add_argument("--json", action="store_true",
                   help="emit the statistics as JSON instead of tables")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser(
        "lint",
        help="static-analysis rule pack: comb loops, multiple drivers, "
             "width truncation, batch hazards, ...",
    )
    p.add_argument("sources", nargs="*", help="Verilog source files")
    p.add_argument("--top", default=None,
                   help="top module name (required with source files)")
    p.add_argument("--design", action="append", default=[],
                   metavar="NAME",
                   help="lint a bundled design ('all' for every one; "
                        "repeatable; see `repro designs`)")
    p.add_argument("--rules", default=None, metavar="ID[,ID...]",
                   help="run only these rule ids (default: all)")
    p.add_argument("--json", action="store_true",
                   help="emit structured diagnostics as JSON")
    p.add_argument("--fail-on", choices=["error", "warning", "info", "never"],
                   default="error",
                   help="exit 1 if any diagnostic at or above this "
                        "severity fired (default: error)")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser(
        "verify",
        help="translation-validation verifier: staged IR checks, "
             "known-bits rewrite audit, task-graph hazard detection",
    )
    p.add_argument("sources", nargs="*", help="Verilog source files")
    p.add_argument("--top", default=None,
                   help="top module name (required with source files)")
    p.add_argument("--design", action="append", default=[],
                   metavar="NAME",
                   help="verify a bundled design ('all' for every one; "
                        "repeatable; see `repro designs`)")
    p.add_argument("--rules", default=None, metavar="ID[,ID...]",
                   help="run only these rule ids (default: the verify-* "
                        "rule pack)")
    p.add_argument("--target-weight", type=float, default=None,
                   help="partitioner target weight for the compile "
                        "under verification")
    p.add_argument("--selftest", action="store_true",
                   help="run the mutation self-test instead: inject "
                        "synthetic IR corruptions and require the "
                        "verifier to flag every one")
    add_backend_arg(p)
    p.add_argument("--json", action="store_true",
                   help="emit structured diagnostics as JSON")
    p.add_argument("--fail-on", choices=["error", "warning", "info", "never"],
                   default="error",
                   help="exit 1 if any diagnostic at or above this "
                        "severity fired (default: error)")
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser("transpile", help="emit the batch kernel module")
    add_design_args(p)
    p.add_argument("--output", "-o", default="rtlflow_kernels.py")
    p.add_argument("--scalar-output", default=None,
                   help="also emit the Verilator-style scalar module")
    p.add_argument("--target-weight", type=float, default=64.0)
    p.set_defaults(fn=cmd_transpile)

    p = sub.add_parser("simulate", help="run a batch simulation")
    add_design_args(p)
    add_stim_args(p)
    p.add_argument("--executor", choices=["graph", "graph-fused", "graph-conditional", "stream"],
                   default="graph")
    add_backend_arg(p)
    p.add_argument("--vcd", default=None, help="dump one lane's VCD here")
    p.add_argument("--vcd-lane", type=int, default=0)
    add_telemetry_args(p)
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("coverage", help="toggle-coverage a random campaign")
    add_design_args(p)
    add_stim_args(p)
    add_telemetry_args(p)
    p.add_argument("--ports-only", action="store_true")
    p.add_argument("--all-uncovered", action="store_true")
    p.add_argument("--threshold", type=float, default=0.0,
                   help="exit nonzero below this coverage percent")
    p.set_defaults(fn=cmd_coverage)

    p = sub.add_parser(
        "profile",
        help="profile a bundled design; emit Chrome-trace + metrics JSON",
    )
    p.add_argument("design", help="bundled design name (see `repro designs`)")
    p.add_argument("--batch", "-n", type=int, default=64)
    p.add_argument("--cycles", "-c", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--executor", choices=["graph", "graph-fused", "graph-conditional", "stream"],
                   default="graph")
    add_backend_arg(p)
    p.add_argument("--mcmc-iters", type=int, default=8,
                   help="MCMC partition-tuning iterations (0 disables)")
    p.add_argument("--top", type=int, default=12,
                   help="rows in the printed span table")
    p.add_argument("--timeline", action="store_true",
                   help="also print the ASCII swimlane timeline")
    p.add_argument("--trace-json", default=None, metavar="PATH",
                   help="trace output path (default <design>.trace.json)")
    p.add_argument("--metrics-json", default=None, metavar="PATH",
                   help="metrics output path (default <design>.metrics.json)")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser(
        "run",
        help="run a bundled design with fault isolation, durable "
             "checkpoints/resume, and deterministic fault injection",
    )
    p.add_argument("design", help="bundled design name (see `repro designs`)")
    p.add_argument("--batch", "-n", type=int, default=64)
    p.add_argument("--cycles", "-c", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--executor", choices=["graph", "graph-fused", "graph-conditional", "stream"],
                   default="graph")
    add_backend_arg(p)
    p.add_argument("--groups", type=int, default=1,
                   help="run through the pipeline scheduler with this many "
                        "stimulus groups (default: single simulator)")
    p.add_argument("--fault-isolation", action="store_true",
                   help="quarantine poisoned lanes instead of aborting "
                        "(implied by --inject-lane-fault)")
    p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                   help="directory for durable checkpoints (atomic "
                        "temp+fsync+rename snapshots)")
    p.add_argument("--checkpoint-every", type=int, default=0, metavar="K",
                   help="snapshot every K cycles")
    p.add_argument("--checkpoint-every-seconds", type=float, default=0.0,
                   metavar="T", help="snapshot every T seconds")
    p.add_argument("--keep-checkpoints", type=int, default=2,
                   help="retain this many newest snapshots (default 2)")
    p.add_argument("--resume", action="store_true",
                   help="restore the newest checkpoint in --checkpoint-dir "
                        "and continue from it")
    p.add_argument("--inject-lane-fault", action="append", default=[],
                   metavar="CYCLE:LANE[:REASON]",
                   help="deterministically quarantine LANE at CYCLE "
                        "(repeatable)")
    p.add_argument("--inject-checkpoint-failure", action="append", type=int,
                   default=[], metavar="IDX",
                   help="make the IDX-th checkpoint write fail (repeatable)")
    p.add_argument("--fault-report", default=None, metavar="PATH",
                   help="write the structured lane-fault report JSON here")
    p.add_argument("--verify", action="store_true",
                   help="statically verify the compiled IR first (fail on "
                        "any finding), then run under the runtime "
                        "sanitizer executor")
    add_telemetry_args(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "campaign",
        help="run a sharded multi-process campaign with crash recovery "
             "and merged outputs/coverage/faults/telemetry",
    )
    p.add_argument("design", help="bundled design name (see `repro designs`)")
    p.add_argument("--batch", "-n", type=int, default=256)
    p.add_argument("--cycles", "-c", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--executor", choices=["graph", "graph-fused", "graph-conditional", "stream"],
                   default="graph")
    add_backend_arg(p)
    p.add_argument("--workers", "-w", type=int, default=2,
                   help="worker processes (0 = run shards inline, no "
                        "multiprocessing)")
    p.add_argument("--shard-lanes", type=int, default=None, metavar="L",
                   help="lanes per shard (default: sized for ~4 shards "
                        "per worker)")
    p.add_argument("--coverage", action="store_true",
                   help="collect merged toggle coverage across all shards")
    p.add_argument("--fault-isolation", action="store_true",
                   help="quarantine poisoned lanes instead of aborting "
                        "(implied by --inject-lane-fault)")
    p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                   help="root for per-shard checkpoints and persisted "
                        "shard results (enables crash recovery)")
    p.add_argument("--checkpoint-every", type=int, default=0, metavar="K",
                   help="snapshot each shard every K cycles")
    p.add_argument("--checkpoint-every-seconds", type=float, default=0.0,
                   metavar="T", help="snapshot each shard every T seconds")
    p.add_argument("--resume", action="store_true",
                   help="reload completed shard results from "
                        "--checkpoint-dir and restart unfinished shards "
                        "from their checkpoints")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="content-addressed result store: shards whose "
                        "content key is already stored are adopted "
                        "instead of simulated, and fresh results are "
                        "published back (shareable with `repro serve`)")
    p.add_argument("--heartbeat-timeout", type=float, default=None,
                   metavar="T",
                   help="declare a worker dead after T seconds of silence "
                        "(default: process-death detection only)")
    p.add_argument("--max-restarts", type=int, default=3,
                   help="restart budget per shard before the campaign "
                        "fails (default 3)")
    p.add_argument("--inject-lane-fault", action="append", default=[],
                   metavar="CYCLE:LANE[:REASON]",
                   help="deterministically quarantine a global LANE at "
                        "CYCLE (repeatable; routed to the owning shard)")
    p.add_argument("--inject-worker-crash", action="append", default=[],
                   metavar="SHARD:CYCLE",
                   help="SIGKILL the worker running SHARD after CYCLE "
                        "cycles, first attempt only (repeatable)")
    p.add_argument("--fault-report", default=None, metavar="PATH",
                   help="write the merged campaign fault-report JSON here")
    p.add_argument("--verify", action="store_true",
                   help="statically verify the design up front and have "
                        "every worker re-verify its rebuilt model")
    add_telemetry_args(p)
    p.set_defaults(fn=cmd_campaign)

    p = sub.add_parser(
        "serve",
        help="run the campaign service: HTTP job queue + multi-tenant "
             "fair scheduling + content-addressed result cache",
    )
    p.add_argument("--data-dir", required=True, metavar="DIR",
                   help="root for the result store and durable job records")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8463,
                   help="listen port (0 picks a free one; default 8463)")
    p.add_argument("--workers", "-w", type=int, default=2,
                   help="worker processes (0 = one in-process worker "
                        "thread, the deterministic debug mode)")
    p.add_argument("--shard-lanes", type=int, default=None, metavar="L",
                   help="lanes per shard (default: sized per campaign for "
                        "~4 shards per worker)")
    p.add_argument("--max-queued-shards", type=int, default=1024,
                   help="bounded-queue backpressure limit; submissions "
                        "past it get HTTP 429 (default 1024)")
    p.add_argument("--tenant-inflight-cap", type=int, default=None,
                   metavar="K",
                   help="at most K of one tenant's shards on workers at "
                        "once (default: no cap)")
    p.add_argument("--store-max-bytes", type=int, default=None,
                   help="evict least-recently-used store entries past "
                        "this many bytes (default: unbounded)")
    p.add_argument("--store-max-entries", type=int, default=None,
                   help="evict least-recently-used store entries past "
                        "this count (default: unbounded)")
    p.add_argument("--max-restarts", type=int, default=3,
                   help="per-shard worker-death retry budget (default 3)")
    p.set_defaults(fn=cmd_serve)

    def add_client_url(p):
        p.add_argument("--url", default="http://127.0.0.1:8463",
                       help="service base URL (default http://127.0.0.1:8463)")

    p = sub.add_parser(
        "submit", help="submit a campaign to a running `repro serve`"
    )
    p.add_argument("design", help="bundled design name (see `repro designs`)")
    p.add_argument("--batch", "-n", type=int, default=256)
    p.add_argument("--cycles", "-c", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--executor", choices=["graph", "graph-fused", "graph-conditional", "stream"],
                   default="graph")
    add_backend_arg(p)
    p.add_argument("--inject-lane-fault", action="append", default=[],
                   metavar="CYCLE:LANE[:REASON]",
                   help="deterministically quarantine a global LANE at "
                        "CYCLE (repeatable)")
    p.add_argument("--tenant", default="default",
                   help="tenant the job is accounted to (fair scheduling)")
    p.add_argument("--weight", type=float, default=1.0,
                   help="tenant scheduling weight (default 1.0)")
    p.add_argument("--wait", action="store_true",
                   help="block until the job finishes; exit 1 unless done")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="--wait timeout in seconds (default 300)")
    p.add_argument("--status-json", default=None, metavar="PATH",
                   help="write the final job-status JSON here")
    add_client_url(p)
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("jobs", help="list a service's jobs")
    p.add_argument("--tenant", default=None, help="filter by tenant")
    p.add_argument("--json", action="store_true")
    add_client_url(p)
    p.set_defaults(fn=cmd_jobs)

    p = sub.add_parser(
        "result",
        help="fetch a finished job's merged outputs, digest and "
             "cache metrics",
    )
    p.add_argument("job", help="job id (see `repro jobs`)")
    p.add_argument("--json", action="store_true",
                   help="emit the full result payload as JSON")
    add_client_url(p)
    p.set_defaults(fn=cmd_result)

    p = sub.add_parser("cancel", help="cancel a queued/running job")
    p.add_argument("job", help="job id (see `repro jobs`)")
    add_client_url(p)
    p.set_defaults(fn=cmd_cancel)

    p = sub.add_parser("designs", help="list bundled designs")
    p.set_defaults(fn=cmd_designs)
    return ap


def _run_command(args) -> int:
    """Dispatch one parsed command, honouring the telemetry flags of
    commands that opted in via ``add_telemetry_args``."""
    if not getattr(args, "_auto_telemetry", False) or not (
        args.trace_json or args.metrics_json
    ):
        return args.fn(args)
    with obs.capture() as (tracer, metrics):
        rc = args.fn(args)
    if args.trace_json:
        tracer.write_chrome_trace(args.trace_json)
        print(f"wrote {args.trace_json} (Chrome trace; open in ui.perfetto.dev)")
    if args.metrics_json:
        metrics.write_json(
            args.metrics_json,
            extra={"kernels": obs.kernel_time_summary(tracer)},
        )
        print(f"wrote {args.metrics_json}")
    return rc


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _run_command(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
