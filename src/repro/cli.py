"""Command-line interface: ``python -m repro <command>``.

Commands
--------
stats      Parse + elaborate a design and print RTL graph statistics.
transpile  Emit the generated batch-kernel module (and optionally the
           Verilator-style scalar module) to files.
simulate   Run a batch simulation from stimulus files (or random stimulus)
           and print final outputs / write a VCD for one lane.
coverage   Run random stimulus and report toggle coverage.
designs    List the bundled benchmark designs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro import RTLFlow
from repro.analysis.metrics import code_metrics
from repro.analysis.report import format_table
from repro.coverage.collector import CoverageCollector
from repro.stimulus.batch import StimulusBatch
from repro.utils.errors import ReproError


def _load_flow(args) -> RTLFlow:
    return RTLFlow.from_files(args.sources, args.top)


def cmd_stats(args) -> int:
    flow = _load_flow(args)
    stats = flow.graph.stats()
    rows = [[k, v] for k, v in stats.items()]
    print(format_table(["metric", "value"], rows,
                       title=f"RTL graph statistics: {args.top}"))
    tg = flow.taskgraph()
    print()
    print(format_table(
        ["metric", "value"],
        [[k, round(v, 2) if isinstance(v, float) else v]
         for k, v in tg.stats().items()],
        title="default task graph",
    ))
    return 0


def cmd_transpile(args) -> int:
    flow = _load_flow(args)
    model = flow.compile(target_weight=args.target_weight)
    with open(args.output, "w", encoding="utf-8") as fh:
        fh.write(model.source)
    m = code_metrics(model.source, model.transpile_seconds)
    print(f"wrote {args.output}: {m.loc} LOC, {m.tokens} tokens, "
          f"{len(model.task_fns)} kernels, "
          f"transpiled in {model.transpile_seconds * 1000:.0f} ms")
    if args.scalar_output:
        from repro.baselines.scalargen import generate_scalar_model

        spec = generate_scalar_model(flow.graph)
        with open(args.scalar_output, "w", encoding="utf-8") as fh:
            fh.write(spec.source)
        print(f"wrote {args.scalar_output} (Verilator-style scalar module)")
    return 0


def _make_stimulus(flow: RTLFlow, args) -> StimulusBatch:
    if args.stimulus:
        texts = []
        for path in args.stimulus:
            with open(path, "r", encoding="utf-8") as fh:
                texts.append(fh.read())
        batch = StimulusBatch.from_texts(texts)
        if batch.n != args.batch:
            print(
                f"note: batch size {args.batch} ignored; "
                f"{batch.n} stimulus files supplied",
                file=sys.stderr,
            )
        return batch
    return flow.random_stimulus(args.batch, args.cycles, seed=args.seed)


def _apply_loads(flow: RTLFlow, sim, loads) -> None:
    from repro.stimulus.memimage import read_hex_image

    for spec in loads or ():
        if "=" not in spec:
            raise ReproError(f"--load expects NAME=FILE, got {spec!r}")
        name, path = spec.split("=", 1)
        mem = flow.design.memories.get(name)
        if mem is None:
            known = ", ".join(flow.design.memories) or "(none)"
            raise ReproError(f"no memory {name!r}; design has: {known}")
        sim.load_memory(name, read_hex_image(path, depth=mem.depth))


def cmd_simulate(args) -> int:
    flow = _load_flow(args)
    stim = _make_stimulus(flow, args)
    sim = flow.simulator(n=stim.n, executor=args.executor)
    _apply_loads(flow, sim, args.load)
    outs = sim.run(stim, cycles=args.cycles)
    rows = []
    for name, values in outs.items():
        preview = " ".join(format(int(v), "x") for v in values[:8])
        more = " ..." if stim.n > 8 else ""
        rows.append([name, f"{preview}{more}"])
    print(format_table(
        ["output", "final values (hex, first lanes)"], rows,
        title=f"{args.top}: {stim.n} stimulus x {args.cycles} cycles",
    ))
    if args.vcd is not None:
        from repro.waveform.vcd import dump_vcd

        sim2 = flow.simulator(n=stim.n, executor=args.executor)
        _apply_loads(flow, sim2, args.load)
        dump_vcd(args.vcd, sim2, stim, lane=args.vcd_lane, cycles=args.cycles)
        print(f"wrote {args.vcd} (lane {args.vcd_lane})")
    return 0


def cmd_coverage(args) -> int:
    flow = _load_flow(args)
    stim = _make_stimulus(flow, args)
    sim = flow.simulator(n=stim.n)
    _apply_loads(flow, sim, args.load)
    cov = CoverageCollector(sim, include_internal=not args.ports_only)
    report = cov.run(stim, cycles=args.cycles)
    print(report.summary())
    missing = report.uncovered()
    if missing:
        shown = missing if args.all_uncovered else missing[:20]
        print(f"uncovered points ({len(missing)} total):")
        for point in shown:
            print(f"  {point}")
        if not args.all_uncovered and len(missing) > 20:
            print("  ... (--all-uncovered to list every point)")
    return 0 if report.percent >= args.threshold else 1


def cmd_designs(args) -> int:
    from repro.designs import get_design, list_designs

    rows = []
    for name in list_designs():
        b = get_design(name)
        rows.append([name, b.top, len(b.source.splitlines()), ", ".join(b.watch[:3])])
    print(format_table(["name", "top module", "verilog lines", "key outputs"],
                       rows, title="bundled designs"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="command", required=True)

    def add_design_args(p):
        p.add_argument("sources", nargs="+", help="Verilog source files")
        p.add_argument("--top", required=True, help="top module name")

    def add_stim_args(p):
        p.add_argument("--batch", "-n", type=int, default=256,
                       help="number of stimulus (random mode)")
        p.add_argument("--cycles", "-c", type=int, default=1000)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--stimulus", nargs="*", default=None,
                       help="stimulus files (one per lane) instead of random")
        p.add_argument("--load", action="append", default=[],
                       metavar="MEM=FILE.hex",
                       help="preload a memory from a $readmemh file "
                            "(repeatable)")

    p = sub.add_parser("stats", help="print RTL graph statistics")
    add_design_args(p)
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("transpile", help="emit the batch kernel module")
    add_design_args(p)
    p.add_argument("--output", "-o", default="rtlflow_kernels.py")
    p.add_argument("--scalar-output", default=None,
                   help="also emit the Verilator-style scalar module")
    p.add_argument("--target-weight", type=float, default=64.0)
    p.set_defaults(fn=cmd_transpile)

    p = sub.add_parser("simulate", help="run a batch simulation")
    add_design_args(p)
    add_stim_args(p)
    p.add_argument("--executor", choices=["graph", "graph-fused", "stream"],
                   default="graph")
    p.add_argument("--vcd", default=None, help="dump one lane's VCD here")
    p.add_argument("--vcd-lane", type=int, default=0)
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("coverage", help="toggle-coverage a random campaign")
    add_design_args(p)
    add_stim_args(p)
    p.add_argument("--ports-only", action="store_true")
    p.add_argument("--all-uncovered", action="store_true")
    p.add_argument("--threshold", type=float, default=0.0,
                   help="exit nonzero below this coverage percent")
    p.set_defaults(fn=cmd_coverage)

    p = sub.add_parser("designs", help="list bundled designs")
    p.set_defaults(fn=cmd_designs)
    return ap


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
