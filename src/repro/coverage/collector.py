"""Coverage collector bound to a batch simulator.

Wraps a :class:`~repro.core.simulator.BatchSimulator` (or the pipeline
simulator's per-group simulators) and samples toggle coverage each cycle::

    sim = flow.simulator(n=4096)
    cov = CoverageCollector(sim)                   # all non-clock signals
    for c in range(cycles):
        sim.cycle(stim.inputs_at(c))
        cov.sample()
    print(cov.report().summary())
"""

from __future__ import annotations

import re
from typing import Iterable, Optional

from repro.coverage.toggle import CoverageReport, ToggleCoverage
from repro.utils.errors import SimulationError

_CLOCK_RE = re.compile(r"(^|[._])(clk|clock|ck)\w*$", re.IGNORECASE)


class CoverageCollector:
    """Samples toggle coverage from a batch simulator each cycle."""
    def __init__(
        self,
        sim,
        signals: Optional[Iterable[str]] = None,
        include_internal: bool = True,
    ):
        """``sim`` is any simulator with ``.get(name)`` and a ``.model``.

        ``signals`` restricts collection; by default every non-clock
        signal (optionally only ports with ``include_internal=False``).
        """
        design = sim.model.design
        if signals is None:
            pool = design.signals.values()
            names = [
                s.name
                for s in pool
                if not _CLOCK_RE.search(s.name)
                and (include_internal or s.kind in ("input", "output"))
            ]
        else:
            names = list(signals)
            unknown = [n for n in names if n not in design.signals]
            if unknown:
                raise SimulationError(f"unknown signals for coverage: {unknown}")
        widths = {n: design.signals[n].width for n in names}
        self.sim = sim
        self.toggle = ToggleCoverage(widths)

    def sample(self) -> None:
        self.toggle.sample({n: self.sim.get(n) for n in self.toggle.widths})

    def merge(self, other: "CoverageCollector") -> "CoverageCollector":
        """Fold another collector's coverage in (cross-shard merge).

        The collectors must watch the same signal set (e.g. two shards of
        one campaign, built from the same design with the same options).
        Lane counts add and cycles take the max, so merging every shard's
        collector equals the whole-batch collector — see
        :meth:`ToggleCoverage.merge`.
        """
        self.toggle.merge(other.toggle)
        return self

    def report(self) -> CoverageReport:
        return self.toggle.report()

    def run(self, stim, cycles: Optional[int] = None) -> CoverageReport:
        """Convenience: drive the simulator and sample every cycle."""
        total = cycles if cycles is not None else len(stim)
        for c in range(total):
            inputs = stim.inputs_at(c) if c < len(stim) else None
            self.sim.cycle(inputs)
            self.sample()
        return self.report()
