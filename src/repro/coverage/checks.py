"""Batch assertion checking.

Verilog's ``initial``/SVA checking is out of subset, so properties are
expressed as Python predicates over signal values and evaluated
*vectorized across all stimulus lanes* each cycle — one numpy expression
per property regardless of batch size.  Violations record which lanes
failed at which cycle, so a failing lane can be re-run with a VCD dump.

::

    checker = BatchChecker(sim)
    checker.add("count_bounded", lambda s: s["count"] <= 200)
    checker.add("no_wrap_while_reset",
                lambda s: (s["rst"] == 0) | (s["count"] == 0))
    for c in range(cycles):
        sim.cycle(stim.inputs_at(c))
        checker.check(cycle=c)
    checker.raise_on_failure()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.resilience.faults import REASON_COVERAGE
from repro.utils.errors import SimulationError


@dataclass
class Violation:
    """One property failure: which lanes violated it at which cycle."""

    prop: str
    cycle: int
    lanes: List[int]

    def __str__(self) -> str:
        shown = ", ".join(map(str, self.lanes[:8]))
        more = ", ..." if len(self.lanes) > 8 else ""
        return f"{self.prop} @ cycle {self.cycle}: lanes [{shown}{more}]"


@dataclass
class _Property:
    name: str
    predicate: Callable[[Mapping[str, np.ndarray]], np.ndarray]
    signals: Optional[List[str]]


class BatchChecker:
    """Evaluates registered properties over a batch simulator each cycle."""

    def __init__(self, sim, max_violations: int = 100, quarantine: bool = False):
        """``sim`` needs ``.get(name)`` and ``.model`` (a BatchSimulator).

        Collection stops after ``max_violations`` records per property so
        a broken design cannot flood memory.

        With ``quarantine=True`` (and a simulator built with
        ``fault_isolation=True``) a lane that violates a property is
        quarantined — frozen in place so the remaining lanes continue
        bit-identically.  Caveat: quarantined lanes stop contributing to
        coverage and to subsequent checks, so coverage statistics after
        the first violation under-count the faulted lanes.
        """
        self.sim = sim
        self.max_violations = max_violations
        self.quarantine = quarantine
        if quarantine and getattr(sim, "quarantine", None) is None:
            raise SimulationError(
                "BatchChecker(quarantine=True) needs a simulator built "
                "with fault_isolation=True"
            )
        self._props: List[_Property] = []
        self.violations: List[Violation] = []
        self._counts: Dict[str, int] = {}
        self.cycles_checked = 0

    def add(
        self,
        name: str,
        predicate: Callable[[Mapping[str, np.ndarray]], np.ndarray],
        signals: Optional[Sequence[str]] = None,
    ) -> "BatchChecker":
        """Register a property.

        ``predicate`` receives a mapping of signal name -> (N,) values and
        returns a boolean array (True = property holds on that lane);
        ``signals`` restricts which values are fetched (default: all
        design signals, lazily via a view object).
        """
        if any(p.name == name for p in self._props):
            raise SimulationError(f"duplicate property name {name!r}")
        design = self.sim.model.design
        if signals is not None:
            unknown = [s for s in signals if s not in design.signals]
            if unknown:
                raise SimulationError(f"unknown signals in property: {unknown}")
        self._props.append(_Property(name, predicate, list(signals) if signals else None))
        self._counts[name] = 0
        return self

    def _values(self, prop: _Property) -> Mapping[str, np.ndarray]:
        if prop.signals is not None:
            return {s: self.sim.get(s) for s in prop.signals}
        sim = self.sim

        class _View(dict):
            def __missing__(self, key):
                value = sim.get(key)
                self[key] = value
                return value

        return _View()

    def check(self, cycle: Optional[int] = None) -> List[Violation]:
        """Evaluate every property against the current state."""
        at = cycle if cycle is not None else self.cycles_checked
        q = getattr(self.sim, "quarantine", None)
        new: List[Violation] = []
        for prop in self._props:
            if self._counts[prop.name] >= self.max_violations:
                continue
            ok = np.asarray(prop.predicate(self._values(prop)))
            if ok.ndim == 0:
                ok = np.full(self.sim.n, bool(ok))
            bad = np.nonzero(~ok.astype(bool))[0]
            if q is not None and not q.all_active:
                # Already-quarantined lanes are frozen; their stale state
                # would re-violate every cycle.
                bad = bad[q.active[bad]]
            if bad.size:
                v = Violation(prop.name, at, [int(b) for b in bad])
                new.append(v)
                self.violations.append(v)
                self._counts[prop.name] += 1
                if self.quarantine and q is not None:
                    self.sim._quarantine_lanes(
                        v.lanes,
                        reason=REASON_COVERAGE,
                        task=prop.name,
                        detail=f"property {prop.name!r} violated at cycle {at}",
                    )
        self.cycles_checked += 1
        return new

    def run(self, stim, cycles: Optional[int] = None) -> List[Violation]:
        """Drive the simulator and check after every cycle."""
        total = cycles if cycles is not None else len(stim)
        for c in range(total):
            self.sim.cycle(stim.inputs_at(c) if c < len(stim) else None)
            self.check(cycle=c)
        return self.violations

    @property
    def passed(self) -> bool:
        return not self.violations

    def raise_on_failure(self) -> None:
        """Raise SimulationError summarizing violations, if any."""
        if self.violations:
            head = "\n  ".join(str(v) for v in self.violations[:10])
            more = (
                f"\n  ... and {len(self.violations) - 10} more"
                if len(self.violations) > 10
                else ""
            )
            raise SimulationError(
                f"{len(self.violations)} property violation(s):\n  {head}{more}"
            )

    def summary(self) -> str:
        """One-line campaign result."""
        if self.passed:
            return (
                f"all {len(self._props)} properties held over "
                f"{self.cycles_checked} cycles x {self.sim.n} lanes"
            )
        return f"{len(self.violations)} violation(s); first: {self.violations[0]}"
