"""Batch coverage collection.

The paper's motivation (§1) is functional verification signoff:
"converging on coverage closure ... requires many thousands of nightly
regression tests".  This package provides the coverage side of that
workflow over batch simulation: per-signal toggle coverage and per-signal
value coverage, collected *vectorized across all stimulus at once*, plus
mergeable reports for multi-batch campaigns.
"""

from repro.coverage.toggle import ToggleCoverage, CoverageReport
from repro.coverage.collector import CoverageCollector
from repro.coverage.checks import BatchChecker, Violation

__all__ = [
    "ToggleCoverage",
    "CoverageReport",
    "CoverageCollector",
    "BatchChecker",
    "Violation",
]
