"""Toggle coverage over batch simulation.

A *toggle point* is one bit of one signal in one direction (rise 0->1 or
fall 1->0).  The collector samples watched signals once per cycle across
every stimulus lane simultaneously (vectorized XOR against the previous
sample), so coverage collection costs O(signals) numpy ops per cycle
regardless of batch size — the same batch-axis economics as simulation
itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.utils.errors import SimulationError

_U64 = np.uint64


@dataclass
class CoverageReport:
    """Aggregated coverage numbers for one signal set."""

    # signal -> (rise_mask, fall_mask): bit i set == that bit covered.
    rise: Dict[str, int] = field(default_factory=dict)
    fall: Dict[str, int] = field(default_factory=dict)
    widths: Dict[str, int] = field(default_factory=dict)
    cycles: int = 0
    lanes: int = 0

    @property
    def total_points(self) -> int:
        return 2 * sum(self.widths.values())

    @property
    def covered_points(self) -> int:
        return sum(bin(m).count("1") for m in self.rise.values()) + sum(
            bin(m).count("1") for m in self.fall.values()
        )

    @property
    def percent(self) -> float:
        total = self.total_points
        return 100.0 * self.covered_points / total if total else 100.0

    def uncovered(self) -> List[str]:
        """Human-readable list of uncovered toggle points."""
        out: List[str] = []
        for name, w in sorted(self.widths.items()):
            full = (1 << w) - 1
            for label, masks in (("rise", self.rise), ("fall", self.fall)):
                missing = full & ~masks.get(name, 0)
                bit = 0
                while missing:
                    if missing & 1:
                        out.append(f"{name}[{bit}] {label}")
                    missing >>= 1
                    bit += 1
        return out

    def merge_lanes(self, other: "CoverageReport") -> "CoverageReport":
        """Merge coverage of disjoint lane shards of **one** campaign.

        Shards simulate the same cycles concurrently over different
        lanes, so cycles take the max and lane counts add — the merged
        report of a sharded run equals the whole-batch report (cf.
        :meth:`merge`, which concatenates *sequential* campaigns and
        therefore sums cycles).
        """
        if self.widths and other.widths and self.widths != other.widths:
            raise SimulationError("cannot merge coverage of different signal sets")
        merged = CoverageReport(
            rise=dict(self.rise),
            fall=dict(self.fall),
            widths=dict(self.widths or other.widths),
            cycles=max(self.cycles, other.cycles),
            lanes=self.lanes + other.lanes,
        )
        for name, m in other.rise.items():
            merged.rise[name] = merged.rise.get(name, 0) | m
        for name, m in other.fall.items():
            merged.fall[name] = merged.fall.get(name, 0) | m
        return merged

    def merge(self, other: "CoverageReport") -> "CoverageReport":
        """Merge coverage from another campaign (e.g. another batch)."""
        if self.widths and other.widths and self.widths != other.widths:
            raise SimulationError("cannot merge coverage of different signal sets")
        merged = CoverageReport(
            rise=dict(self.rise),
            fall=dict(self.fall),
            widths=dict(self.widths or other.widths),
            cycles=self.cycles + other.cycles,
            lanes=max(self.lanes, other.lanes),
        )
        for name, m in other.rise.items():
            merged.rise[name] = merged.rise.get(name, 0) | m
        for name, m in other.fall.items():
            merged.fall[name] = merged.fall.get(name, 0) | m
        return merged

    def summary(self) -> str:
        return (
            f"toggle coverage: {self.covered_points}/{self.total_points} "
            f"points ({self.percent:.1f}%) over {self.lanes} lanes x "
            f"{self.cycles} cycles"
        )


class ToggleCoverage:
    """Per-cycle vectorized toggle sampling for a set of signals."""

    def __init__(self, signals: Mapping[str, int]):
        """``signals`` maps signal name -> width in bits."""
        if not signals:
            raise SimulationError("no signals to cover")
        self.widths = dict(signals)
        self._prev: Dict[str, Optional[np.ndarray]] = {s: None for s in signals}
        # Accumulated covered-bit masks (ORed across lanes and cycles).
        self._rise: Dict[str, int] = {s: 0 for s in signals}
        self._fall: Dict[str, int] = {s: 0 for s in signals}
        self.cycles = 0
        self.lanes = 0

    def sample(self, values: Mapping[str, np.ndarray]) -> None:
        """Record one cycle's post-edge values (arrays of shape (N,))."""
        for name in self.widths:
            cur = np.asarray(values[name]).astype(_U64, copy=False)
            prev = self._prev[name]
            if prev is not None:
                changed = prev ^ cur
                rose = changed & cur
                fell = changed & prev
                # OR across the batch: any lane covering a bit covers it.
                self._rise[name] |= int(np.bitwise_or.reduce(rose))
                self._fall[name] |= int(np.bitwise_or.reduce(fell))
            self._prev[name] = cur.copy()
            self.lanes = max(self.lanes, cur.shape[0] if cur.ndim else 1)
        self.cycles += 1

    def merge(self, other: "ToggleCoverage") -> "ToggleCoverage":
        """Fold another collector's accumulated masks in (lane shards).

        Both collectors must watch the same signal set.  Covered-bit
        masks OR together; cycles take the max and lanes add (the shards
        of one campaign run the same cycles over disjoint lanes), so
        merging every shard of a sharded run reproduces the whole-batch
        collector state exactly.
        """
        if self.widths != other.widths:
            raise SimulationError("cannot merge coverage of different signal sets")
        for name in self.widths:
            self._rise[name] |= other._rise[name]
            self._fall[name] |= other._fall[name]
        self.cycles = max(self.cycles, other.cycles)
        self.lanes += other.lanes
        return self

    def report(self) -> CoverageReport:
        widths = dict(self.widths)
        full = {s: (1 << w) - 1 for s, w in widths.items()}
        return CoverageReport(
            rise={s: self._rise[s] & full[s] for s in widths},
            fall={s: self._fall[s] & full[s] for s in widths},
            widths=widths,
            cycles=self.cycles,
            lanes=self.lanes,
        )
