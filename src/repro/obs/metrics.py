"""Counters, gauges and histograms with JSON snapshot export.

The registry records the quantities the paper's evaluation keys on:
kernel launches, bytes moved per pool, cycles simulated, MCMC
evaluations/acceptance rate/cost trajectory, pipeline-stage overlap — as
plain named instruments.  Thread-safe; a disabled registry is a no-op so
instrumented hot paths cost one attribute check when telemetry is off.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List, Optional, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

Number = Union[int, float]


class Counter:
    """Monotonically increasing count (launches, cycles, evaluations)."""

    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: Number = 0
        self._lock = threading.Lock()

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount

    def as_dict(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Last-write-wins value (pool bytes, acceptance rate, utilization)."""

    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: Number = 0
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        with self._lock:
            self.value = value

    def add(self, amount: Number) -> None:
        with self._lock:
            self.value += amount

    def as_dict(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Streaming distribution summary plus a bounded sample reservoir.

    Tracks exact count/sum/min/max; keeps the first ``max_samples``
    observations so snapshots can report percentiles and (for e.g. the
    MCMC cost trajectory) the raw series.
    """

    __slots__ = ("name", "help", "count", "sum", "min", "max",
                 "max_samples", "samples", "_lock")

    def __init__(self, name: str, help: str = "", max_samples: int = 4096):
        self.name = name
        self.help = help
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.max_samples = max_samples
        self.samples: List[float] = []
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        v = float(value)
        with self._lock:
            self.count += 1
            self.sum += v
            if v < self.min:
                self.min = v
            if v > self.max:
                self.max = v
            if len(self.samples) < self.max_samples:
                self.samples.append(v)

    def percentile(self, q: float) -> float:
        """Percentile (0..100) over the retained samples."""
        with self._lock:
            if not self.samples:
                return 0.0
            data = sorted(self.samples)
        k = (len(data) - 1) * q / 100.0
        lo = int(k)
        hi = min(lo + 1, len(data) - 1)
        return data[lo] + (data[hi] - data[lo]) * (k - lo)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named instruments with get-or-create access and JSON export."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- instrument access -------------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name, help)
            return c

    def gauge(self, name: str, help: str = "") -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge(name, help)
            return g

    def histogram(self, name: str, help: str = "",
                  max_samples: int = 4096) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(name, help, max_samples)
            return h

    # -- recording conveniences (no-ops when disabled) ---------------------------

    def inc(self, name: str, amount: Number = 1) -> None:
        if self.enabled:
            self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: Number) -> None:
        if self.enabled:
            self.gauge(name).set(value)

    def observe(self, name: str, value: Number) -> None:
        if self.enabled:
            self.histogram(name).observe(value)

    # -- export ------------------------------------------------------------------

    def snapshot(self, extra: Optional[dict] = None) -> dict:
        """A plain JSON-serializable dict of every instrument."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        out = {
            "counters": {k: v.as_dict() for k, v in sorted(counters.items())},
            "gauges": {k: v.as_dict() for k, v in sorted(gauges.items())},
            "histograms": {
                k: v.as_dict() for k, v in sorted(histograms.items())
            },
        }
        if extra:
            out.update(extra)
        return out

    def write_json(self, path: str, extra: Optional[dict] = None) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(extra), fh, indent=2, default=float)
        return path

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
