"""Counters, gauges and histograms with JSON snapshot export.

The registry records the quantities the paper's evaluation keys on:
kernel launches, bytes moved per pool, cycles simulated, MCMC
evaluations/acceptance rate/cost trajectory, pipeline-stage overlap — as
plain named instruments.  Thread-safe; a disabled registry is a no-op so
instrumented hot paths cost one attribute check when telemetry is off.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List, Optional, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

Number = Union[int, float]


class Counter:
    """Monotonically increasing count (launches, cycles, evaluations)."""

    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: Number = 0
        self._lock = threading.Lock()

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount

    def as_dict(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Last-write-wins value (pool bytes, acceptance rate, utilization)."""

    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: Number = 0
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        with self._lock:
            self.value = value

    def add(self, amount: Number) -> None:
        with self._lock:
            self.value += amount

    def as_dict(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Streaming distribution summary plus a bounded sample reservoir.

    Tracks exact count/sum/min/max; keeps the first ``max_samples``
    observations so snapshots can report percentiles and (for e.g. the
    MCMC cost trajectory) the raw series.
    """

    __slots__ = ("name", "help", "count", "sum", "min", "max",
                 "max_samples", "samples", "_lock")

    def __init__(self, name: str, help: str = "", max_samples: int = 4096):
        self.name = name
        self.help = help
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.max_samples = max_samples
        self.samples: List[float] = []
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        v = float(value)
        with self._lock:
            self.count += 1
            self.sum += v
            if v < self.min:
                self.min = v
            if v > self.max:
                self.max = v
            if len(self.samples) < self.max_samples:
                self.samples.append(v)

    def merge_from(
        self,
        count: int,
        total: float,
        vmin: float,
        vmax: float,
        samples: List[float],
    ) -> None:
        """Fold another histogram's state in (cross-shard aggregation).

        Exact for count/sum/min/max; the sample reservoir keeps whatever
        fits under this histogram's ``max_samples`` bound, so merged
        percentiles stay an approximation just like single-registry ones.
        """
        with self._lock:
            self.count += count
            self.sum += total
            if count:
                if vmin < self.min:
                    self.min = vmin
                if vmax > self.max:
                    self.max = vmax
            room = self.max_samples - len(self.samples)
            if room > 0:
                self.samples.extend(float(s) for s in samples[:room])

    def percentile(self, q: float) -> float:
        """Percentile (0..100) over the retained samples."""
        with self._lock:
            if not self.samples:
                return 0.0
            data = sorted(self.samples)
        k = (len(data) - 1) * q / 100.0
        lo = int(k)
        hi = min(lo + 1, len(data) - 1)
        return data[lo] + (data[hi] - data[lo]) * (k - lo)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named instruments with get-or-create access and JSON export."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- instrument access -------------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name, help)
            return c

    def gauge(self, name: str, help: str = "") -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge(name, help)
            return g

    def histogram(self, name: str, help: str = "",
                  max_samples: int = 4096) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(name, help, max_samples)
            return h

    # -- recording conveniences (no-ops when disabled) ---------------------------

    def inc(self, name: str, amount: Number = 1) -> None:
        if self.enabled:
            self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: Number) -> None:
        if self.enabled:
            self.gauge(name).set(value)

    def observe(self, name: str, value: Number) -> None:
        if self.enabled:
            self.histogram(name).observe(value)

    # -- aggregation -------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Aggregate ``other``'s instruments into this registry.

        The cross-shard/cross-process merge of :mod:`repro.cluster`:
        counters add (``sim.cycles`` from every worker sums to the
        campaign total), gauges take ``other``'s value (last write wins —
        merge order decides ties), histograms fold count/sum/min/max
        exactly and append the other reservoir's samples up to this
        histogram's ``max_samples``.

        Same-named instruments aggregate instead of colliding, and locks
        are taken one instrument at a time — never the registry lock and
        an instrument lock together, and never two registries' locks at
        once on the read side — so merging live registries cannot
        deadlock.  Works regardless of either registry's ``enabled`` flag
        (aggregation is an offline operation, not a hot-path record).
        """
        if other is self:
            raise ValueError("cannot merge a registry into itself")
        with other._lock:
            counters = list(other._counters.items())
            gauges = list(other._gauges.items())
            histograms = list(other._histograms.items())
        for name, c in counters:
            with c._lock:
                value = c.value
            mine = self.counter(name, c.help)
            with mine._lock:
                mine.value += value
        for name, g in gauges:
            with g._lock:
                value = g.value
            self.gauge(name, g.help).set(value)
        for name, h in histograms:
            with h._lock:
                count, total = h.count, h.sum
                vmin, vmax = h.min, h.max
                samples = list(h.samples)
            self.histogram(name, h.help, h.max_samples).merge_from(
                count, total, vmin, vmax, samples
            )
        return self

    def dump(self) -> dict:
        """Full, pickle/JSON-safe state for cross-process shipping.

        Unlike :meth:`snapshot` (a human/CI-facing summary), ``dump``
        keeps histogram reservoirs raw so :meth:`from_dump` +
        :meth:`merge` aggregate per-worker registries losslessly.
        """
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, c in counters:
            with c._lock:
                out["counters"][name] = {"value": c.value, "help": c.help}
        for name, g in gauges:
            with g._lock:
                out["gauges"][name] = {"value": g.value, "help": g.help}
        for name, h in histograms:
            with h._lock:
                out["histograms"][name] = {
                    "count": h.count,
                    "sum": h.sum,
                    "min": h.min,
                    "max": h.max,
                    "max_samples": h.max_samples,
                    "samples": list(h.samples),
                    "help": h.help,
                }
        return out

    @classmethod
    def from_dump(cls, dump: dict) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`dump` payload."""
        reg = cls(enabled=True)
        for name, d in dump.get("counters", {}).items():
            reg.counter(name, d.get("help", "")).value = d["value"]
        for name, d in dump.get("gauges", {}).items():
            reg.gauge(name, d.get("help", "")).value = d["value"]
        for name, d in dump.get("histograms", {}).items():
            h = reg.histogram(name, d.get("help", ""),
                              d.get("max_samples", 4096))
            h.merge_from(d["count"], d["sum"], d["min"], d["max"],
                         d.get("samples", []))
        return reg

    # -- export ------------------------------------------------------------------

    def snapshot(self, extra: Optional[dict] = None) -> dict:
        """A plain JSON-serializable dict of every instrument."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        out = {
            "counters": {k: v.as_dict() for k, v in sorted(counters.items())},
            "gauges": {k: v.as_dict() for k, v in sorted(gauges.items())},
            "histograms": {
                k: v.as_dict() for k, v in sorted(histograms.items())
            },
        }
        if extra:
            out.update(extra)
        return out

    def write_json(self, path: str, extra: Optional[dict] = None) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(extra), fh, indent=2, default=float)
        return path

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
