"""Unified telemetry: tracing, metrics, Chrome-trace export.

This package is the single observability layer every runtime component
reports into (the prerequisite for honest numbers in every perf PR):

* :class:`~repro.obs.trace.Tracer` — hierarchical named spans on named
  resource rows, thread-safe, with aggregate totals/counts/min/max and
  export to Chrome-trace/Perfetto JSON or an ASCII swimlane.
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  histograms with JSON snapshot export.

A *global default* tracer and registry exist so instrumented components
(`BatchSimulator`, the executors, the scheduler, the MCMC partitioner)
need no plumbing: they bind the defaults at construction.  Both start
**disabled** — a disabled tracer/registry is a no-op, keeping the hot
path overhead-free.  Enable them in place (``get_tracer().enabled =
True``) or scoped via :func:`capture`::

    with obs.capture() as (tracer, metrics):
        sim = flow.simulator(n=1024)      # binds the enabled defaults
        sim.run(stim)
    tracer.write_chrome_trace("run.trace.json")
    metrics.write_json("run.metrics.json")
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Tuple

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Span, SpanStats, Tracer, render_timeline

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanStats",
    "Tracer",
    "render_timeline",
    "get_tracer",
    "set_tracer",
    "get_metrics",
    "set_metrics",
    "capture",
    "kernel_time_summary",
]

_default_tracer = Tracer(enabled=False)
_default_metrics = MetricsRegistry(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide default tracer (disabled until enabled)."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the default; returns the previous one."""
    global _default_tracer
    prev, _default_tracer = _default_tracer, tracer
    return prev


def get_metrics() -> MetricsRegistry:
    """The process-wide default metrics registry."""
    return _default_metrics


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the default; returns the previous one."""
    global _default_metrics
    prev, _default_metrics = _default_metrics, registry
    return prev


@contextmanager
def capture(
    trace: bool = True, metrics: bool = True
) -> Iterator[Tuple[Tracer, MetricsRegistry]]:
    """Install fresh *enabled* defaults for the duration of the block.

    Components constructed inside the block bind the enabled instances;
    the previous defaults are restored on exit.  Yields the pair so the
    caller can export after the block.
    """
    tracer = Tracer(enabled=trace)
    registry = MetricsRegistry(enabled=metrics)
    prev_t = set_tracer(tracer)
    prev_m = set_metrics(registry)
    try:
        yield tracer, registry
    finally:
        set_tracer(prev_t)
        set_metrics(prev_m)


def kernel_time_summary(tracer: Tracer, prefix: str = "task_") -> dict:
    """Per-task kernel time stats from a tracer's aggregates (for the
    metrics JSON: ``{"task_3": {"total_seconds": ..., "count": ...}}``)."""
    return {
        name: stats.as_dict()
        for name, stats in sorted(tracer.aggregate(prefix=prefix).items())
    }
