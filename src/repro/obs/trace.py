"""Unified span tracing (the successor of ``utils.timing.Stopwatch`` and
``gpu.timeline.Tracer``).

One :class:`Tracer` serves every measurement need of the repo:

* **Aggregates** — per-name total/count/min/max wall seconds, the Fig. 2
  style breakdown the old ``Stopwatch`` produced.
* **Timeline spans** — named spans on named resource rows ("GPU", "CPU0",
  "stream s1", ...), hierarchical per thread, the Nsight-style capture of
  Figs. 10 and 16.  Rendered as an ASCII swimlane
  (:func:`render_timeline`) or exported as Chrome-trace/Perfetto JSON
  (:meth:`Tracer.to_chrome_trace`), which loads directly in
  https://ui.perfetto.dev or ``chrome://tracing``.

Recording is thread-safe.  A disabled tracer is free on the hot path:
``span()`` returns a shared no-op context manager without allocating.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

__all__ = [
    "Span",
    "SpanStats",
    "Tracer",
    "render_timeline",
]


@dataclass
class Span:
    """One recorded interval on a resource row.

    ``start``/``end`` are seconds relative to the tracer epoch; ``depth``
    is the nesting level within the recording thread (0 = top level).
    """

    name: str
    resource: str
    start: float
    end: float
    depth: int = 0
    thread: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class SpanStats:
    """Aggregate statistics for one span name."""

    total: float = 0.0
    count: int = 0
    min: float = float("inf")
    max: float = 0.0

    def observe(self, seconds: float) -> None:
        self.total += seconds
        self.count += 1
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def as_dict(self) -> Dict[str, float]:
        return {
            "total_seconds": self.total,
            "count": self.count,
            "min_seconds": self.min if self.count else 0.0,
            "max_seconds": self.max,
            "mean_seconds": self.total / self.count if self.count else 0.0,
        }


class _NullSpan:
    """Shared no-op context manager returned by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanCtx:
    """Live span context: records on exit with the nesting depth."""

    __slots__ = ("tracer", "name", "resource", "start", "depth")

    def __init__(self, tracer: "Tracer", name: str, resource: str):
        self.tracer = tracer
        self.name = name
        self.resource = resource

    def __enter__(self) -> "_SpanCtx":
        stack = self.tracer._stack()
        self.depth = len(stack)
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        end = time.perf_counter()
        tracer = self.tracer
        stack = tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        tracer._record_span(
            self.name, self.resource,
            self.start - tracer._t0, end - tracer._t0, self.depth,
        )
        return False


class Tracer:
    """Thread-safe hierarchical span recorder with aggregate totals.

    ``enabled=False`` makes every operation a no-op; ``keep_spans=False``
    keeps only the per-name aggregates (the old Stopwatch behaviour),
    which bounds memory for long runs.
    """

    DEFAULT_RESOURCE = "CPU"

    def __init__(
        self,
        enabled: bool = True,
        keep_spans: bool = True,
        max_spans: int = 1_000_000,
    ):
        self.enabled = enabled
        self.keep_spans = keep_spans
        self.max_spans = max_spans
        self.dropped_spans = 0
        self._spans: List[Span] = []
        self._agg: Dict[str, SpanStats] = {}
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._t0 = time.perf_counter()

    # -- recording ---------------------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def span(self, name: str, resource: Optional[str] = None):
        """Context manager timing one named span on ``resource``'s row."""
        if not self.enabled:
            return _NULL_SPAN
        return _SpanCtx(self, name, resource or self.DEFAULT_RESOURCE)

    def _record_span(
        self, name: str, resource: str, start: float, end: float, depth: int
    ) -> None:
        with self._lock:
            stats = self._agg.get(name)
            if stats is None:
                stats = self._agg[name] = SpanStats()
            stats.observe(end - start)
            if self.keep_spans:
                if len(self._spans) < self.max_spans:
                    self._spans.append(
                        Span(name, resource, start, end, depth,
                             threading.get_ident())
                    )
                else:
                    self.dropped_spans += 1

    def record(
        self,
        name: str,
        start: float,
        end: float,
        resource: Optional[str] = None,
        depth: int = 0,
    ) -> None:
        """Record an externally-timed span (epoch-relative seconds)."""
        if not self.enabled:
            return
        self._record_span(name, resource or self.DEFAULT_RESOURCE,
                          start, end, depth)

    def add(self, name: str, seconds: float) -> None:
        """Accumulate into the aggregates without a timeline span."""
        if not self.enabled:
            return
        with self._lock:
            stats = self._agg.get(name)
            if stats is None:
                stats = self._agg[name] = SpanStats()
            stats.observe(seconds)

    def reset(self) -> None:
        with self._lock:
            self._spans.clear()
            self._agg.clear()
            self.dropped_spans = 0
            self._t0 = time.perf_counter()

    # -- aggregate queries -------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def aggregate(self, prefix: str = "") -> Dict[str, SpanStats]:
        """Per-name stats; ``prefix`` filters names (e.g. ``"task_"``)."""
        with self._lock:
            return {
                k: SpanStats(v.total, v.count, v.min, v.max)
                for k, v in self._agg.items()
                if k.startswith(prefix)
            }

    def total(self, name: str) -> float:
        with self._lock:
            stats = self._agg.get(name)
            return stats.total if stats else 0.0

    def count(self, name: str) -> int:
        with self._lock:
            stats = self._agg.get(name)
            return stats.count if stats else 0

    @property
    def totals(self) -> Dict[str, float]:
        with self._lock:
            return {k: v.total for k, v in self._agg.items()}

    @property
    def counts(self) -> Dict[str, int]:
        with self._lock:
            return {k: v.count for k, v in self._agg.items()}

    def busy_by_resource(self) -> Dict[str, float]:
        """Busy seconds per resource row (top-level spans only, so nested
        kernel spans don't double-count their parent's window)."""
        out: Dict[str, float] = {}
        with self._lock:
            for s in self._spans:
                if s.depth == 0:
                    out[s.resource] = out.get(s.resource, 0.0) + s.duration
        return out

    def window(self) -> float:
        """Wall-clock extent of the recorded timeline."""
        with self._lock:
            if not self._spans:
                return 0.0
            return max(s.end for s in self._spans) - min(
                s.start for s in self._spans
            )

    # -- export ------------------------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """Chrome-trace/Perfetto ``traceEvents`` JSON object.

        Resources map to trace *processes* and recording threads to trace
        *threads*, so Perfetto renders one row group per resource with
        correct nesting of hierarchical spans.
        """
        events: List[dict] = []
        pids: Dict[str, int] = {}
        with self._lock:
            snapshot = list(self._spans)
        for s in snapshot:
            pid = pids.get(s.resource)
            if pid is None:
                pid = pids[s.resource] = len(pids) + 1
                events.append({
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": s.resource},
                })
            events.append({
                "name": s.name,
                "cat": s.resource,
                "ph": "X",
                "ts": s.start * 1e6,
                "dur": s.duration * 1e6,
                "pid": pid,
                "tid": s.thread % 2**31,
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh)
        return path

    def render_ascii(self, width: int = 100) -> str:
        """ASCII swimlane of the captured timeline (Figs. 10/16 style)."""
        return render_timeline(self.spans, width=width)


def render_timeline(
    spans: Sequence,
    width: int = 100,
    resources: Optional[List[str]] = None,
) -> str:
    """ASCII swimlane rendering of a captured timeline.

    Each row is a resource; ``#`` marks busy time.  Accepts any span
    objects with ``resource``/``start``/``end`` attributes (both
    :class:`Span` and the legacy ``gpu.timeline.TimelineSpan``).
    """
    if not spans:
        return "(empty timeline)"
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    total = max(t1 - t0, 1e-9)
    if resources is None:
        resources = sorted({s.resource for s in spans})
    name_w = max(len(r) for r in resources) + 1
    lines = []
    scale = width / total
    for r in resources:
        row = [" "] * width
        for s in spans:
            if s.resource != r:
                continue
            a = int((s.start - t0) * scale)
            b = max(a + 1, int((s.end - t0) * scale))
            for i in range(a, min(b, width)):
                row[i] = "#"
        lines.append(f"{r:<{name_w}}|{''.join(row)}|")
    lines.append(f"{'':<{name_w}} 0{'':{width - 10}}{total * 1000:.1f} ms")
    return "\n".join(lines)
