"""Serializable campaign description + the lane-shard planner.

A :class:`CampaignSpec` is the *whole* contract between the coordinator
and its worker processes: plain picklable data (a bundled design name or
raw Verilog text, batch geometry, executor kind, fault/checkpoint
options) from which every worker rebuilds its own compiled design.
Nothing compiled ever crosses a process boundary — kernels are plain
Python functions created by ``exec`` and cannot be pickled, and spawn
(the portable, fork-safety-free start method) would reject them anyway.

:func:`plan_shards` carves the batch's lane axis into shards.  Shards
deliberately outnumber workers (default 4x oversubscription) so the
work-queue scheduler keeps every worker busy even when shards finish at
different speeds — one slow shard delays only itself, not the campaign.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import asdict, dataclass, field
from typing import List, Optional, Tuple

from repro.utils.errors import ClusterError

__all__ = ["CampaignSpec", "ShardSpec", "plan_shards", "DEFAULT_OVERSUBSCRIPTION"]

# Shards per worker when no explicit --shard-lanes is given: enough
# slack for dynamic load balancing, few enough that per-shard setup
# (simulator construction, stimulus slicing) stays negligible.
DEFAULT_OVERSUBSCRIPTION = 4


@dataclass(frozen=True)
class ShardSpec:
    """One contiguous lane range [lo, hi) of the campaign batch."""

    id: int
    lo: int
    hi: int

    @property
    def n(self) -> int:
        return self.hi - self.lo


@dataclass
class CampaignSpec:
    """Everything a worker needs to rebuild and run one campaign.

    Exactly one of ``design`` (a bundled design name, see
    ``repro designs``) or ``source``+``top`` (raw Verilog) must be set.
    ``lane_faults`` are ``(cycle, global_lane, reason)`` triples — the
    coordinator routes each to the shard owning that lane, where it is
    re-based to the shard-local lane index.

    Workers regenerate stimulus from ``seed`` (the bundle's stimulus
    recipe, or ``RTLFlow.random_stimulus`` for raw sources) and slice
    their own lane range, so a sharded campaign consumes lane-for-lane
    the same stimulus as a single-process run.  Explicit stimulus objects
    are instead sliced by the coordinator and shipped with each task (see
    ``CampaignCoordinator``).
    """

    n: int
    cycles: int
    design: Optional[str] = None
    source: Optional[str] = None
    top: Optional[str] = None
    seed: int = 0
    executor: str = "graph"
    watch: Optional[List[str]] = None
    stop: Optional[str] = None
    stop_mode: str = "all"
    stop_check_every: int = 16
    trace_every: int = 0
    fault_isolation: bool = False
    lane_faults: List[Tuple[int, int, str]] = field(default_factory=list)
    coverage: bool = False
    coverage_ports_only: bool = False
    checkpoint_every: Optional[int] = None
    checkpoint_every_seconds: Optional[float] = None
    # Re-verify the compiled IR in every worker (repro.verify) before
    # serving shards, and fail the campaign on any verifier error.
    # Workers rebuild the design independently; this catches a worker
    # whose rebuild produced corrupt IR, not just a bad input design.
    verify: bool = False
    # Lowering backend every worker rebuilds (see repro.backends).
    # Part of the signature: shard results from different lowerings are
    # bit-identical by contract but must never silently mix on resume.
    backend: str = "numpy"

    def validate(self) -> None:
        if self.n <= 0:
            raise ClusterError(f"campaign batch size must be positive, got {self.n}")
        if self.cycles <= 0:
            raise ClusterError(f"campaign cycles must be positive, got {self.cycles}")
        if (self.design is None) == (self.source is None):
            raise ClusterError(
                "set exactly one of spec.design (bundled name) or "
                "spec.source+spec.top (raw Verilog)"
            )
        if self.source is not None and not self.top:
            raise ClusterError("spec.source requires spec.top")
        for cycle, lane, _reason in self.lane_faults:
            if not (0 <= lane < self.n):
                raise ClusterError(
                    f"lane fault targets lane {lane}, outside batch of {self.n}"
                )
            if cycle < 0:
                raise ClusterError(f"lane fault cycle must be >= 0, got {cycle}")
        # Local import: repro.backends pulls in the codegen stack, which
        # spec construction/pickling must not depend on.
        from repro.backends import BACKENDS

        if self.backend not in BACKENDS:
            raise ClusterError(
                f"unknown backend {self.backend!r}; known backends: "
                + ", ".join(sorted(BACKENDS))
            )
        if self.backend != "numpy" and self.executor not in (
            "graph-fused", "fused"
        ):
            raise ClusterError(
                f"backend {self.backend!r} requires executor='graph-fused', "
                f"got {self.executor!r}"
            )

    def signature(self) -> str:
        """Fingerprint tying durable shard results to this exact campaign.

        Covers every field that changes simulation results, so a
        ``--resume`` can never silently mix persisted shard results from
        a different design, seed, geometry or fault script.
        """
        payload = asdict(self)
        payload["lane_faults"] = sorted(
            (int(c), int(l), str(r)) for c, l, r in self.lane_faults
        )
        h = hashlib.sha256()
        for key in sorted(payload):
            h.update(f"{key}={payload[key]!r};".encode())
        return h.hexdigest()

    def shard_signature(self, shard: ShardSpec) -> str:
        """Content address of one shard's result, independent of the
        rest of the campaign.

        Like :meth:`signature` this covers every result-affecting field
        (design text/digest, seed, cycles, batch width ``n`` — lane
        stimulus is sliced out of the full ``n``-wide batch, so it is
        part of the content — executor, backend, stop/trace options),
        but it replaces the *global* ``lane_faults`` list with the lane
        range ``[lo, hi)`` plus only the faults re-based into that
        range.  Two campaigns that differ only in faults targeting
        *other* shards therefore share this shard's key — the property
        the content-addressed result store exploits to re-simulate only
        the shards an edited campaign actually changed.
        """
        payload = asdict(self)
        del payload["lane_faults"]
        payload["shard_range"] = (shard.lo, shard.hi)
        payload["shard_faults"] = sorted(
            (int(c), int(l), str(r)) for c, l, r in self.shard_faults(shard)
        )
        h = hashlib.sha256()
        for key in sorted(payload):
            h.update(f"{key}={payload[key]!r};".encode())
        return h.hexdigest()

    def shard_faults(self, shard: ShardSpec) -> List[Tuple[int, int, str]]:
        """This shard's lane faults, re-based to shard-local lane indices."""
        return [
            (cycle, lane - shard.lo, reason)
            for cycle, lane, reason in self.lane_faults
            if shard.lo <= lane < shard.hi
        ]


def plan_shards(
    n: int,
    workers: int,
    shard_lanes: Optional[int] = None,
    oversubscription: int = DEFAULT_OVERSUBSCRIPTION,
) -> List[ShardSpec]:
    """Split ``n`` lanes into contiguous shards for ``workers`` processes.

    With an explicit ``shard_lanes``, shards are that many lanes (the
    last one smaller).  Otherwise the planner sizes shards dynamically:
    about ``workers * oversubscription`` shards, so the work queue always
    holds spare shards for whichever worker frees up first.
    """
    if n <= 0:
        raise ClusterError(f"cannot shard a batch of {n} lanes")
    if workers <= 0:
        raise ClusterError(f"worker count must be positive, got {workers}")
    if shard_lanes is None:
        shard_lanes = max(1, math.ceil(n / (workers * max(1, oversubscription))))
    if shard_lanes <= 0:
        raise ClusterError(f"shard_lanes must be positive, got {shard_lanes}")
    shards = []
    for k, lo in enumerate(range(0, n, shard_lanes)):
        shards.append(ShardSpec(id=k, lo=lo, hi=min(lo + shard_lanes, n)))
    # Tiling invariant: the shards must cover [0, n) exactly, gapless and
    # non-overlapping — a ragged final shard (shard_lanes not dividing n)
    # included.  The merge layer assumes this; a planner regression here
    # would otherwise surface as silently missing or duplicated lanes.
    if (shards[0].lo != 0 or shards[-1].hi != n
            or any(a.hi != b.lo for a, b in zip(shards, shards[1:]))):
        raise ClusterError(
            f"internal error: shard plan does not tile [0, {n}): "
            + ", ".join(f"[{s.lo},{s.hi})" for s in shards[:8])
        )
    return shards
