"""Merging per-shard payloads into one campaign-level result.

Lanes share no state, so the merge is exact, not approximate:

* **Outputs** — each shard's final values (or sampled traces) land in
  their own lane slice of a campaign-shaped array; the assembled arrays
  are bit-identical per lane to a single-process run.
* **Faults** — shard-local lane indices re-base to global lanes and sort
  into (cycle, lane) order, the same canonical order
  :func:`repro.resilience.faults.merge_fault_lists` uses.
* **Coverage** — shard reports fold with
  :meth:`~repro.coverage.toggle.CoverageReport.merge_lanes` (cycles max,
  lanes add) so merged shard coverage equals whole-batch coverage.
* **Metrics** — per-worker registry dumps rebuild and aggregate through
  :meth:`~repro.obs.metrics.MetricsRegistry.merge` (counters add, e.g.
  ``sim.cycles`` sums to the campaign total).
* **Traces** — worker spans replay into the campaign tracer on
  ``shardNN:`` resource rows, re-based onto the coordinator's clock, so
  one Perfetto export shows every worker's timeline side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.spec import CampaignSpec
from repro.coverage.toggle import CoverageReport
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.utils.errors import ClusterError

__all__ = ["ShardOutcome", "CampaignResult", "merge_payloads"]


@dataclass
class ShardOutcome:
    """Bookkeeping for one shard's execution (not its data)."""

    id: int
    lo: int
    hi: int
    attempts: int = 1
    cycles_run: int = 0
    resumed_from: int = 0
    wall_seconds: float = 0.0
    pid: Optional[int] = None
    cached: bool = False  # loaded from a persisted result on --resume
    cache_hit: bool = False  # served from the content-addressed store

    def to_dict(self) -> dict:
        return {
            "id": self.id, "lo": self.lo, "hi": self.hi,
            "attempts": self.attempts, "cycles_run": self.cycles_run,
            "resumed_from": self.resumed_from,
            "wall_seconds": self.wall_seconds, "pid": self.pid,
            "cached": self.cached, "cache_hit": self.cache_hit,
        }


@dataclass
class CampaignResult:
    """One campaign's merged, campaign-shaped result."""

    spec: CampaignSpec
    outputs: Dict[str, np.ndarray]
    faults: List[dict]
    coverage: Optional[CoverageReport]
    metrics: MetricsRegistry
    tracer: Tracer
    shards: List[ShardOutcome] = field(default_factory=list)
    restarts: int = 0
    workers: int = 0
    wall_seconds: float = 0.0

    @property
    def faulted_lanes(self) -> List[int]:
        return [f["lane"] for f in self.faults]

    def fault_report(self) -> dict:
        """Same shape as ``LaneQuarantine.report()``, campaign-wide."""
        return {
            "n": self.spec.n,
            "active_lanes": self.spec.n - len(self.faults),
            "faulted_lanes": self.faulted_lanes,
            "faults": list(self.faults),
        }

    def summary(self) -> str:
        lines = [
            f"campaign: {self.spec.n} lanes x {self.spec.cycles} cycles in "
            f"{len(self.shards)} shards on {self.workers} workers "
            f"({self.wall_seconds:.2f}s wall, {self.restarts} restarts)"
        ]
        if self.faults:
            lines.append(
                f"quarantined {len(self.faults)}/{self.spec.n} lanes"
            )
        if self.coverage is not None:
            lines.append(self.coverage.summary())
        return "\n".join(lines)


def _merge_outputs(
    spec: CampaignSpec, payloads: List[dict]
) -> Dict[str, np.ndarray]:
    """Assemble per-shard output arrays into campaign-shaped arrays."""
    if not payloads:
        return {}
    names = list(payloads[0]["outputs"])
    merged: Dict[str, np.ndarray] = {}
    for name in names:
        parts = [(p["shard"], p["outputs"][name]) for p in payloads]
        first = np.asarray(parts[0][1])
        if first.ndim == 1:
            out = np.empty(spec.n, dtype=first.dtype)
        else:
            samples = {np.asarray(a).shape[0] for _s, a in parts}
            if len(samples) != 1:
                raise ClusterError(
                    f"shards disagree on trace sample count for {name!r}: "
                    f"{sorted(samples)} (early-stop shards cannot be merged "
                    "with trace_every)"
                )
            out = np.empty((samples.pop(), spec.n), dtype=first.dtype)
        for (_sid, lo, hi), arr in parts:
            if first.ndim == 1:
                out[lo:hi] = arr
            else:
                out[:, lo:hi] = arr
        merged[name] = out
    return merged


def _merge_faults(payloads: List[dict]) -> List[dict]:
    out: List[dict] = []
    for p in payloads:
        _sid, lo, _hi = p["shard"]
        for f in p["faults"]:
            g = dict(f)
            g["lane"] = int(f["lane"]) + lo
            out.append(g)
    out.sort(key=lambda f: (f["cycle"], f["lane"]))
    return out


def _merge_coverage(payloads: List[dict]) -> Optional[CoverageReport]:
    reports = [p["coverage"] for p in payloads if p.get("coverage") is not None]
    if not reports:
        return None
    merged = reports[0]
    for r in reports[1:]:
        merged = merged.merge_lanes(r)
    return merged


def _merge_metrics(payloads: List[dict], into: MetricsRegistry) -> MetricsRegistry:
    for p in payloads:
        into.merge(MetricsRegistry.from_dump(p["metrics"]))
    return into


def _merge_spans(payloads: List[dict], tracer: Tracer) -> int:
    """Replay worker spans into ``tracer`` on per-shard resource rows.

    Worker span times are relative to the worker tracer's epoch;
    ``perf_counter`` is CLOCK_MONOTONIC-backed, so re-basing by the epoch
    delta aligns every worker onto the coordinator's clock (best-effort:
    a platform with per-process counters still merges, just unaligned).
    """
    base = getattr(tracer, "_t0", 0.0)
    merged = 0
    for p in payloads:
        sid = p["shard"][0]
        offset = p.get("epoch", base) - base
        for name, resource, start, end, depth in p.get("spans", ()):
            tracer.record(
                name, start + offset, end + offset,
                resource=f"shard{sid:02d}:{resource}", depth=depth,
            )
            merged += 1
    return merged


def merge_payloads(
    spec: CampaignSpec,
    payloads: List[dict],
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> CampaignResult:
    """Merge every shard payload into one :class:`CampaignResult`.

    ``payloads`` must cover the campaign's lanes exactly once; the merge
    validates coverage of the lane axis rather than trusting the
    scheduler (a lost shard must fail loudly, not zero-fill).

    Every payload must also carry this campaign's exact
    :meth:`~repro.cluster.spec.CampaignSpec.signature` — results
    produced under a different spec (design, seed, cycles, backend, ...)
    are rejected up front with a clear error instead of surfacing later
    as a numpy shape mismatch (or worse, merging cleanly into silently
    wrong lanes when the shapes happen to agree).
    """
    expected_sig = spec.signature()
    bad_sigs = sorted(
        {str(p.get("signature"))[:12] for p in payloads
         if p.get("signature") != expected_sig}
    )
    if bad_sigs:
        raise ClusterError(
            "shard results were produced under mismatched campaign "
            f"signatures: expected {expected_sig[:12]}..., got "
            + ", ".join(f"{s}..." for s in bad_sigs)
            + " (design/seed/cycles/backend or fault script changed); "
            "refusing to merge results from different campaigns"
        )
    payloads = sorted(payloads, key=lambda p: p["shard"][1])
    covered = 0
    for p in payloads:
        _sid, lo, hi = p["shard"]
        if lo != covered:
            raise ClusterError(
                f"shard results do not tile the batch: expected lane {covered}, "
                f"got shard [{lo}, {hi})"
            )
        covered = hi
    if covered != spec.n:
        raise ClusterError(
            f"shard results cover {covered} lanes of {spec.n}"
        )
    metrics = metrics if metrics is not None else MetricsRegistry(enabled=True)
    tracer = tracer if tracer is not None else Tracer(enabled=True)
    result = CampaignResult(
        spec=spec,
        outputs=_merge_outputs(spec, payloads),
        faults=_merge_faults(payloads),
        coverage=_merge_coverage(payloads),
        metrics=_merge_metrics(payloads, metrics),
        tracer=tracer,
    )
    _merge_spans(payloads, tracer)
    return result
