"""Sharded multi-process campaign runner with crash recovery.

The paper scales the *stimulus* axis on one GPU (up to 65536 lanes);
this package scales the *host* axis: a campaign's lane range is carved
into shards (:func:`plan_shards`), each shard runs in its own
spawn-started worker process against a design rebuilt from a picklable
:class:`CampaignSpec`, and the per-shard outputs, toggle coverage, lane
faults, metrics and trace spans merge back into one campaign-level
:class:`CampaignResult` — bit-identical per lane to a single-process
:meth:`BatchSimulator.run <repro.core.simulator.BatchSimulator.run>`
(lanes share no state, so sharding is exact, not approximate).

Crash recovery reuses PR 4's resilience layer per shard: every shard
checkpoints into its own directory, a SIGKILLed worker's shard restarts
from that checkpoint on a fresh worker, and completed shard results
persist atomically so a killed *coordinator* resumes without redoing
finished work.  See docs/cluster.md and the ``repro campaign`` CLI.
"""

from repro.cluster.coordinator import CampaignCoordinator, run_campaign
from repro.cluster.merge import CampaignResult, ShardOutcome, merge_payloads
from repro.cluster.spec import (
    DEFAULT_OVERSUBSCRIPTION,
    CampaignSpec,
    ShardSpec,
    plan_shards,
)
from repro.utils.errors import ClusterError

__all__ = [
    "CampaignCoordinator",
    "CampaignResult",
    "CampaignSpec",
    "ClusterError",
    "DEFAULT_OVERSUBSCRIPTION",
    "ShardOutcome",
    "ShardSpec",
    "merge_payloads",
    "plan_shards",
    "run_campaign",
]
