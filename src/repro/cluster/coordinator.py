"""The campaign coordinator: shard scheduling, liveness, crash recovery.

The coordinator owns a pool of spawn-started worker processes and a
work queue of lane shards (more shards than workers — see
:func:`~repro.cluster.spec.plan_shards`).  Shards are dispatched to
whichever worker frees up first, so a slow shard never staggers the
rest of the campaign behind it.

Failure handling, layered on PR 4's resilience machinery:

* **Worker death** (SIGKILL, OOM, segfault): detected by process exit
  while a shard is in flight.  The shard is re-queued and a fresh worker
  is spawned; the retry resumes from the shard's own durable
  :class:`~repro.resilience.CheckpointManager` checkpoint when one
  exists (from scratch otherwise — same merged result either way, the
  checkpoint only saves recomputation).  A shard that keeps killing its
  workers exhausts ``max_restarts`` and fails the campaign.
* **Worker silence**: heartbeats ride the shared result queue; an
  optional ``heartbeat_timeout`` declares a silent worker dead and
  forcibly terminates it (off by default — process death detection is
  the primary signal).
* **Coordinator death**: each completed shard's payload is persisted
  atomically under ``checkpoint_dir`` (``result-shard-NNNN.pkl``);
  ``resume=True`` reloads completed shards instantly and restarts only
  unfinished ones from their shard checkpoints.  Persisted results are
  tied to the campaign's :meth:`~repro.cluster.spec.CampaignSpec.signature`
  so a changed spec can never silently mix stale lanes in.
* **Deterministic worker errors** (bad design, simulation error): fail
  the campaign immediately — rerunning a deterministic failure burns
  restarts without changing the outcome.

Caveat (documented in docs/cluster.md): with ``spec.coverage`` enabled,
retried/resumed shards rerun from cycle 0 instead of their checkpoint —
toggle-coverage state is not checkpointed, and a partial rerun would
undercount the merged report.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as queue_mod
import time
from collections import deque
from typing import Dict, List, Optional

from repro import obs
from repro.cluster.merge import CampaignResult, ShardOutcome, merge_payloads
from repro.cluster.spec import CampaignSpec, ShardSpec, plan_shards
from repro.cluster.worker import PAYLOAD_SCHEMA, run_shard_inline, worker_main
from repro.resilience.checkpoint import atomic_write_bytes
from repro.utils.errors import ClusterError

__all__ = ["CampaignCoordinator", "run_campaign"]

_POLL_S = 0.1


class _Worker:
    """Coordinator-side handle for one worker process."""

    __slots__ = ("id", "process", "task_q", "current", "last_seen")

    def __init__(self, id: int, process, task_q):
        self.id = id
        self.process = process
        self.task_q = task_q
        self.current: Optional[dict] = None  # in-flight task, if any
        self.last_seen = time.monotonic()


class CampaignCoordinator:
    """Splits one campaign into lane shards and runs them out of process.

    ``stimulus`` may be an explicit batch (``StimulusBatch`` or, for the
    no-decode handoff, ``TextStimulusBatch``); the coordinator slices it
    per shard with ``.lanes(lo, hi)`` and ships the slice inside the task
    message.  Without it, workers regenerate stimulus from the spec's
    seed and slice locally.

    ``workers=0`` runs every shard inline in this process (no
    multiprocessing; crash injection is ignored) — the same code path
    end to end, handy for debugging and deterministic tests.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        workers: int = 2,
        shard_lanes: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        stimulus=None,
        inject_worker_crash: Optional[Dict[int, int]] = None,
        heartbeat_seconds: float = 0.5,
        heartbeat_timeout: Optional[float] = None,
        max_restarts: int = 3,
        start_method: str = "spawn",
        metrics=None,
        tracer=None,
        store=None,
    ):
        spec.validate()
        if workers < 0:
            raise ClusterError(f"worker count must be >= 0, got {workers}")
        if resume and not checkpoint_dir:
            raise ClusterError("resume=True requires a checkpoint_dir")
        if stimulus is not None and getattr(stimulus, "n", spec.n) != spec.n:
            raise ClusterError(
                f"explicit stimulus has {stimulus.n} lanes, spec expects {spec.n}"
            )
        self.spec = spec
        self.workers = workers
        self.shards = plan_shards(spec.n, max(1, workers), shard_lanes)
        self.checkpoint_dir = (
            os.path.abspath(checkpoint_dir) if checkpoint_dir else None
        )
        self.resume = resume
        self.stimulus = stimulus
        self.inject_worker_crash = dict(inject_worker_crash or {})
        self.heartbeat_seconds = heartbeat_seconds
        self.heartbeat_timeout = heartbeat_timeout
        self.max_restarts = max_restarts
        self.start_method = start_method
        self.metrics = metrics
        self.tracer = tracer
        # Content-addressed result store (repro.serve.store.ResultStore
        # or a directory path): shards whose content key is already in
        # the store are adopted instead of simulated, and every freshly
        # simulated shard is published back for future campaigns.
        if isinstance(store, str):
            from repro.serve.store import ResultStore

            store = ResultStore(store)
        self.store = store
        self.restarts = 0
        self._outcomes: Dict[int, ShardOutcome] = {
            s.id: ShardOutcome(id=s.id, lo=s.lo, hi=s.hi, attempts=0)
            for s in self.shards
        }
        bad = [sid for sid in self.inject_worker_crash
               if sid not in self._outcomes]
        if bad:
            raise ClusterError(
                f"inject_worker_crash targets unknown shard(s) {bad}; "
                f"campaign has shards 0..{len(self.shards) - 1}"
            )

    # -- durable per-shard results ---------------------------------------------

    def _result_path(self, shard_id: int) -> str:
        assert self.checkpoint_dir is not None
        return os.path.join(
            self.checkpoint_dir, f"result-shard-{shard_id:04d}.pkl"
        )

    def _persist_payload(self, payload: dict) -> None:
        if self.checkpoint_dir is None:
            return
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        atomic_write_bytes(
            self._result_path(payload["shard"][0]),
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def _load_persisted(self, shard: ShardSpec) -> Optional[dict]:
        """A prior run's payload for ``shard``, if one is valid here.

        Signature mismatch is an error (the directory belongs to a
        different campaign); a geometry mismatch (same campaign, new
        ``shard_lanes``) just recomputes the shard.
        """
        path = self._result_path(shard.id)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            return None  # truncated/corrupt: recompute the shard
        if payload.get("schema") != PAYLOAD_SCHEMA:
            return None
        if payload.get("signature") != self.spec.signature():
            raise ClusterError(
                f"{path} was produced by a different campaign "
                "(design/seed/geometry/fault script changed); refusing to "
                "mix results — use a fresh --checkpoint-dir"
            )
        if tuple(payload.get("shard", ())) != (shard.id, shard.lo, shard.hi):
            return None
        return payload

    def _load_from_store(self, shard: ShardSpec):
        """Adopt ``shard``'s result from the content-addressed store.

        The stored payload may come from a *different* campaign whose
        shard content matched (that is the point of content addressing);
        :func:`~repro.serve.store.adopt_payload` re-stamps it with this
        campaign's signature after the key proves equivalence.
        """
        from repro.serve.store import adopt_payload

        payload = self.store.get(self.spec.shard_signature(shard))
        if payload is None or payload.get("schema") != PAYLOAD_SCHEMA:
            return None
        payload = adopt_payload(payload, self.spec, shard)
        self._outcomes[shard.id].cache_hit = True
        return payload

    # -- task construction -----------------------------------------------------

    def _make_task(self, shard: ShardSpec, attempt: int) -> dict:
        resume = (
            (self.resume or attempt > 0)
            and self.checkpoint_dir is not None
            and not self.spec.coverage  # coverage is not checkpointed
        )
        crash = None
        if attempt == 0:
            crash = self.inject_worker_crash.get(shard.id)
        return {
            "shard": (shard.id, shard.lo, shard.hi),
            "attempt": attempt,
            "resume": resume,
            "crash_cycle": crash,
            "stimulus": (
                self.stimulus.lanes(shard.lo, shard.hi)
                if self.stimulus is not None else None
            ),
        }

    def _worker_cfg(self) -> dict:
        return {
            "checkpoint_dir": self.checkpoint_dir,
            "heartbeat_seconds": self.heartbeat_seconds,
        }

    # -- running ---------------------------------------------------------------

    def run(self) -> CampaignResult:
        t_start = time.monotonic()
        done: Dict[int, dict] = {}
        pending: deque = deque()
        for shard in self.shards:
            payload = (
                self._load_persisted(shard)
                if (self.resume and self.checkpoint_dir) else None
            )
            if payload is None and self.store is not None:
                payload = self._load_from_store(shard)
            if payload is not None:
                done[shard.id] = payload
                out = self._outcomes[shard.id]
                out.cached = True
                out.cycles_run = payload.get("cycles_run", 0)
            else:
                pending.append((shard, 0))
        if pending:
            if self.workers == 0:
                self._run_inline(pending, done)
            else:
                self._run_pool(pending, done)
        result = self._merge(done)
        result.wall_seconds = time.monotonic() - t_start
        return result

    def _run_inline(self, pending: deque, done: Dict[int, dict]) -> None:
        cfg = self._worker_cfg()
        while pending:
            shard, attempt = pending.popleft()
            task = self._make_task(shard, attempt)
            task["crash_cycle"] = None  # never SIGKILL the caller
            payload = run_shard_inline(self.spec, task, cfg)
            self._complete(shard.id, payload, done)

    def _run_pool(self, pending: deque, done: Dict[int, dict]) -> None:
        total = len(done) + len(pending)
        ctx = mp.get_context(self.start_method)
        result_q = ctx.Queue()
        alive: Dict[int, _Worker] = {}
        spawned: List[_Worker] = []
        next_id = 0

        def spawn() -> _Worker:
            nonlocal next_id
            task_q = ctx.Queue()
            proc = ctx.Process(
                target=worker_main,
                args=(next_id, self.spec, task_q, result_q, self._worker_cfg()),
                daemon=True,
                name=f"repro-cluster-w{next_id}",
            )
            proc.start()
            w = _Worker(next_id, proc, task_q)
            alive[w.id] = w
            spawned.append(w)
            next_id += 1
            return w

        idle: deque = deque(
            spawn() for _ in range(min(self.workers, len(pending)))
        )
        try:
            while len(done) < total:
                while idle and pending:
                    w = idle.popleft()
                    shard, attempt = pending.popleft()
                    task = self._make_task(shard, attempt)
                    w.current = task
                    w.task_q.put(task)
                self._pump_messages(result_q, alive, idle, done)
                self._reap_dead(alive, idle, pending, spawn, done)
                if self.heartbeat_timeout is not None:
                    self._enforce_heartbeats(alive)
        finally:
            self._shutdown(spawned)

    def _pump_messages(self, result_q, alive, idle, done) -> None:
        """Drain the result queue: one timed get, then whatever is ready."""
        block = True
        while True:
            try:
                msg = result_q.get(timeout=_POLL_S if block else 0)
            except queue_mod.Empty:
                return
            block = False
            kind, wid = msg[0], msg[1]
            w = alive.get(wid)
            if w is not None:
                w.last_seen = time.monotonic()
            if kind == "heartbeat":
                continue
            if kind in ("ready", "started"):
                continue
            if kind == "result":
                _kind, _wid, sid, payload = msg
                if w is not None:
                    w.current = None
                    idle.append(w)
                if sid not in done:  # a re-run raced its twin: first wins
                    self._complete(sid, payload, done)
                continue
            if kind in ("error", "fatal"):
                _kind, _wid, sid, text = msg
                where = f"shard {sid}" if sid is not None else "startup"
                raise ClusterError(
                    f"worker {wid} failed deterministically at {where}: {text}"
                )

    def _reap_dead(self, alive, idle, pending, spawn, done) -> None:
        for wid in [w for w in alive if alive[w].process.exitcode is not None]:
            w = alive.pop(wid)
            try:
                idle.remove(w)
            except ValueError:
                pass
            task = w.current
            if task is not None:
                sid = task["shard"][0]
                if sid not in done:
                    attempt = task["attempt"] + 1
                    if attempt > self.max_restarts:
                        raise ClusterError(
                            f"shard {sid} killed {attempt} worker(s) "
                            f"(max_restarts={self.max_restarts}); giving up"
                        )
                    shard = self.shards[sid]
                    pending.appendleft((shard, attempt))
                    self.restarts += 1
            if pending:
                idle.append(spawn())

    def _enforce_heartbeats(self, alive) -> None:
        now = time.monotonic()
        for w in alive.values():
            if (
                w.current is not None
                and now - w.last_seen > self.heartbeat_timeout
            ):
                # Silent but alive: force the crash path to reclaim the
                # shard (the reap on the next loop iteration requeues it).
                w.process.terminate()

    def _complete(self, shard_id: int, payload: dict, done: Dict[int, dict]):
        if payload.get("signature") != self.spec.signature():
            raise ClusterError(
                f"shard {shard_id} returned a result for a different "
                "campaign signature"
            )
        done[shard_id] = payload
        self._persist_payload(payload)
        if self.store is not None:
            self.store.put(
                self.spec.shard_signature(self.shards[shard_id]), payload
            )
        out = self._outcomes[shard_id]
        out.attempts = payload.get("attempt", 0) + 1
        out.cycles_run = payload.get("cycles_run", 0)
        out.resumed_from = payload.get("resumed_from", 0)
        out.wall_seconds = payload.get("wall_seconds", 0.0)
        out.pid = payload.get("pid")

    def _shutdown(self, spawned: List[_Worker]) -> None:
        for w in spawned:
            if w.process.exitcode is None:
                try:
                    w.task_q.put(None)
                except Exception:
                    pass
        deadline = time.monotonic() + 5.0
        for w in spawned:
            w.process.join(timeout=max(0.1, deadline - time.monotonic()))
        for w in spawned:
            if w.process.exitcode is None:
                w.process.terminate()
                w.process.join(timeout=1.0)
            if w.process.exitcode is None:
                w.process.kill()

    # -- merging ---------------------------------------------------------------

    def _merge(self, done: Dict[int, dict]) -> CampaignResult:
        result = merge_payloads(
            self.spec, list(done.values()),
            metrics=self.metrics, tracer=self.tracer,
        )
        result.shards = [self._outcomes[s.id] for s in self.shards]
        result.restarts = self.restarts
        result.workers = self.workers
        m = result.metrics
        m.set_gauge("cluster.workers", self.workers)
        m.set_gauge("cluster.shards", len(self.shards))
        m.set_gauge("cluster.lanes", self.spec.n)
        if self.restarts:
            m.inc("cluster.worker_restarts", self.restarts)
        cached = sum(1 for o in result.shards if o.cached and not o.cache_hit)
        if cached:
            m.inc("cluster.shards_resumed_from_results", cached)
        if self.store is not None:
            hits = sum(1 for o in result.shards if o.cache_hit)
            m.inc("cluster.store_hits", hits)
            m.inc("cluster.store_misses", len(self.shards) - hits)
            m.set_gauge(
                "cluster.store_hit_rate", hits / max(1, len(self.shards))
            )
        for o in result.shards:
            if not o.cached:
                m.observe("cluster.shard_wall_seconds", o.wall_seconds)
        # Forward into the session telemetry (the CLI's --metrics-json /
        # --trace-json capture) when it is listening.
        session = obs.get_metrics()
        if session.enabled and session is not m:
            session.merge(m)
        gt = obs.get_tracer()
        if gt.enabled and gt is not result.tracer:
            for s in result.tracer.spans:
                gt.record(s.name, s.start, s.end,
                          resource=s.resource, depth=s.depth)
        return result


def run_campaign(spec: CampaignSpec, **kwargs) -> CampaignResult:
    """Build a :class:`CampaignCoordinator` and run it (one-call API)."""
    return CampaignCoordinator(spec, **kwargs).run()
