"""The shard worker process (spawn-safe entry point).

Each worker rebuilds its compiled design **once** from the picklable
:class:`~repro.cluster.spec.CampaignSpec` (parse → elaborate → transpile
→ compile; no kernel objects cross the process boundary), then serves
shards from its task queue until it receives the ``None`` sentinel.

Per shard, the worker:

* slices its lane range out of the campaign stimulus (regenerated from
  the spec's seed, or shipped pre-sliced with the task for explicit
  stimulus),
* runs a shard-sized :class:`~repro.core.simulator.BatchSimulator` under
  its own :class:`~repro.resilience.CheckpointManager` (directory
  ``<checkpoint_dir>/shard-NNNN``) so a crashed shard resumes from its
  own durable snapshot,
* emits heartbeats through the shared result queue from the simulator's
  per-cycle ``progress`` hook (the coordinator's liveness signal), and
* returns outputs, shard-local lane faults, toggle coverage, a metrics
  dump and trace spans as one plain-data payload.

Crash injection for tests/CI rides the same ``progress`` hook: a task
carrying ``crash_cycle`` SIGKILLs its own process after that cycle —
a real, unhandled worker death, not an exception.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Optional

from repro import obs
from repro.cluster.spec import CampaignSpec, ShardSpec
from repro.core.simulator import BatchSimulator
from repro.coverage.collector import CoverageCollector
from repro.resilience.checkpoint import CheckpointManager, CheckpointPolicy
from repro.resilience.inject import FaultPlan, LaneFaultSpec
from repro.utils.errors import CheckpointError

__all__ = ["worker_main", "run_shard_inline"]

PAYLOAD_SCHEMA = 1


class _Heartbeat:
    """Rate-limited liveness pings through the shared result queue."""

    def __init__(self, result_q, worker_id: int, shard_id: int, every_s: float):
        self.result_q = result_q
        self.worker_id = worker_id
        self.shard_id = shard_id
        self.every_s = every_s
        self._last = time.monotonic()
        self.sent = 0

    def tick(self, cycles_done: int) -> None:
        now = time.monotonic()
        if now - self._last >= self.every_s:
            self._last = now
            self.sent += 1
            self.result_q.put(
                ("heartbeat", self.worker_id, self.shard_id, cycles_done, now)
            )


class _WorkerContext:
    """One worker's long-lived state: compiled model + cached stimulus."""

    def __init__(self, worker_id: int, spec: CampaignSpec, result_q, cfg: dict):
        self.worker_id = worker_id
        self.spec = spec
        self.result_q = result_q
        self.cfg = cfg
        self.bundle = None
        # Lint already ran (or was waived) wherever the spec was built;
        # re-linting identical source in every worker is pure overhead.
        from repro.core.flow import RTLFlow

        if spec.design is not None:
            from repro.designs import get_design

            self.bundle = get_design(spec.design)
            self.flow = RTLFlow.from_source(
                self.bundle.source, self.bundle.top, lint=False
            )
        else:
            self.flow = RTLFlow.from_source(spec.source, spec.top, lint=False)
        self.model = self.flow.compile()
        if spec.verify:
            from repro.utils.errors import ClusterError
            from repro.verify import verify_model

            name = spec.design or spec.top or "<source>"
            report = verify_model(self.model, filename=f"<design:{name}>")
            if report.errors:
                raise ClusterError(
                    f"worker {worker_id}: verifier rejected the rebuilt "
                    f"model for {name}: "
                    + "; ".join(d.message for d in report.errors[:3])
                    + (f" (+{len(report.errors) - 3} more)"
                       if len(report.errors) > 3 else "")
                )
        self._full_stimulus = None

    def full_stimulus(self):
        """The whole-campaign stimulus, regenerated from the spec's seed.

        Generated once per worker and sliced per shard: generation is
        deterministic in the seed, so every worker (and a single-process
        run) sees lane-for-lane identical stimulus.
        """
        if self._full_stimulus is None:
            spec = self.spec
            if self.bundle is not None:
                self._full_stimulus = self.bundle.make_stimulus(
                    spec.n, spec.cycles, spec.seed
                )
            else:
                self._full_stimulus = self.flow.random_stimulus(
                    spec.n, spec.cycles, seed=spec.seed
                )
        return self._full_stimulus

    def _checkpoint_manager(self, shard_id: int) -> Optional[CheckpointManager]:
        root = self.cfg.get("checkpoint_dir")
        if not root:
            return None
        policy = None
        spec = self.spec
        if spec.checkpoint_every or spec.checkpoint_every_seconds:
            policy = CheckpointPolicy(
                every_cycles=spec.checkpoint_every or None,
                every_seconds=spec.checkpoint_every_seconds or None,
            )
        return CheckpointManager(
            os.path.join(root, f"shard-{shard_id:04d}"), policy=policy
        )

    def run_shard(self, task: dict) -> dict:
        spec = self.spec
        shard = ShardSpec(*task["shard"])
        t_start = time.monotonic()
        shard_faults = spec.shard_faults(shard)
        plan = (
            FaultPlan(lane_faults=[
                LaneFaultSpec(cycle=c, lane=l, reason=r)
                for c, l, r in shard_faults
            ])
            if shard_faults else None
        )
        hb = _Heartbeat(
            self.result_q, self.worker_id, shard.id,
            self.cfg.get("heartbeat_seconds", 0.5),
        )
        crash_cycle = task.get("crash_cycle")
        with obs.capture() as (tracer, metrics):
            sim = BatchSimulator(
                self.model, shard.n, executor=spec.executor,
                fault_isolation=spec.fault_isolation or plan is not None,
                backend=getattr(spec, "backend", "numpy"),
            )
            if self.bundle is not None:
                self.bundle.preload(sim)
            stim = task.get("stimulus")
            if stim is None:
                stim = self.full_stimulus().lanes(shard.lo, shard.hi)
            mgr = self._checkpoint_manager(shard.id)
            start = 0
            if mgr is not None and task.get("resume"):
                try:
                    ckpt = mgr.load_latest()
                except CheckpointError:
                    ckpt = None  # corrupt snapshot: recompute from scratch
                if ckpt is not None:
                    sim.restore_checkpoint(ckpt)
                    start = sim.cycles_run
            cov = (
                CoverageCollector(
                    sim, include_internal=not spec.coverage_ports_only
                )
                if spec.coverage else None
            )

            def progress(cycle: int) -> None:
                if cov is not None:
                    cov.sample()
                hb.tick(sim.cycles_run)
                if crash_cycle is not None and sim.cycles_run >= crash_cycle:
                    # A genuine worker death (no cleanup, no exception):
                    # the durable checkpoint written above is all that
                    # survives, exactly like a real OOM-kill.
                    os.kill(os.getpid(), signal.SIGKILL)

            # Coverage sampling and crash injection ride the progress
            # hook and need every cycle; plain heartbeat/streaming
            # consumers may rate-limit it (the campaign service does).
            min_interval = self.cfg.get("progress_min_interval", 0.0)
            if cov is not None or crash_cycle is not None:
                min_interval = 0.0

            outputs = sim.run(
                stim,
                watch=spec.watch,
                trace_every=spec.trace_every,
                stop=spec.stop,
                stop_mode=spec.stop_mode,
                stop_check_every=spec.stop_check_every,
                checkpoint=mgr,
                fault_plan=plan,
                start_cycle=start,
                progress=progress,
                progress_min_interval=min_interval,
            )
            if mgr is not None:
                # Terminal snapshot: a coordinator killed between this
                # shard's completion and its result persisting resumes
                # here instead of recomputing the shard.
                mgr.save(sim, required=False)
        max_spans = self.cfg.get("max_spans", 20_000)
        spans = tracer.spans
        return {
            "schema": PAYLOAD_SCHEMA,
            "signature": spec.signature(),
            "shard": (shard.id, shard.lo, shard.hi),
            "attempt": task.get("attempt", 0),
            "outputs": outputs,
            # Shard-local lane indices; the merge layer re-bases to the
            # campaign's global lane space.
            "faults": (
                sim.quarantine.report()["faults"]
                if sim.quarantine is not None else []
            ),
            "coverage": cov.report() if cov is not None else None,
            "metrics": metrics.dump(),
            "spans": [
                (s.name, s.resource, s.start, s.end, s.depth)
                for s in spans[:max_spans]
            ],
            "spans_dropped": max(0, len(spans) - max_spans),
            "epoch": getattr(tracer, "_t0", 0.0),
            "cycles_run": sim.cycles_run,
            "resumed_from": start,
            "heartbeats": hb.sent,
            "wall_seconds": time.monotonic() - t_start,
            "pid": os.getpid(),
        }


def run_shard_inline(spec: CampaignSpec, task: dict, cfg: dict) -> dict:
    """Run one shard in the calling process (workers=0 debug path and
    deterministic unit tests — identical code path minus the queues)."""

    class _Sink:
        def put(self, _msg):
            pass

    ctx = _WorkerContext(-1, spec, _Sink(), cfg)
    return ctx.run_shard(task)


def worker_main(worker_id: int, spec: CampaignSpec, task_q, result_q, cfg: dict):
    """Worker process entry: build once, then serve shards until sentinel.

    A deterministic failure while running a shard is reported as an
    ``("error", ...)`` message — rerunning it would fail identically, so
    the coordinator fails the campaign instead of burning restarts.
    Construction failures (bad design text, import skew) are ``"fatal"``.
    """
    try:
        ctx = _WorkerContext(worker_id, spec, result_q, cfg)
    except BaseException as exc:  # noqa: BLE001 - must cross the process gap
        result_q.put(
            ("fatal", worker_id, None, f"{type(exc).__name__}: {exc}")
        )
        return
    result_q.put(("ready", worker_id, None, os.getpid()))
    while True:
        task = task_q.get()
        if task is None:
            break
        shard_id = task["shard"][0]
        result_q.put(
            ("started", worker_id, shard_id, task.get("attempt", 0))
        )
        try:
            payload = ctx.run_shard(task)
        except BaseException as exc:  # noqa: BLE001 - must cross the process gap
            result_q.put(
                ("error", worker_id, shard_id, f"{type(exc).__name__}: {exc}")
            )
            continue
        result_q.put(("result", worker_id, shard_id, payload))
