"""Pipeline scheduling across stimulus groups (§3.2.3)."""

from repro.pipeline.scheduler import PipelineSimulator, PipelineReport

__all__ = ["PipelineSimulator", "PipelineReport"]
