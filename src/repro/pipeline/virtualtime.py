"""Virtual-time makespan models for the pipeline experiments.

The paper measures wall clock on a 16-thread host CPU + discrete GPU; this
environment has a single CPU core, so genuine overlap between the CPU
``set_inputs`` stage and device evaluation cannot occur physically.  The
substitution (DESIGN.md §2): *measure* every stage duration by actually
executing it, then compute the schedule makespan with a discrete-event
model of the two resources —

* ``cpu_workers`` identical CPU slots for set_inputs tasks, and
* one GPU executing evaluations serially,

with the §3.2.3 dependency structure: within a group g,
``set_inputs(g,c) -> evaluate(g,c) -> set_inputs(g,c+1)``; across groups,
no dependencies (that is the whole point of the pipeline).

``makespan_pipelined`` list-schedules that DAG (work-conserving greedy —
what the Taskflow work-stealing runtime approximates); ``makespan_
sequential`` models RTLflow^-p: every cycle, all set_inputs complete
(on the worker pool) before the GPU evaluates every group.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass
class VirtualScheduleResult:
    makespan: float
    gpu_busy: float
    cpu_busy: float
    # Optional swimlane spans (resource, label, start, end) for rendering
    # the Fig. 16 style timelines.
    spans: List[Tuple[str, str, float, float]] = None  # type: ignore[assignment]

    @property
    def gpu_utilization(self) -> float:
        return min(1.0, self.gpu_busy / self.makespan) if self.makespan > 0 else 0.0


def _parallel_makespan(durations: Sequence[float], workers: int) -> float:
    """List-scheduling makespan of independent tasks on ``workers`` slots."""
    if not durations:
        return 0.0
    free = [0.0] * max(1, workers)
    heapq.heapify(free)
    for d in durations:
        t = heapq.heappop(free)
        heapq.heappush(free, t + d)
    return max(free)


def makespan_sequential(
    cpu: np.ndarray, gpu: np.ndarray, cpu_workers: int
) -> VirtualScheduleResult:
    """RTLflow^-p: per cycle, a set_inputs barrier then serial evaluation.

    ``cpu``/``gpu`` have shape (groups, cycles): measured stage durations.
    """
    groups, cycles = cpu.shape
    t = 0.0
    gpu_busy = 0.0
    spans: List[Tuple[str, str, float, float]] = []
    for c in range(cycles):
        free = [0.0] * max(1, cpu_workers)
        heapq.heapify(free)
        for g in range(groups):
            s = heapq.heappop(free)
            e = s + float(cpu[g, c])
            spans.append((f"CPU{g % cpu_workers}", f"si g{g}", t + s, t + e))
            heapq.heappush(free, e)
        t += max(free)
        for g in range(groups):
            ev = float(gpu[g, c])
            spans.append(("GPU", f"ev g{g}", t, t + ev))
            t += ev
            gpu_busy += ev
    return VirtualScheduleResult(t, gpu_busy, float(cpu.sum()), spans)


def makespan_pipelined(
    cpu: np.ndarray, gpu: np.ndarray, cpu_workers: int
) -> VirtualScheduleResult:
    """Greedy work-conserving schedule of the pipelined task DAG."""
    groups, cycles = cpu.shape
    cpu_free = [0.0] * max(1, cpu_workers)
    heapq.heapify(cpu_free)
    gpu_free = 0.0
    gpu_busy = 0.0
    spans: List[Tuple[str, str, float, float]] = []

    # ready[g] = time group g may start its next set_inputs.
    ready = [0.0] * groups
    stage = [0] * groups  # next cycle index per group
    # Event-driven: repeatedly pick the group whose next CPU task can
    # start earliest (ties broken by group id for determinism).
    pending = [(0.0, g) for g in range(groups)]
    heapq.heapify(pending)
    while pending:
        _, g = heapq.heappop(pending)
        c = stage[g]
        if c >= cycles:
            continue
        # CPU stage.
        slot = heapq.heappop(cpu_free)
        start = max(slot, ready[g])
        cpu_end = start + float(cpu[g, c])
        heapq.heappush(cpu_free, cpu_end)
        spans.append((f"CPU{g % cpu_workers}", f"si g{g} c{c}", start, cpu_end))
        # GPU stage.
        ev_start = max(gpu_free, cpu_end)
        ev_end = ev_start + float(gpu[g, c])
        spans.append(("GPU", f"ev g{g} c{c}", ev_start, ev_end))
        gpu_free = ev_end
        gpu_busy += float(gpu[g, c])
        ready[g] = ev_end
        stage[g] = c + 1
        if stage[g] < cycles:
            heapq.heappush(pending, (ready[g], g))

    makespan = max(gpu_free, max(cpu_free))
    return VirtualScheduleResult(makespan, gpu_busy, float(cpu.sum()), spans)
