"""The pipeline scheduling algorithm (§3.2.3, Fig. 11).

Batch stimulus is partitioned into *groups*; each group advances through
its own (set_inputs → evaluate) chain cycle by cycle.  Groups share no
state, so while the device evaluates group G1's cycle, CPU workers can
already be decoding and setting inputs for G2's — the inter-stimulus
parallelism that keeps the GPU from idling on the Fig. 2 bottleneck.

Concretely, one worker thread per group runs the group's chain; the
CPU-side stage is bounded by a semaphore of ``cpu_workers`` slots and the
device serializes evaluations internally (one GPU).  With ``pipeline=
False`` the scheduler degrades to the RTLflow^-p baseline of Table 5: per
cycle, set inputs for *all* groups (optionally with a thread pool — the
paper's "use OpenMP to parallelize set_inputs" fairness note), then
evaluate all groups.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.codegen import CompiledModel
from repro.core.simulator import BatchSimulator
from repro.gpu.device import SimulatedDevice
from repro.obs import get_metrics, get_tracer
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.utils.errors import SimulationError


@dataclass
class PipelineReport:
    """What one run measured (feeds Tables 5 and Figs. 2/15/16)."""

    wall_seconds: float = 0.0
    set_inputs_seconds: float = 0.0  # summed over CPU workers
    evaluate_seconds: float = 0.0  # device busy time
    gpu_utilization: float = 0.0
    groups: int = 0
    cycles: int = 0
    n: int = 0
    pipelined: bool = True
    # Filled by run_virtual(): virtual-time makespans of both schedules
    # computed from measured stage durations (see pipeline.virtualtime).
    virtual: bool = False
    pipelined_makespan: float = 0.0
    sequential_makespan: float = 0.0
    pipelined_utilization: float = 0.0
    sequential_utilization: float = 0.0
    # Measured per-(group, cycle) stage durations (set by run_virtual);
    # used to re-render the Fig. 16 timelines from real data.
    cpu_stage_seconds: Optional[np.ndarray] = None
    gpu_stage_seconds: Optional[np.ndarray] = None


class PipelineSimulator:
    """Multi-group batch simulation with optional CPU/GPU pipelining.

    ``executor`` selects each group's replay engine (same choices as
    :func:`repro.core.simulator.make_executor`, including the
    activity-aware ``"graph-conditional"``); each group gets its own
    executor instance so dirty-set state never crosses group boundaries.
    """

    def __init__(
        self,
        model: CompiledModel,
        n: int,
        groups: int = 4,
        cpu_workers: int = 4,
        executor: str = "graph",
        device: Optional[SimulatedDevice] = None,
        pipeline: bool = True,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if groups <= 0 or n % groups != 0:
            raise SimulationError(
                f"group count {groups} must divide the batch size {n}"
            )
        self.model = model
        self.n = n
        self.groups = groups
        self.group_size = n // groups
        self.cpu_workers = max(1, cpu_workers)
        self.pipeline = pipeline
        self.tracer = tracer if tracer is not None else get_tracer()
        self.metrics = metrics if metrics is not None else get_metrics()
        self.device = device or SimulatedDevice(tracer=self.tracer)
        self.sims: List[BatchSimulator] = [
            BatchSimulator(model, self.group_size, executor=executor,
                           device=self.device, tracer=self.tracer,
                           metrics=self.metrics)
            for _ in range(groups)
        ]
        self.report = PipelineReport(groups=groups, n=n, pipelined=pipeline)

    # -- state helpers ------------------------------------------------------------

    def load_memory(self, name: str, values, lane: Optional[int] = None) -> None:
        if lane is None:
            for sim in self.sims:
                sim.load_memory(name, values)
            return
        g, off = divmod(lane, self.group_size)
        self.sims[g].load_memory(name, values, lane=off)

    def get(self, name: str) -> np.ndarray:
        """Gathered batch values of a signal across all groups."""
        return np.concatenate([sim.get(name) for sim in self.sims])

    def read_memory(self, name: str, lane: int) -> np.ndarray:
        g, off = divmod(lane, self.group_size)
        return self.sims[g].read_memory(name, lane=off)

    # -- the run loop ----------------------------------------------------------------

    def run(
        self,
        stim,
        cycles: Optional[int] = None,
        watch: Optional[Sequence[str]] = None,
    ) -> Dict[str, np.ndarray]:
        """Simulate ``cycles`` of the batch stimulus; returns final values.

        ``stim`` needs ``inputs_at_range(cycle, lo, hi)`` — both
        :class:`StimulusBatch` and :class:`TextStimulusBatch` qualify.
        """
        total = cycles if cycles is not None else len(stim)
        names = list(watch) if watch is not None else [
            s.name for s in self.model.design.outputs
        ]
        self.device.reset()
        set_inputs_time = [0.0] * self.groups

        t0 = time.perf_counter()
        if self.pipeline:
            self._run_pipelined(stim, total, set_inputs_time)
        else:
            self._run_sequential(stim, total, set_inputs_time)
        wall = time.perf_counter() - t0

        r = self.report
        r.wall_seconds = wall
        r.set_inputs_seconds = sum(set_inputs_time)
        r.evaluate_seconds = self.device.stats.busy_seconds
        r.gpu_utilization = self.device.utilization(wall)
        r.cycles = total
        self._publish_metrics(r)
        return {name: self.get(name) for name in names}

    def _publish_metrics(self, r: PipelineReport) -> None:
        """Pipeline-stage metrics: overlap ratio = how much CPU input
        setting was hidden behind device evaluation this run."""
        if not self.metrics.enabled:
            return
        m = self.metrics
        m.set_gauge("pipeline.groups", r.groups)
        m.set_gauge("pipeline.cycles", r.cycles)
        m.set_gauge("pipeline.set_inputs_seconds", r.set_inputs_seconds)
        m.set_gauge("pipeline.evaluate_seconds", r.evaluate_seconds)
        m.set_gauge("pipeline.gpu_utilization", r.gpu_utilization)
        if r.wall_seconds > 0:
            stage_sum = r.set_inputs_seconds + r.evaluate_seconds
            overlap = max(0.0, stage_sum - r.wall_seconds)
            denom = min(r.set_inputs_seconds, r.evaluate_seconds)
            m.set_gauge(
                "pipeline.overlap_ratio",
                overlap / denom if denom > 0 else 0.0,
            )

    def _set_inputs_group(self, g: int, stim, cycle: int, acc: List[float]) -> None:
        lo = g * self.group_size
        hi = lo + self.group_size
        t0 = time.perf_counter()
        with self.tracer.span(f"set_inputs g{g} c{cycle}",
                              resource=f"CPU{g % self.cpu_workers}"):
            values = stim.inputs_at_range(cycle, lo, hi)
            self.sims[g].set_inputs(values)
        acc[g] += time.perf_counter() - t0

    def _evaluate_group(self, g: int, cycle: int) -> None:
        sim = self.sims[g]
        sim.set_clock(0)
        sim.evaluate()
        sim.set_clock(1)
        sim.evaluate()

    def _run_pipelined(self, stim, total: int, acc: List[float]) -> None:
        cpu_slots = threading.Semaphore(self.cpu_workers)
        # First failure wins: the stop event cancels the sibling chains at
        # their next cycle boundary instead of letting them simulate the
        # whole stimulus, and the lock keeps the error list coherent
        # (list.append is atomic today, but the ordering between append
        # and stop.set() is what the raise below relies on).
        stop = threading.Event()
        err_lock = threading.Lock()
        errors: List[BaseException] = []

        def group_chain(g: int) -> None:
            try:
                for c in range(total):
                    if stop.is_set():
                        return
                    if c < len(stim):
                        with cpu_slots:
                            self._set_inputs_group(g, stim, c, acc)
                    # The device serializes internally: this models one GPU
                    # accepting work from whichever group is ready first.
                    self._evaluate_group(g, c)
            except BaseException as exc:  # noqa: BLE001 - propagate to caller
                with err_lock:
                    errors.append(exc)
                stop.set()

        threads = [
            threading.Thread(target=group_chain, args=(g,), name=f"group{g}")
            for g in range(self.groups)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]

    def run_virtual(
        self,
        stim,
        cycles: Optional[int] = None,
        watch: Optional[Sequence[str]] = None,
    ) -> Dict[str, np.ndarray]:
        """Measure every stage, then model the schedule in virtual time.

        Executes the whole batch sequentially (results are exact), records
        each (group, cycle) set_inputs and evaluate duration, and computes
        the makespans of both the pipelined and the RTLflow^-p schedule
        with the discrete-event model in :mod:`repro.pipeline.virtualtime`.
        Used on hosts without real parallelism (see DESIGN.md §2).
        """
        from repro.pipeline.virtualtime import (
            makespan_pipelined,
            makespan_sequential,
        )

        total = cycles if cycles is not None else len(stim)
        names = list(watch) if watch is not None else [
            s.name for s in self.model.design.outputs
        ]
        self.device.reset()
        cpu_t = np.zeros((self.groups, total))
        gpu_t = np.zeros((self.groups, total))
        for c in range(total):
            for g in range(self.groups):
                if c < len(stim):
                    lo = g * self.group_size
                    t0 = time.perf_counter()
                    values = stim.inputs_at_range(c, lo, lo + self.group_size)
                    self.sims[g].set_inputs(values)
                    cpu_t[g, c] = time.perf_counter() - t0
                busy0 = self.device.stats.busy_seconds
                over0 = self.device.stats.overhead_seconds
                self._evaluate_group(g, c)
                # Device time for this evaluation: kernel busy time plus the
                # modeled launch overhead it incurred.
                gpu_t[g, c] = (
                    self.device.stats.busy_seconds - busy0
                ) + (self.device.stats.overhead_seconds - over0)
        pipe = makespan_pipelined(cpu_t, gpu_t, self.cpu_workers)
        seq = makespan_sequential(cpu_t, gpu_t, self.cpu_workers)
        r = self.report
        r.virtual = True
        r.cycles = total
        r.cpu_stage_seconds = cpu_t
        r.gpu_stage_seconds = gpu_t
        r.set_inputs_seconds = float(cpu_t.sum())
        r.evaluate_seconds = float(gpu_t.sum())
        r.pipelined_makespan = pipe.makespan
        r.sequential_makespan = seq.makespan
        r.pipelined_utilization = pipe.gpu_utilization
        r.sequential_utilization = seq.gpu_utilization
        if self.pipeline:
            r.wall_seconds = pipe.makespan
            r.gpu_utilization = pipe.gpu_utilization
        else:
            r.wall_seconds = seq.makespan
            r.gpu_utilization = seq.gpu_utilization
        self._publish_metrics(r)
        return {name: self.get(name) for name in names}

    def _run_sequential(self, stim, total: int, acc: List[float]) -> None:
        # RTLflow^-p: the GPU waits for set_inputs of the whole batch each
        # cycle.  set_inputs itself may use a thread pool (fairness).
        pool = (
            ThreadPoolExecutor(max_workers=self.cpu_workers)
            if self.cpu_workers > 1
            else None
        )
        try:
            for c in range(total):
                if c < len(stim):
                    if pool is not None:
                        futures = [
                            pool.submit(self._set_inputs_group, g, stim, c, acc)
                            for g in range(self.groups)
                        ]
                        for f in futures:
                            f.result()
                    else:
                        for g in range(self.groups):
                            self._set_inputs_group(g, stim, c, acc)
                for g in range(self.groups):
                    self._evaluate_group(g, c)
        finally:
            if pool is not None:
                pool.shutdown()
