"""The pipeline scheduling algorithm (§3.2.3, Fig. 11).

Batch stimulus is partitioned into *groups*; each group advances through
its own (set_inputs → evaluate) chain cycle by cycle.  Groups share no
state, so while the device evaluates group G1's cycle, CPU workers can
already be decoding and setting inputs for G2's — the inter-stimulus
parallelism that keeps the GPU from idling on the Fig. 2 bottleneck.

Concretely, one worker thread per group runs the group's chain; the
CPU-side stage is bounded by a semaphore of ``cpu_workers`` slots and the
device serializes evaluations internally (one GPU).  With ``pipeline=
False`` the scheduler degrades to the RTLflow^-p baseline of Table 5: per
cycle, set inputs for *all* groups (optionally with a thread pool — the
paper's "use OpenMP to parallelize set_inputs" fairness note), then
evaluate all groups.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.codegen import CompiledModel
from repro.core.simulator import BatchSimulator
from repro.gpu.device import SimulatedDevice
from repro.obs import get_metrics, get_tracer
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.resilience.faults import LaneFault, LaneQuarantine
from repro.utils.errors import CheckpointError, SimulationError


@dataclass
class PipelineReport:
    """What one run measured (feeds Tables 5 and Figs. 2/15/16)."""

    wall_seconds: float = 0.0
    set_inputs_seconds: float = 0.0  # summed over CPU workers
    evaluate_seconds: float = 0.0  # device busy time
    gpu_utilization: float = 0.0
    groups: int = 0
    cycles: int = 0
    n: int = 0
    pipelined: bool = True
    # Resilience: True when a pipelined chunk crashed and was re-executed
    # sequentially; count of lanes quarantined across all groups.
    fallback_used: bool = False
    faulted_lanes: int = 0
    # Filled by run_virtual(): virtual-time makespans of both schedules
    # computed from measured stage durations (see pipeline.virtualtime).
    virtual: bool = False
    pipelined_makespan: float = 0.0
    sequential_makespan: float = 0.0
    pipelined_utilization: float = 0.0
    sequential_utilization: float = 0.0
    # Measured per-(group, cycle) stage durations (set by run_virtual);
    # used to re-render the Fig. 16 timelines from real data.
    cpu_stage_seconds: Optional[np.ndarray] = None
    gpu_stage_seconds: Optional[np.ndarray] = None


class PipelineSimulator:
    """Multi-group batch simulation with optional CPU/GPU pipelining.

    ``executor`` selects each group's replay engine (same choices as
    :func:`repro.core.simulator.make_executor`, including the
    activity-aware ``"graph-conditional"``); each group gets its own
    executor instance so dirty-set state never crosses group boundaries.
    """

    def __init__(
        self,
        model: CompiledModel,
        n: int,
        groups: int = 4,
        cpu_workers: int = 4,
        executor: str = "graph",
        device: Optional[SimulatedDevice] = None,
        pipeline: bool = True,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        fault_isolation: bool = False,
        fallback_sequential: bool = True,
    ):
        if groups <= 0 or n % groups != 0:
            raise SimulationError(
                f"group count {groups} must divide the batch size {n}"
            )
        self.model = model
        self.n = n
        self.groups = groups
        self.group_size = n // groups
        self.cpu_workers = max(1, cpu_workers)
        self.pipeline = pipeline
        # A crashed pipelined chunk is rolled back and re-executed
        # sequentially (one group at a time); only a failure that
        # reproduces there propagates.
        self.fallback_sequential = fallback_sequential
        self.tracer = tracer if tracer is not None else get_tracer()
        self.metrics = metrics if metrics is not None else get_metrics()
        self.device = device or SimulatedDevice(tracer=self.tracer)
        self.sims: List[BatchSimulator] = [
            BatchSimulator(model, self.group_size, executor=executor,
                           device=self.device, tracer=self.tracer,
                           metrics=self.metrics,
                           fault_isolation=fault_isolation)
            for _ in range(groups)
        ]
        self.report = PipelineReport(groups=groups, n=n, pipelined=pipeline)
        self._fault_plan = None

    # -- state helpers ------------------------------------------------------------

    def load_memory(self, name: str, values, lane: Optional[int] = None) -> None:
        if lane is None:
            for sim in self.sims:
                sim.load_memory(name, values)
            return
        g, off = divmod(lane, self.group_size)
        self.sims[g].load_memory(name, values, lane=off)

    def get(self, name: str) -> np.ndarray:
        """Gathered batch values of a signal across all groups."""
        return np.concatenate([sim.get(name) for sim in self.sims])

    def read_memory(self, name: str, lane: int) -> np.ndarray:
        g, off = divmod(lane, self.group_size)
        return self.sims[g].read_memory(name, lane=off)

    # -- resilience: faults + checkpoints --------------------------------------------

    @property
    def cycles_run(self) -> int:
        """Cycles completed by every group (groups advance in lockstep at
        chunk granularity; between chunk boundaries this is the floor)."""
        return min(sim.cycles_run for sim in self.sims)

    def faults(self) -> List[LaneFault]:
        """All lane faults across groups, with lanes in *global* numbering."""
        out: List[LaneFault] = []
        for g, sim in enumerate(self.sims):
            if sim.quarantine is None:
                continue
            base = g * self.group_size
            for f in sim.quarantine.faults:
                out.append(LaneFault(lane=base + f.lane, cycle=f.cycle,
                                     reason=f.reason, task=f.task,
                                     detail=f.detail))
        out.sort(key=lambda f: (f.cycle, f.lane))
        return out

    def fault_report(self) -> dict:
        """JSON-ready quarantine summary over the whole batch."""
        faults = self.faults()
        return {
            "n": self.n,
            "active_lanes": self.n - len(faults),
            "faulted_lanes": [f.lane for f in faults],
            "faults": [f.to_dict() for f in faults],
        }

    def save_checkpoint(self) -> dict:
        """Snapshot all groups (only valid at a consistent cycle boundary).

        The pipelined scheduler only checkpoints between chunks, when the
        worker threads have joined and every group sits at the same cycle;
        a desynchronized snapshot request is a bug and is rejected.
        """
        cycles = {sim.cycles_run for sim in self.sims}
        if len(cycles) != 1:
            raise CheckpointError(
                f"pipeline groups are desynchronized (cycle counts "
                f"{sorted(cycles)}); checkpoints are only valid at chunk "
                f"boundaries"
            )
        return {
            "pipeline": {"groups": self.groups, "n": self.n},
            "cycles_run": cycles.pop(),
            "group_checkpoints": [sim.save_checkpoint() for sim in self.sims],
        }

    def restore_checkpoint(self, ckpt: dict) -> None:
        """Restore a :meth:`save_checkpoint` snapshot into every group.

        Validates shape *before* touching any group so a mismatched
        checkpoint can never leave the simulator half-restored.
        """
        meta = ckpt.get("pipeline")
        if meta is None:
            raise CheckpointError(
                "not a pipeline checkpoint (single-simulator checkpoints "
                "restore via BatchSimulator.restore_checkpoint)"
            )
        if meta.get("groups") != self.groups or meta.get("n") != self.n:
            raise CheckpointError(
                f"checkpoint is for {meta.get('groups')} groups of batch "
                f"size {meta.get('n')}, not {self.groups} groups of {self.n}"
            )
        group_ckpts = ckpt.get("group_checkpoints", ())
        if len(group_ckpts) != self.groups:
            raise CheckpointError(
                f"checkpoint holds {len(group_ckpts)} group snapshots, "
                f"expected {self.groups}"
            )
        cycles = {c.get("cycles_run") for c in group_ckpts}
        if len(cycles) != 1 or cycles != {ckpt.get("cycles_run")}:
            raise CheckpointError(
                f"checkpoint group progress is inconsistent "
                f"({sorted(cycles)} vs {ckpt.get('cycles_run')}); refusing "
                f"to restore a torn snapshot"
            )
        for sim, c in zip(self.sims, group_ckpts):
            sim.restore_checkpoint(c)

    # -- the run loop ----------------------------------------------------------------

    def run(
        self,
        stim,
        cycles: Optional[int] = None,
        watch: Optional[Sequence[str]] = None,
        checkpoint=None,
        fault_plan=None,
        start_cycle: int = 0,
    ) -> Dict[str, np.ndarray]:
        """Simulate ``cycles`` of the batch stimulus; returns final values.

        ``stim`` needs ``inputs_at_range(cycle, lo, hi)`` — both
        :class:`StimulusBatch` and :class:`TextStimulusBatch` qualify.

        Resilience hooks mirror :meth:`BatchSimulator.run`: ``checkpoint``
        (a :class:`repro.resilience.CheckpointManager`) makes the run
        execute in chunks of the policy's cycle interval — worker threads
        join at each chunk boundary, where every group sits at the same
        cycle and a consistent snapshot can be written.  ``fault_plan``
        injects scripted lane faults (global lane numbering) and group
        crashes; ``start_cycle`` resumes a restored checkpoint.

        A crashed pipelined chunk rolls back to the chunk's start state
        and re-executes sequentially when ``fallback_sequential`` is on;
        only errors that reproduce there propagate.
        """
        total = cycles if cycles is not None else len(stim)
        names = list(watch) if watch is not None else [
            s.name for s in self.model.design.outputs
        ]
        self.device.reset()
        self._fault_plan = fault_plan
        if fault_plan is not None and fault_plan.lane_faults:
            for sim in self.sims:
                if sim.quarantine is None:
                    sim.quarantine = LaneQuarantine(sim.n)
        set_inputs_time = [0.0] * self.groups
        if checkpoint is not None:
            checkpoint.begin(self.cycles_run)
        # Chunk size: the checkpoint cadence when given, else one chunk.
        chunk = total - start_cycle
        if checkpoint is not None and checkpoint.policy is not None:
            chunk = checkpoint.policy.every_cycles or 16

        t0 = time.perf_counter()
        degraded = False  # stay sequential once a pipelined chunk crashed
        c0 = start_cycle
        while c0 < total:
            c1 = min(total, c0 + max(1, chunk))
            if self.pipeline and not degraded:
                snap = (
                    [sim.save_checkpoint() for sim in self.sims]
                    if self.fallback_sequential else None
                )
                # Timing bookkeeping snapshots ride along with the state
                # snapshot: the crashed chunk's partial set_inputs time
                # and device busy/overhead must not survive the rollback,
                # or the sequential replay double-counts the cycles and
                # skews set_inputs_seconds / evaluate_seconds /
                # gpu_utilization in the report.
                acc_snap = list(set_inputs_time) if snap is not None else None
                dev_snap = (
                    self.device.stats.clone() if snap is not None else None
                )
                try:
                    self._run_pipelined(stim, c0, c1, set_inputs_time)
                except Exception:
                    if snap is None:
                        raise
                    # Roll the groups back to the chunk's start state and
                    # replay it one group at a time; a transient failure
                    # (scheduling, injection) is absorbed, a persistent
                    # one re-raises from the sequential path below.
                    for sim, s in zip(self.sims, snap):
                        sim.restore_checkpoint(s)
                    set_inputs_time[:] = acc_snap
                    self.device.stats.load(dev_snap)
                    degraded = True
                    self.report.fallback_used = True
                    if self.metrics.enabled:
                        self.metrics.inc("pipeline.fallbacks")
                    self._run_sequential(stim, c0, c1, set_inputs_time)
            else:
                self._run_sequential(stim, c0, c1, set_inputs_time)
            c0 = c1
            if checkpoint is not None:
                checkpoint.maybe_save(self)
        wall = time.perf_counter() - t0

        r = self.report
        r.wall_seconds = wall
        r.set_inputs_seconds = sum(set_inputs_time)
        r.evaluate_seconds = self.device.stats.busy_seconds
        r.gpu_utilization = self.device.utilization(wall)
        r.cycles = total
        r.faulted_lanes = sum(
            sim.quarantine.fault_count
            for sim in self.sims if sim.quarantine is not None
        )
        self._publish_metrics(r)
        return {name: self.get(name) for name in names}

    def _publish_metrics(self, r: PipelineReport) -> None:
        """Pipeline-stage metrics: overlap ratio = how much CPU input
        setting was hidden behind device evaluation this run."""
        if not self.metrics.enabled:
            return
        m = self.metrics
        m.set_gauge("pipeline.groups", r.groups)
        m.set_gauge("pipeline.cycles", r.cycles)
        m.set_gauge("pipeline.set_inputs_seconds", r.set_inputs_seconds)
        m.set_gauge("pipeline.evaluate_seconds", r.evaluate_seconds)
        m.set_gauge("pipeline.gpu_utilization", r.gpu_utilization)
        if r.wall_seconds > 0:
            stage_sum = r.set_inputs_seconds + r.evaluate_seconds
            overlap = max(0.0, stage_sum - r.wall_seconds)
            denom = min(r.set_inputs_seconds, r.evaluate_seconds)
            m.set_gauge(
                "pipeline.overlap_ratio",
                overlap / denom if denom > 0 else 0.0,
            )

    def _set_inputs_group(self, g: int, stim, cycle: int, acc: List[float]) -> None:
        lo = g * self.group_size
        hi = lo + self.group_size
        t0 = time.perf_counter()
        with self.tracer.span(f"set_inputs g{g} c{cycle}",
                              resource=f"CPU{g % self.cpu_workers}"):
            values = stim.inputs_at_range(cycle, lo, hi)
            self.sims[g].set_inputs(values)
        acc[g] += time.perf_counter() - t0

    def _evaluate_group(self, g: int, cycle: int) -> None:
        sim = self.sims[g]
        if self._fault_plan is not None:
            self._inject_faults(g, cycle)
        sim.set_clock(0)
        sim.evaluate()
        sim.set_clock(1)
        sim.evaluate()
        sim.cycles_run += 1

    def _inject_faults(self, g: int, cycle: int) -> None:
        """Apply this (group, cycle)'s scripted faults from the plan."""
        plan = self._fault_plan
        plan.maybe_fail_group(g, cycle)
        for spec in plan.lane_faults_at(cycle):
            gg, off = divmod(spec.lane, self.group_size)
            if gg == g and self.sims[g].quarantine is not None:
                self.sims[g]._quarantine_lanes(
                    [off], reason=spec.reason, detail="injected by fault plan"
                )

    def _run_pipelined(
        self, stim, start: int, end: int, acc: List[float]
    ) -> None:
        cpu_slots = threading.Semaphore(self.cpu_workers)
        # First failure wins: the stop event cancels the sibling chains at
        # their next cycle boundary instead of letting them simulate the
        # whole stimulus, and the lock keeps the error list coherent
        # (list.append is atomic today, but the ordering between append
        # and stop.set() is what the raise below relies on).
        stop = threading.Event()
        err_lock = threading.Lock()
        errors: List[BaseException] = []

        def group_chain(g: int) -> None:
            try:
                for c in range(start, end):
                    if stop.is_set():
                        return
                    if c < len(stim):
                        with cpu_slots:
                            self._set_inputs_group(g, stim, c, acc)
                    # The device serializes internally: this models one GPU
                    # accepting work from whichever group is ready first.
                    self._evaluate_group(g, c)
            except BaseException as exc:  # noqa: BLE001 - propagate to caller
                with err_lock:
                    errors.append(exc)
                stop.set()

        threads = [
            threading.Thread(target=group_chain, args=(g,), name=f"group{g}")
            for g in range(self.groups)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]

    def run_virtual(
        self,
        stim,
        cycles: Optional[int] = None,
        watch: Optional[Sequence[str]] = None,
    ) -> Dict[str, np.ndarray]:
        """Measure every stage, then model the schedule in virtual time.

        Executes the whole batch sequentially (results are exact), records
        each (group, cycle) set_inputs and evaluate duration, and computes
        the makespans of both the pipelined and the RTLflow^-p schedule
        with the discrete-event model in :mod:`repro.pipeline.virtualtime`.
        Used on hosts without real parallelism (see DESIGN.md §2).
        """
        from repro.pipeline.virtualtime import (
            makespan_pipelined,
            makespan_sequential,
        )

        total = cycles if cycles is not None else len(stim)
        names = list(watch) if watch is not None else [
            s.name for s in self.model.design.outputs
        ]
        self.device.reset()
        self._fault_plan = None  # virtual runs never inject
        cpu_t = np.zeros((self.groups, total))
        gpu_t = np.zeros((self.groups, total))
        for c in range(total):
            for g in range(self.groups):
                if c < len(stim):
                    lo = g * self.group_size
                    t0 = time.perf_counter()
                    values = stim.inputs_at_range(c, lo, lo + self.group_size)
                    self.sims[g].set_inputs(values)
                    cpu_t[g, c] = time.perf_counter() - t0
                busy0 = self.device.stats.busy_seconds
                over0 = self.device.stats.overhead_seconds
                self._evaluate_group(g, c)
                # Device time for this evaluation: kernel busy time plus the
                # modeled launch overhead it incurred.
                gpu_t[g, c] = (
                    self.device.stats.busy_seconds - busy0
                ) + (self.device.stats.overhead_seconds - over0)
        pipe = makespan_pipelined(cpu_t, gpu_t, self.cpu_workers)
        seq = makespan_sequential(cpu_t, gpu_t, self.cpu_workers)
        r = self.report
        r.virtual = True
        r.cycles = total
        r.cpu_stage_seconds = cpu_t
        r.gpu_stage_seconds = gpu_t
        r.set_inputs_seconds = float(cpu_t.sum())
        r.evaluate_seconds = float(gpu_t.sum())
        r.pipelined_makespan = pipe.makespan
        r.sequential_makespan = seq.makespan
        r.pipelined_utilization = pipe.gpu_utilization
        r.sequential_utilization = seq.gpu_utilization
        if self.pipeline:
            r.wall_seconds = pipe.makespan
            r.gpu_utilization = pipe.gpu_utilization
        else:
            r.wall_seconds = seq.makespan
            r.gpu_utilization = seq.gpu_utilization
        self._publish_metrics(r)
        return {name: self.get(name) for name in names}

    def _run_sequential(
        self, stim, start: int, end: int, acc: List[float]
    ) -> None:
        # RTLflow^-p: the GPU waits for set_inputs of the whole batch each
        # cycle.  set_inputs itself may use a thread pool (fairness).
        pool = (
            ThreadPoolExecutor(max_workers=self.cpu_workers)
            if self.cpu_workers > 1
            else None
        )
        try:
            for c in range(start, end):
                if c < len(stim):
                    if pool is not None:
                        futures = [
                            pool.submit(self._set_inputs_group, g, stim, c, acc)
                            for g in range(self.groups)
                        ]
                        for f in futures:
                            f.result()
                    else:
                        for g in range(self.groups):
                            self._set_inputs_group(g, stim, c, acc)
                for g in range(self.groups):
                    self._evaluate_group(g, c)
        finally:
            if pool is not None:
                pool.shutdown()
