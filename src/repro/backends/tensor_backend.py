"""Tensor backend: kernel-IR interpretation with tensor-algebra primitives.

Lowers each execution unit of the backend-neutral kernel IR
(:mod:`repro.backends.ir`) to a straight line of precompiled closures
over the pooled batch state, mapping the task phases onto
einsum/matmul-style ops the way RTeAAL-style tensor simulators do:

* **bit packing** — a 1-bit signal's ``(N,)`` lane vector becomes its
  ``(W,)`` packed words via a ``(W, 64) @ (64,)`` matmul against the
  bit-weight vector ``1 << arange(64)`` (bit-identical to
  :func:`repro.utils.packbits.pack`, including zeroed tail bits);
* **bit unpacking** — a broadcast shift ``(words[:, None] >> arange(64))
  & 1`` flattened back to lanes;
* **memory gather** — a one-hot address matrix contracted against the
  memory block, ``einsum('dn,dn->n', block, onehot)``; out-of-range
  addresses contract to 0, exactly the two-state X-read semantics of
  ``rt.mem_read``.  Deep memories fall back to the gather kernel (the
  one-hot matrix is O(depth x N)).

Every scalar op mirrors the uint64/widevec tier of the fused emitter
case for case — division/modulo/power go through
:mod:`repro.utils.bitvec` so lane quarantine still sees divide faults.
The produced bundle shares the numpy lowering's layout and commit
bindings, so checkpoints, stimulus pre-packing and the commit path are
interchangeable across backends (pool state is bit-identical at every
program boundary).
"""

from __future__ import annotations

import time
from typing import Callable, List

import numpy as np

from repro.backends.base import Backend
from repro.backends.ir import IrOp, IrStore, KernelIR, NodeIr, build_kernel_ir
from repro.core import kernels as rt
from repro.core.memory import PACKED_POOL
from repro.utils import bitvec as bvb
from repro.utils import packbits as pk
from repro.utils import widevec as wv
from repro.utils.errors import SimulationError

__all__ = ["TensorBackend"]

u8 = np.uint8
u64 = np.uint64

#: Bit weights for the packing matmul: word = lanes(W,64) @ _BIT_WEIGHTS.
_BIT_WEIGHTS = (u64(1) << np.arange(64, dtype=u64))

#: Depth above which the one-hot gather matrix is too large and the
#: gather kernel takes over (still bit-identical, just not tensorized).
ONEHOT_DEPTH_MAX = 128

_CMP_FNS = {
    "==": np.equal, "===": np.equal,
    "!=": np.not_equal, "!==": np.not_equal,
    "<": np.less, "<=": np.less_equal,
    ">": np.greater, ">=": np.greater_equal,
}
_WIDE_CMP = {
    "==": wv.eq, "===": wv.eq, "!=": wv.ne, "!==": wv.ne,
    "<": wv.lt, "<=": wv.le, ">": wv.gt, ">=": wv.ge,
}


def _pack_tensor(v, n: int, w: int) -> np.ndarray:
    """Pack a lane vector's low bits into ``(w,)`` uint64 words.

    Zero-padded lanes reshaped ``(w, 64)`` and contracted against the
    bit weights; the padding keeps tail bits zero exactly like
    ``pk.pack``'s zero-initialized words.
    """
    if np.ndim(v) == 0:
        return pk.ones(n) if (int(v) & 1) else pk.zeros(n)
    lanes = np.zeros(w * 64, dtype=u64)
    lanes[:n] = v & u64(1)
    return lanes.reshape(w, 64) @ _BIT_WEIGHTS


def _unpack_tensor(words: np.ndarray, n: int) -> np.ndarray:
    """Unpack ``(W,)`` uint64 words back to an ``(n,)`` lane vector."""
    return ((words[:, None] >> _BIT_WEIGHTS_EXP) & u64(1)).reshape(-1)[:n]


_BIT_WEIGHTS_EXP = np.arange(64, dtype=u64)


# ---------------------------------------------------------------------------
# Op compilation: IrOp -> closure(vals, pools, n, w, lane)
# ---------------------------------------------------------------------------


def _compile_op(op: IrOp) -> Callable:
    """Precompile one IR op to a closure writing ``vals[op.vid]``.

    All attribute lookups happen here, once per bundle build; the
    closures run every cycle with plain local-variable access only.
    """
    vid = op.vid
    a = op.attrs
    args = op.args
    oc = op.opcode

    if oc == "const":
        if op.limbs == 1:
            c = u64(a["value"] & ((1 << 64) - 1))

            def fn(vals, pools, n, w, lane):
                vals[vid] = c
        else:
            value, L = a["value"], op.limbs

            def fn(vals, pools, n, w, lane):
                vals[vid] = wv.from_const(value, L, n)
        return fn

    if oc == "load":
        pool, off, limbs = a["pool"], a["offset"], op.limbs
        if a["packed"]:
            def fn(vals, pools, n, w, lane):
                vals[vid] = _unpack_tensor(pools[4][off * w:(off + 1) * w], n)
        elif limbs == 1:
            def fn(vals, pools, n, w, lane):
                vals[vid] = pools[pool][off * n:(off + 1) * n].astype(
                    u64, copy=False)
        else:
            def fn(vals, pools, n, w, lane):
                vals[vid] = pools[pool][
                    off * n:(off + limbs) * n].reshape(limbs, n)
        return fn

    if oc == "mem_gather":
        pool, base, depth = a["pool"], a["base"], a["depth"]
        x = args[0]
        if 0 < depth <= ONEHOT_DEPTH_MAX:
            drange = np.arange(depth, dtype=u64)

            def fn(vals, pools, n, w, lane):
                idx = vals[x]
                if np.ndim(idx) == 0:
                    vals[vid] = rt.mem_read(
                        pools[pool], base, depth, n, lane, idx, copy=True)
                    return
                block = pools[pool][base * n:(base + depth) * n].reshape(
                    depth, n).astype(u64, copy=False)
                onehot = (idx[None, :] == drange[:, None]).astype(u64)
                vals[vid] = np.einsum("dn,dn->n", block, onehot)
        else:
            def fn(vals, pools, n, w, lane):
                vals[vid] = rt.mem_read(
                    pools[pool], base, depth, n, lane, vals[x], copy=True)
        return fn

    if oc == "mux":
        c, t, f = args
        if op.limbs == 1:
            def fn(vals, pools, n, w, lane):
                vals[vid] = np.where(vals[c] != 0, vals[t], vals[f])
        else:
            def fn(vals, pools, n, w, lane):
                vals[vid] = wv.mux(vals[c], vals[t], vals[f])
        return fn

    if oc == "not_bool":
        x = args[0]

        def fn(vals, pools, n, w, lane):
            vals[vid] = (np.asarray(vals[x]) == 0).astype(u64)
        return fn

    if oc in ("bnot", "neg"):
        x, m = args[0], u64(a["mask"])
        if oc == "bnot":
            def fn(vals, pools, n, w, lane):
                vals[vid] = (~vals[x]) & m
        else:
            def fn(vals, pools, n, w, lane):
                vals[vid] = (u64(0) - vals[x]) & m
        return fn

    if oc in ("wide_bnot", "wide_neg"):
        x, width = args[0], a["width"]
        inner = wv.bit_not if oc == "wide_bnot" else wv.neg

        def fn(vals, pools, n, w, lane):
            vals[vid] = wv.mask_width(inner(vals[x]), width)
        return fn

    if oc == "reduce":
        x, rop, width, wide = args[0], a["op"], a["width"], a["wide"]
        invert = rop.startswith("~")
        base_op = rop[-1]  # & | ^
        if not wide:
            red = {"&": bvb.b_red_and, "|": bvb.b_red_or,
                   "^": bvb.b_red_xor}[base_op]

            def fn(vals, pools, n, w, lane):
                r = red(vals[x], width)
                vals[vid] = (u64(1) - r) if invert else r
        else:
            if base_op == "&":
                def red_w(v):
                    return wv.red_and(v, width)
            elif base_op == "|":
                red_w = wv.red_or
            else:
                red_w = wv.red_xor

            def fn(vals, pools, n, w, lane):
                r = red_w(vals[x])
                vals[vid] = (u64(1) - r) if invert else r
        return fn

    if oc == "logic":
        l, r = args
        if a["op"] == "&&":
            def fn(vals, pools, n, w, lane):
                vals[vid] = ((vals[l] != 0) & (vals[r] != 0)).astype(u64)
        else:
            def fn(vals, pools, n, w, lane):
                vals[vid] = ((vals[l] != 0) | (vals[r] != 0)).astype(u64)
        return fn

    if oc == "compare":
        l, r = args
        if a["wide"]:
            cmp = _WIDE_CMP[a["op"]]

            def fn(vals, pools, n, w, lane):
                vals[vid] = cmp(vals[l], vals[r])
        else:
            cmp = _CMP_FNS[a["op"]]

            def fn(vals, pools, n, w, lane):
                vals[vid] = cmp(vals[l], vals[r]).astype(u64)
        return fn

    if oc == "shift":
        l, r = args
        if not a["wide"]:
            m = u64(a["mask"])
            if a["op"] == "<<":
                def fn(vals, pools, n, w, lane):
                    vals[vid] = bvb.b_shl(vals[l], vals[r]) & m
            else:
                def fn(vals, pools, n, w, lane):
                    vals[vid] = bvb.b_shr(vals[l], vals[r])
        else:
            width = a["width"]
            if a["op"] == "<<":
                def fn(vals, pools, n, w, lane):
                    vals[vid] = wv.mask_width(
                        wv.shl(vals[l], vals[r]), width)
            else:
                def fn(vals, pools, n, w, lane):
                    vals[vid] = wv.shr(vals[l], vals[r])
        return fn

    if oc == "arith":
        l, r = args
        bop = a["op"]
        if not a["wide"]:
            m = u64(a["mask"])
            table = {
                "+": lambda x, y: (x + y) & m,
                "-": lambda x, y: (x - y) & m,
                "*": lambda x, y: (x * y) & m,
                "/": bvb.b_div,
                "%": bvb.b_mod,
                "**": lambda x, y: bvb.b_pow(x, y) & m,
                "&": lambda x, y: x & y,
                "|": lambda x, y: x | y,
                "^": lambda x, y: x ^ y,
                "~^": lambda x, y: (~(x ^ y)) & m,
                "^~": lambda x, y: (~(x ^ y)) & m,
            }
        else:
            width = a["width"]
            table = {
                "+": lambda x, y: wv.mask_width(wv.add(x, y), width),
                "-": lambda x, y: wv.mask_width(wv.sub(x, y), width),
                "&": lambda x, y: x & y,
                "|": lambda x, y: x | y,
                "^": lambda x, y: x ^ y,
                "~^": lambda x, y: wv.mask_width(wv.bit_not(x ^ y), width),
                "^~": lambda x, y: wv.mask_width(wv.bit_not(x ^ y), width),
            }
        opf = table[bop]

        def fn(vals, pools, n, w, lane):
            vals[vid] = opf(vals[l], vals[r])
        return fn

    if oc == "shl_or":
        l, r, sh = args[0], args[1], u64(a["shift"])

        def fn(vals, pools, n, w, lane):
            vals[vid] = (vals[l] << sh) | vals[r]
        return fn

    if oc == "wide_shl_or":
        l, r, sh = args[0], args[1], a["shift"]

        def fn(vals, pools, n, w, lane):
            vals[vid] = wv.shl_const(vals[l], sh) | vals[r]
        return fn

    if oc == "wide_extend":
        x, L = args[0], a["limbs"]

        def fn(vals, pools, n, w, lane):
            vals[vid] = wv.extend(vals[x], L, n)
        return fn

    if oc == "bit_index":
        b, i = args

        def fn(vals, pools, n, w, lane):
            vals[vid] = bvb.b_shr(vals[b], vals[i]) & u64(1)
        return fn

    if oc == "wide_bit_index":
        b, i = args

        def fn(vals, pools, n, w, lane):
            vals[vid] = wv.narrow(wv.shr(vals[b], vals[i])) & u64(1)
        return fn

    if oc == "part":
        b, lsb, m = args[0], a["lsb"], u64(a["mask"])
        if lsb == 0:
            def fn(vals, pools, n, w, lane):
                vals[vid] = vals[b] & m
        else:
            sh = u64(lsb)

            def fn(vals, pools, n, w, lane):
                vals[vid] = (vals[b] >> sh) & m
        return fn

    if oc == "wide_part_narrow":
        b, lsb, m = args[0], a["lsb"], u64(a["mask"])
        if lsb == 0:
            def fn(vals, pools, n, w, lane):
                vals[vid] = wv.narrow(vals[b]) & m
        else:
            def fn(vals, pools, n, w, lane):
                vals[vid] = wv.narrow(wv.shr_const(vals[b], lsb)) & m
        return fn

    if oc == "wide_part_wide":
        b, lsb, width = args[0], a["lsb"], a["width"]
        if lsb == 0:
            def fn(vals, pools, n, w, lane):
                vals[vid] = wv.mask_width(vals[b], width)
        else:
            def fn(vals, pools, n, w, lane):
                vals[vid] = wv.mask_width(
                    wv.shr_const(vals[b], lsb), width)
        return fn

    if oc == "amount_bias":
        x, bias = args[0], u64(a["bias"])

        def fn(vals, pools, n, w, lane):
            vals[vid] = vals[x] - bias
        return fn

    if oc == "dyn_part":
        b, p, m = args[0], args[1], u64(a["mask"])

        def fn(vals, pools, n, w, lane):
            vals[vid] = bvb.b_shr(vals[b], vals[p]) & m
        return fn

    if oc == "wide_dyn_narrow":
        b, p, m = args[0], args[1], u64(a["mask"])

        def fn(vals, pools, n, w, lane):
            vals[vid] = wv.narrow(wv.shr(vals[b], vals[p])) & m
        return fn

    if oc == "wide_dyn_wide":
        b, p, width = args[0], args[1], a["width"]

        def fn(vals, pools, n, w, lane):
            vals[vid] = wv.mask_width(wv.shr(vals[b], vals[p]), width)
        return fn

    if oc == "to_bool_wide":
        x = args[0]

        def fn(vals, pools, n, w, lane):
            vals[vid] = wv.nonzero(vals[x])
        return fn

    if oc == "to_amount_wide":
        x = args[0]

        def fn(vals, pools, n, w, lane):
            vals[vid] = wv.saturate_narrow(vals[x])
        return fn

    if oc == "to_narrow_wide":
        x = args[0]

        def fn(vals, pools, n, w, lane):
            vals[vid] = wv.narrow(vals[x])
        return fn

    raise SimulationError(f"tensor backend: unknown IR opcode {oc!r}")


def _compile_store(st: IrStore) -> Callable:
    """Precompile one store to a closure applying ``vals[st.value]``."""
    v = st.value
    off, limbs = st.offset, st.limbs

    if st.kind == "signal":
        if st.packed:
            def fn(vals, pools, n, w, lane):
                pools[4][off * w:(off + 1) * w] = _pack_tensor(vals[v], n, w)
            return fn
        if limbs == 1:
            pool, m = st.pool, u64(bvb.mask(st.width))

            def fn(vals, pools, n, w, lane):
                pools[pool][off * n:(off + 1) * n] = vals[v] & m
            return fn
        pool, width = st.pool, st.width

        def fn(vals, pools, n, w, lane):
            pools[pool][off * n:(off + limbs) * n] = wv.mask_width(
                vals[v], width).reshape(-1)
        return fn

    if st.kind == "memw_cond":
        pool = st.pool

        def fn(vals, pools, n, w, lane):
            pools[pool][off * n:(off + 1) * n] = (
                np.asarray(vals[v]) != 0).astype(u8)
        return fn

    if st.kind == "memw_addr":
        pool = st.pool

        def fn(vals, pools, n, w, lane):
            pools[pool][off * n:(off + 1) * n] = vals[v]
        return fn

    if st.kind == "memw_data":
        pool, m = st.pool, u64(bvb.mask(st.width))

        def fn(vals, pools, n, w, lane):
            pools[pool][off * n:(off + 1) * n] = vals[v] & m
        return fn

    raise SimulationError(f"tensor backend: unknown store kind {st.kind!r}")


class _NodeProgram:
    """One node's precompiled closures (ops then stores)."""

    __slots__ = ("n_vals", "op_fns", "store_fns")

    def __init__(self, node: NodeIr):
        self.n_vals = len(node.ops)
        self.op_fns = [_compile_op(op) for op in node.ops]
        self.store_fns = [_compile_store(st) for st in node.stores]


def _unit_fn(name: str, progs: List[_NodeProgram]) -> Callable:
    """Bind one execution unit to a fused-program-signature callable."""

    def run(P8, P16, P32, P64, P1, N, W, LANE):
        pools = (P8, P16, P32, P64, P1)
        for prog in progs:
            vals = [None] * prog.n_vals
            for f in prog.op_fns:
                f(vals, pools, N, W, LANE)
            for s in prog.store_fns:
                s(vals, pools, N, W, LANE)

    run.__name__ = run.__qualname__ = name
    return run


class TensorBackend(Backend):
    name = "tensor"
    summary = "kernel-IR interpreter with einsum/matmul pack + gather"

    def compile(self, model):
        from repro.core.codegen import FusedProgram, FusedPrograms

        t0 = time.perf_counter()
        ir = build_kernel_ir(model.taskgraph)
        return self._bundle_from_ir(ir, FusedProgram, FusedPrograms, t0)

    def _bundle_from_ir(self, ir: KernelIR, FusedProgram, FusedPrograms, t0):
        comb_unit = ir.comb
        comb = FusedProgram(
            name=comb_unit.name, kind="comb", domain=None,
            fn=_unit_fn(comb_unit.name,
                        [_NodeProgram(nd) for nd in comb_unit.nodes]),
            n_nodes=len(comb_unit.nodes),
        )
        seq = {}
        for unit in ir.seq_units():
            seq[unit.domain] = FusedProgram(
                name=unit.name, kind="seq", domain=unit.domain,
                fn=_unit_fn(unit.name,
                            [_NodeProgram(nd) for nd in unit.nodes]),
                n_nodes=len(unit.nodes),
            )
        return FusedPrograms(
            layout=ir.layout,
            comb=comb,
            seq=seq,
            mem_writes=ir.mem_writes,
            source=ir.render(),
            namespace={"__backend__": self.name},
            transpile_seconds=time.perf_counter() - t0,
            audit=[],
            backend=self.name,
        )
