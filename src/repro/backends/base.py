"""The executor-backend contract.

A backend is a *lowering strategy*: it turns a compiled model's task
graph into a :class:`~repro.core.codegen.FusedPrograms` bundle whose
programs all share one call signature::

    fn(P8, P16, P32, P64, P1, N, W, LANE)

over the same ``pack_bits=True`` pooled memory layout.  Everything
downstream — :class:`~repro.gpu.graphexec.FusedProgramExecutor`, the
commit bindings, checkpoints, quarantine, stimulus pre-packing — is
backend-agnostic: it only sees the bundle.  That is the whole trick
that lets ``--backend`` select a lowering without forking the flow.

Contract (see ``docs/backends.md`` for the long form):

* ``name`` — the registry key users pass to ``--backend``.
* ``available()`` — True iff the backend can run in this interpreter
  (import probes only; never raises).
* ``compile(model)`` — lower ``model`` to a bundle.  The bundle MUST be
  bit-identical to the numpy lowering at every store boundary: pool
  state after each program call must match byte for byte.  The
  translation validator and the cross-backend differential matrix in
  ``tests/test_backends.py`` enforce this.
* ``describe()`` — one line for ``repro stats``/docs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.utils.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.codegen import CompiledModel, FusedPrograms

__all__ = ["Backend", "BackendUnavailableError"]


class BackendUnavailableError(SimulationError):
    """Raised when a known backend cannot run here (missing import)."""


class Backend:
    """Base class for executor backends (see module docstring)."""

    #: Registry key (the ``--backend`` value).
    name: str = ""
    #: Short human description for ``repro stats`` and docs.
    summary: str = ""
    #: Whether this backend is part of the paper's GPU target (numba /
    #: cupy) as opposed to a host-side lowering.
    accelerated: bool = False

    @classmethod
    def available(cls) -> bool:
        """Can this backend run in the current interpreter?"""
        return True

    @classmethod
    def unavailable_reason(cls) -> str:
        """Why ``available()`` is False (empty when available)."""
        return ""

    def compile(self, model: "CompiledModel") -> "FusedPrograms":
        raise NotImplementedError

    def describe(self) -> str:
        return self.summary or self.name
