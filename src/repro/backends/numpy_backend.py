"""The default backend: the fused flat-program numpy lowering.

This is the existing :class:`~repro.core.codegen.FusedProgramCodegen`
path re-expressed as a backend.  It does *not* interpret the kernel IR
at runtime — it keeps emitting fused Python source (three emission
tiers: lane-packed words, native dtypes, uint64 fallback), because that
source is the performance baseline every other backend is measured
against.  The IR is still authoritative: the translation validator
checks the emitted source against the same expression semantics the IR
encodes, and ``repro verify --backend numpy`` lowers through
:func:`repro.backends.ir.build_kernel_ir` to cross-check structure.
"""

from __future__ import annotations

from repro.backends.base import Backend

__all__ = ["NumpyBackend"]


class NumpyBackend(Backend):
    name = "numpy"
    summary = "fused flat programs, three-tier numpy emission (default)"

    def compile(self, model):
        # The model caches its fused bundle; reusing it keeps this
        # backend byte-for-byte the pre-backend behaviour (and free).
        bundle = model.fused()
        bundle.backend = self.name
        return bundle
