"""CuPy backend scaffold (the paper's CUDA target, device-array leg).

Gated on ``import cupy`` succeeding *and* a device being visible.  When
available the lowering reuses the tensor backend's IR interpretation on
host arrays — bit-identical by construction — with device-array
residency (cupy ndarrays for the pools, ``cupy.einsum`` for the
pack/gather contractions) as the documented follow-up: the IR closures
only use ufunc/einsum/matmul primitives that cupy implements with the
same dtype semantics.  Unavailable environments register the backend
but report a reason; nothing imports cupy at module import time.
"""

from __future__ import annotations

from repro.backends.tensor_backend import TensorBackend

__all__ = ["CupyBackend"]


def _probe() -> str:
    try:
        import cupy  # noqa: F401
    except Exception as exc:  # pragma: no cover - env-dependent
        return f"cupy is not importable ({type(exc).__name__})"
    try:  # pragma: no cover - env-dependent
        cupy.cuda.runtime.getDeviceCount()
    except Exception as exc:  # pragma: no cover - env-dependent
        return f"cupy sees no CUDA device ({type(exc).__name__})"
    return ""  # pragma: no cover - env-dependent


class CupyBackend(TensorBackend):
    name = "cupy"
    summary = "kernel-IR interpreter + cupy device arrays (experimental)"
    accelerated = True

    @classmethod
    def available(cls) -> bool:
        return _probe() == ""

    @classmethod
    def unavailable_reason(cls) -> str:
        return _probe()
