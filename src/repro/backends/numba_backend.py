"""Numba backend scaffold (the paper's CUDA target, JIT leg).

Gated on ``import numba`` succeeding.  When numba is present the
lowering currently reuses the tensor backend's IR interpretation —
bit-identical by construction — while per-unit ``@numba.njit``
compilation of the straight-line programs is the documented follow-up
(the IR's flat op lists are exactly the form ``nopython`` lowering
wants).  When numba is absent the backend registers but reports itself
unavailable; ``repro`` never imports numba at module import time, so
the default flow pays nothing for the gate.
"""

from __future__ import annotations

from repro.backends.tensor_backend import TensorBackend

__all__ = ["NumbaBackend"]


def _probe() -> str:
    try:
        import numba  # noqa: F401
    except Exception as exc:  # pragma: no cover - env-dependent
        return f"numba is not importable ({type(exc).__name__})"
    return ""


class NumbaBackend(TensorBackend):
    name = "numba"
    summary = "kernel-IR interpreter + numba JIT hooks (experimental)"
    accelerated = True

    @classmethod
    def available(cls) -> bool:
        return _probe() == ""

    @classmethod
    def unavailable_reason(cls) -> str:
        return _probe()
