"""Backend-neutral batch-axis kernel IR.

The fused flat-program codegen (:mod:`repro.core.codegen`) lowers task
graphs by *printing Python source*.  That welds the lowering to one
backend.  This module extracts the lowering decisions themselves — what
to load, which batch op to apply at which context width, where to store
with which mask — into a small explicit IR that any backend can consume:

* the **numpy** backend keeps emitting fused source (the IR's per-node
  ``origin`` expressions feed the existing three-tier emitter), and
* the **tensor** backend (and the gated numba/cupy scaffolds) interpret
  the flattened op lists directly over the same pooled batch layout.

Semantics contract: every op mirrors the *uint64/widevec tier* of
:class:`repro.core.codegen.ExprCodegen` exactly — an IR value is an
``(N,)`` uint64 lane vector when its context width fits one limb, and an
``(L, N)`` little-endian limb matrix otherwise.  The fused emitter's
packed/native tiers are proven bit-identical to that tier by the
translation validator, so any backend that implements this contract is
bit-identical to the numpy lowering at every store.

Execution units match the fused bundle: one unit for the whole
combinational phase (in ``comb_topo`` order) and one per sequential
clock domain, each a straight-line list of per-node programs.  Stores
carry resolved pool/offset placements (shadow slots for SEQ targets,
cond/addr/data scratch for guarded memory writes) for the shared
``pack_bits=True`` :class:`~repro.core.memory.MemoryLayout`, so commits,
checkpoints and stimulus pre-packing work unchanged under every backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.codegen import MemWriteBinding, _limbs, mem_write_bindings
from repro.core.memory import PACKED_POOL, MemoryLayout
from repro.partition.taskgraph import TaskGraph
from repro.rtlir.graph import NodeKind, RtlNode
from repro.utils import bitvec as bv
from repro.utils.errors import SimulationError, UnsupportedFeatureError
from repro.verilog import ast_nodes as A

__all__ = [
    "IrOp",
    "IrStore",
    "NodeIr",
    "KernelUnit",
    "KernelIR",
    "build_kernel_ir",
    "validate_ir",
]

#: Opcodes whose result is always one limb regardless of operand limbs.
_SCALAR_RESULT = frozenset({
    "not_bool", "reduce", "logic", "compare", "bit_index",
    "to_bool_wide", "to_amount_wide", "to_narrow_wide", "amount_bias",
})


@dataclass(frozen=True)
class IrOp:
    """One SSA batch op.  ``vid`` indexes the node-local value table."""

    vid: int
    opcode: str
    args: Tuple[int, ...]
    attrs: Mapping[str, object]
    limbs: int  # result representation: 1 -> (N,) u64, L>1 -> (L,N)

    def render(self) -> str:
        args = ", ".join(f"v{a}" for a in self.args)
        attrs = ", ".join(f"{k}={v!r}" for k, v in sorted(self.attrs.items()))
        body = ", ".join(s for s in (args, attrs) if s)
        return f"v{self.vid} = {self.opcode}({body})  ; limbs={self.limbs}"


@dataclass(frozen=True)
class IrStore:
    """A width-masked store of one value into its layout placement.

    Kinds: ``signal`` (COMB current / SEQ shadow slot, ``packed`` for
    lane-packed 1-bit targets), and the ``memw_cond`` / ``memw_addr`` /
    ``memw_data`` scratch triple of a guarded memory write.
    """

    kind: str
    value: int  # vid of the stored value
    target: str
    pool: int
    offset: int
    limbs: int
    width: int
    shadow: bool = False
    packed: bool = False

    def render(self) -> str:
        where = "P1" if self.packed else f"P{(8, 16, 32, 64)[self.pool]}"
        tag = " shadow" if self.shadow else ""
        return (
            f"{self.kind} {self.target} <- v{self.value} "
            f"[{where}+{self.offset}, w{self.width}{tag}]"
        )


@dataclass
class NodeIr:
    """The flattened program of one RTL node (ops then stores).

    ``origin`` keeps the source :class:`~repro.rtlir.graph.RtlNode` so
    tree-fusing backends (the numpy source emitter) can re-lower the
    expression instead of interpreting the flattened ops.
    """

    nid: int
    target: str
    kind: str  # "comb" | "seq" | "memw"
    ops: List[IrOp]
    stores: List[IrStore]
    origin: RtlNode = field(repr=False, compare=False, default=None)


@dataclass
class KernelUnit:
    """One execution unit: the comb phase, or one sequential domain."""

    name: str
    kind: str  # "comb" | "seq"
    domain: Optional[Tuple[str, str]]
    tids: List[int]
    nodes: List[NodeIr]


@dataclass
class KernelIR:
    """The complete backend-neutral lowering of one task graph."""

    top: str
    layout: MemoryLayout
    units: List[KernelUnit]
    mem_writes: List[MemWriteBinding]
    taskgraph: TaskGraph = field(repr=False, compare=False, default=None)

    @property
    def comb(self) -> KernelUnit:
        return self.units[0]

    def seq_units(self) -> List[KernelUnit]:
        return [u for u in self.units if u.kind == "seq"]

    def render(self) -> str:
        """A textual listing of the IR (the backend bundle's 'source')."""
        lines = [f"; kernel IR for {self.top} (backend-neutral)"]
        for unit in self.units:
            dom = f" {unit.domain[1]} {unit.domain[0]}" if unit.domain else ""
            lines.append(f"unit {unit.name} [{unit.kind}{dom}] "
                         f"({len(unit.nodes)} nodes)")
            for node in unit.nodes:
                lines.append(f"  node {node.nid} ({node.kind}) -> {node.target}")
                for op in node.ops:
                    lines.append(f"    {op.render()}")
                for st in node.stores:
                    lines.append(f"    {st.render()}")
        return "\n".join(lines) + "\n"


class _NodeBuilder:
    """Lowers one node's expressions to flat ops, mirroring
    :class:`~repro.core.codegen.ExprCodegen`'s uint64/widevec dispatch
    case for case (same ops, same context masking, same conversions)."""

    def __init__(self, layout: MemoryLayout, graph):
        self.layout = layout
        self.graph = graph
        self.ops: List[IrOp] = []

    def op(self, opcode: str, args: Tuple[int, ...], attrs: Dict[str, object],
           limbs: int) -> int:
        vid = len(self.ops)
        self.ops.append(IrOp(vid, opcode, tuple(args), dict(attrs), limbs))
        return vid

    # -- conversion entry points (ExprCodegen.emit/emit_bool/...) ---------

    def emit(self, e: A.Expr) -> int:
        vid, limbs = self.value(e)
        want = _limbs(e.ctx_width)
        if want == limbs:
            return vid
        if want > 1:
            return self.op("wide_extend", (vid,), {"limbs": want}, want)
        raise SimulationError(  # pragma: no cover - ctx >= width by pass
            f"cannot narrow a wide value to ctx {e.ctx_width}"
        )

    def emit_bool(self, e: A.Expr) -> int:
        vid, limbs = self.value(e)
        if limbs == 1:
            return vid
        return self.op("to_bool_wide", (vid,), {}, 1)

    def emit_amount(self, e: A.Expr) -> int:
        vid, limbs = self.value(e)
        if limbs == 1:
            return vid
        return self.op("to_amount_wide", (vid,), {}, 1)

    def emit_narrow(self, e: A.Expr) -> int:
        vid = self.emit(e)
        if _limbs(e.ctx_width) == 1:
            return vid
        return self.op("to_narrow_wide", (vid,), {}, 1)

    # -- dispatch ---------------------------------------------------------

    def value(self, e: A.Expr) -> Tuple[int, int]:
        if isinstance(e, A.Number):
            L = _limbs(e.ctx_width)
            return self.op("const", (), {"value": e.value}, L), L
        if isinstance(e, A.Ident):
            return self.load(e.name)
        if isinstance(e, A.Unary):
            return self._unary(e)
        if isinstance(e, A.Binary):
            return self._binary(e)
        if isinstance(e, A.Ternary):
            c = self.emit_bool(e.cond)
            t = self.emit(e.then)
            f = self.emit(e.other)
            L = _limbs(e.ctx_width)
            return self.op("mux", (c, t, f), {}, L), L
        if isinstance(e, A.Concat):
            return self._concat([(p, p.width) for p in e.parts], e.width)
        if isinstance(e, A.Repeat):
            count = getattr(e, "_count_i")
            return self._concat([(e.value, e.value.width)] * count, e.width)
        if isinstance(e, A.Index):
            idx = self.emit_amount(e.index)
            if e.is_memory:
                m = self.layout.mem(e.base)
                return self.op(
                    "mem_gather", (idx,),
                    {"mem": e.base, "pool": m.pool, "base": m.base,
                     "depth": m.depth}, 1,
                ), 1
            base, base_limbs = self.load(e.base)
            opc = "bit_index" if base_limbs == 1 else "wide_bit_index"
            return self.op(opc, (base, idx), {}, 1), 1
        if isinstance(e, A.PartSelect):
            lsb = getattr(e, "_lsb_i")
            m = bv.mask(e.width)
            base, base_limbs = self.load(e.base)
            if base_limbs == 1:
                return self.op("part", (base,), {"lsb": lsb, "mask": m}, 1), 1
            if e.width <= 64:
                return self.op(
                    "wide_part_narrow", (base,), {"lsb": lsb, "mask": m}, 1
                ), 1
            L = _limbs(e.width)
            return self.op(
                "wide_part_wide", (base,), {"lsb": lsb, "width": e.width}, L
            ), L
        if isinstance(e, A.IndexedPartSelect):
            w = getattr(e, "_width_i")
            sig_lsb = getattr(e, "_base_lsb_i", 0)
            m = bv.mask(min(w, 64)) if w <= 64 else bv.mask(w)
            start = self.emit_amount(e.start)
            shift_back = (w - 1 if e.descending else 0) + sig_lsb
            pos = (
                self.op("amount_bias", (start,), {"bias": shift_back}, 1)
                if shift_back else start
            )
            base, base_limbs = self.load(e.base)
            if base_limbs == 1:
                return self.op("dyn_part", (base, pos), {"mask": m}, 1), 1
            if w <= 64:
                return self.op(
                    "wide_dyn_narrow", (base, pos), {"mask": m}, 1
                ), 1
            return self.op(
                "wide_dyn_wide", (base, pos), {"width": w}, _limbs(w)
            ), _limbs(w)
        raise SimulationError(f"cannot lower {type(e).__name__} to kernel IR")

    def load(self, name: str) -> Tuple[int, int]:
        slot = self.layout.slot(name)
        packed = slot.pool == PACKED_POOL
        return self.op(
            "load", (),
            {"name": name, "pool": slot.pool, "offset": slot.offset,
             "width": slot.width, "packed": packed},
            slot.limbs,
        ), slot.limbs

    def _concat(self, parts, total_width: int) -> Tuple[int, int]:
        L = _limbs(total_width)
        if L == 1:
            acc = self.emit(parts[0][0])
            for p, w in parts[1:]:
                acc = self.op("shl_or", (acc, self.emit(p)), {"shift": w}, 1)
            return acc, 1

        def as_limbs(p: A.Expr) -> int:
            # Constants become limb matrices directly (a scalar u64 has
            # no lane axis for extend to replicate).
            if isinstance(p, A.Number):
                return self.op("const", (), {"value": p.value}, L)
            vid, pl = self.value(p)
            if pl == L:
                return vid
            return self.op("wide_extend", (vid,), {"limbs": L}, L)

        acc = as_limbs(parts[0][0])
        for p, w in parts[1:]:
            acc = self.op("wide_shl_or", (acc, as_limbs(p)), {"shift": w}, L)
        return acc, L

    def _unary(self, e: A.Unary) -> Tuple[int, int]:
        L = _limbs(e.ctx_width)
        if e.op == "!":
            b = self.emit_bool(e.operand)
            return self.op("not_bool", (b,), {}, 1), 1
        if e.op in ("~", "-", "+"):
            x = self.emit(e.operand)
            if e.op == "+":
                return x, L
            if L == 1:
                m = bv.mask(min(e.ctx_width, 64))
                opc = "bnot" if e.op == "~" else "neg"
                return self.op(opc, (x,), {"mask": m}, 1), 1
            opc = "wide_bnot" if e.op == "~" else "wide_neg"
            return self.op(opc, (x,), {"width": e.ctx_width}, L), L
        # Reductions: operand at its self-determined representation.
        x, xl = self.value(e.operand)
        if e.op in ("&", "|", "^", "~&", "~|", "~^"):
            return self.op(
                "reduce", (x,),
                {"op": e.op, "width": e.operand.width, "wide": xl > 1}, 1,
            ), 1
        raise SimulationError(f"unknown unary op {e.op!r}")

    def _binary(self, e: A.Binary) -> Tuple[int, int]:
        op = e.op
        L = _limbs(e.ctx_width)
        if op in ("&&", "||"):
            l = self.emit_bool(e.left)
            r = self.emit_bool(e.right)
            return self.op("logic", (l, r), {"op": op}, 1), 1
        if op in ("==", "===", "!=", "!==", "<", "<=", ">", ">="):
            # Comparison operands share a self-determined context.
            wide = (_limbs(e.left.ctx_width) > 1
                    or _limbs(e.right.ctx_width) > 1)
            l = self.emit(e.left)
            r = self.emit(e.right)
            return self.op(
                "compare", (l, r), {"op": op, "wide": wide}, 1
            ), 1
        if op in ("<<", "<<<", ">>", ">>>"):
            l = self.emit(e.left)
            r = self.emit_amount(e.right)
            left_shift = op in ("<<", "<<<")
            if L == 1:
                m = bv.mask(min(e.ctx_width, 64))
                return self.op(
                    "shift", (l, r),
                    {"op": "<<" if left_shift else ">>", "mask": m,
                     "wide": False}, 1,
                ), 1
            return self.op(
                "shift", (l, r),
                {"op": "<<" if left_shift else ">>", "width": e.ctx_width,
                 "wide": True}, L,
            ), L
        if L > 1 and op in ("*", "/", "%", "**"):
            raise UnsupportedFeatureError(
                f"operator {op!r} is not supported on values wider than 64 "
                f"bits (context width {e.ctx_width})"
            )
        l = self.emit(e.left)
        r = self.emit(e.right)
        known = ("+", "-", "*", "/", "%", "**", "&", "|", "^", "~^", "^~")
        if op not in known:
            raise SimulationError(f"unknown binary op {op!r}")
        if L == 1:
            m = bv.mask(min(e.ctx_width, 64))
            return self.op(
                "arith", (l, r), {"op": op, "mask": m, "wide": False}, 1
            ), 1
        return self.op(
            "arith", (l, r), {"op": op, "width": e.ctx_width, "wide": True}, L
        ), L


def _lower_node(node: RtlNode, layout: MemoryLayout, graph) -> NodeIr:
    b = _NodeBuilder(layout, graph)
    stores: List[IrStore] = []
    if node.kind in (NodeKind.COMB, NodeKind.SEQ):
        shadow = node.kind is NodeKind.SEQ
        slot = layout.slot(node.target)
        off = (
            slot.next_offset
            if shadow and slot.next_offset is not None
            else slot.offset
        )
        if slot.pool == PACKED_POOL:
            vid = b.emit_narrow(node.expr)
            stores.append(IrStore(
                kind="signal", value=vid, target=node.target,
                pool=PACKED_POOL, offset=off, limbs=1, width=1,
                shadow=shadow, packed=True,
            ))
        elif slot.limbs == 1:
            vid = b.emit_narrow(node.expr)
            stores.append(IrStore(
                kind="signal", value=vid, target=node.target,
                pool=slot.pool, offset=off, limbs=1, width=slot.width,
                shadow=shadow,
            ))
        else:
            vid = b.emit(node.expr)
            stores.append(IrStore(
                kind="signal", value=vid, target=node.target,
                pool=slot.pool, offset=off, limbs=slot.limbs,
                width=slot.width, shadow=shadow,
            ))
    elif node.kind is NodeKind.MEMW:
        sc = layout.scratch[node.nid]
        mem = graph.design.memories[node.target]
        cond = b.emit_bool(node.cond)
        stores.append(IrStore(
            kind="memw_cond", value=cond, target=node.target,
            pool=sc.cond.pool, offset=sc.cond.offset, limbs=1, width=1,
        ))
        addr = b.emit_amount(node.addr)
        stores.append(IrStore(
            kind="memw_addr", value=addr, target=node.target,
            pool=sc.addr.pool, offset=sc.addr.offset, limbs=1, width=64,
        ))
        data = b.emit_narrow(node.expr)
        stores.append(IrStore(
            kind="memw_data", value=data, target=node.target,
            pool=sc.data.pool, offset=sc.data.offset, limbs=1,
            width=mem.width,
        ))
    else:  # pragma: no cover
        raise SimulationError(f"unknown node kind {node.kind}")
    return NodeIr(
        nid=node.nid, target=node.target, kind=node.kind.value,
        ops=b.ops, stores=stores, origin=node,
    )


def build_kernel_ir(
    taskgraph: TaskGraph, layout: Optional[MemoryLayout] = None
) -> KernelIR:
    """Lower ``taskgraph`` to the backend-neutral IR.

    Uses (or builds) the same ``pack_bits=True`` layout as the fused
    numpy lowering, so bundles from different backends are layout- and
    checkpoint-compatible.  Unit order matches
    :meth:`FusedProgramCodegen.generate_source`: comb first, then the
    sequential domains in task order.
    """
    graph = taskgraph.graph
    layout = layout or MemoryLayout.from_graph(graph, pack_bits=True)

    def unit_nodes(tids: List[int]) -> List[NodeIr]:
        out = []
        for tid in tids:
            for nid in taskgraph.tasks[tid].nodes:
                out.append(_lower_node(graph.nodes[nid], layout, graph))
        return out

    comb_tids = list(taskgraph.comb_topo)
    units = [KernelUnit(
        name="fused_comb", kind="comb", domain=None, tids=comb_tids,
        nodes=unit_nodes(comb_tids),
    )]
    domains: Dict[Tuple[str, str], List[int]] = {}
    for t in taskgraph.tasks:
        if t.kind is NodeKind.SEQ:
            domains.setdefault((t.clock, t.edge), []).append(t.tid)
    for i, (dom, tids) in enumerate(domains.items()):
        units.append(KernelUnit(
            name=f"fused_seq_{i}", kind="seq", domain=dom, tids=tids,
            nodes=unit_nodes(tids),
        ))
    return KernelIR(
        top=graph.design.top,
        layout=layout,
        units=units,
        mem_writes=mem_write_bindings(graph, layout),
        taskgraph=taskgraph,
    )


def validate_ir(ir: KernelIR) -> List[str]:
    """Structural well-formedness checks; returns problem strings.

    Re-derives the invariants a backend relies on: SSA ordering, store
    placements inside their pools, exactly-once task coverage across
    units, and sequential-domain completeness.  An empty list means the
    IR is safe to interpret.
    """
    problems: List[str] = []
    layout = ir.layout
    tg = ir.taskgraph

    def check_placement(where: str, pool: int, offset: int, limbs: int,
                        packed: bool) -> None:
        if packed:
            if not (0 <= offset < layout.packed_size):
                problems.append(
                    f"{where}: packed offset {offset} outside P1 pool "
                    f"of {layout.packed_size} blocks")
            return
        if not (0 <= pool < len(layout.pool_sizes)):
            problems.append(f"{where}: pool index {pool} out of range")
            return
        if offset < 0 or offset + limbs > layout.pool_sizes[pool]:
            problems.append(
                f"{where}: offsets [{offset},{offset + limbs}) outside "
                f"pool {pool} of {layout.pool_sizes[pool]}")

    for unit in ir.units:
        for node in unit.nodes:
            where = f"{unit.name}/node{node.nid}"
            for i, op in enumerate(node.ops):
                if op.vid != i:
                    problems.append(f"{where}: op {i} has vid {op.vid}")
                if any(a >= op.vid or a < 0 for a in op.args):
                    problems.append(
                        f"{where}: op v{op.vid} ({op.opcode}) references "
                        f"a later or negative value")
                if op.opcode == "load":
                    check_placement(
                        where, op.attrs["pool"], op.attrs["offset"],
                        op.limbs, op.attrs["packed"])
            if not node.stores:
                problems.append(f"{where}: node has no stores")
            for st in node.stores:
                if not (0 <= st.value < len(node.ops)):
                    problems.append(
                        f"{where}: store of undefined value v{st.value}")
                check_placement(where, st.pool, st.offset, st.limbs,
                                st.packed)

    if tg is not None:
        seen: Dict[int, str] = {}
        for unit in ir.units:
            for tid in unit.tids:
                if tid in seen:
                    problems.append(
                        f"task {tid} lowered in both {seen[tid]} and "
                        f"{unit.name}")
                seen[tid] = unit.name
        missing = [t.tid for t in tg.tasks if t.tid not in seen]
        if missing:
            problems.append(f"tasks never lowered: {missing}")
        want_domains = {
            (t.clock, t.edge) for t in tg.tasks if t.kind is NodeKind.SEQ
        }
        have_domains = {u.domain for u in ir.units if u.kind == "seq"}
        if want_domains != have_domains:
            problems.append(
                f"sequential domains {sorted(have_domains)} do not match "
                f"the task graph's {sorted(want_domains)}")
    return problems
