"""Pluggable executor backends over the backend-neutral kernel IR.

``--backend`` (CLI) / ``backend=`` (API) selects how task-graph
partitions are lowered to the fused-program bundle the simulator
executes:

* ``numpy`` — the default three-tier fused source emission (the
  performance baseline; byte-identical to the pre-backend flow);
* ``tensor`` — kernel-IR interpretation with einsum/matmul-style
  packing and memory gather (always available; the reference consumer
  of :mod:`repro.backends.ir`);
* ``numba`` / ``cupy`` — the paper's GPU-target scaffolds, available
  only when their packages import (never required).

All backends produce :class:`~repro.core.codegen.FusedPrograms`
bundles that are bit-identical at every store boundary, so executors,
checkpoints and cluster shard merges compose across backends.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.backends.base import Backend, BackendUnavailableError
from repro.backends.cupy_backend import CupyBackend
from repro.backends.ir import KernelIR, build_kernel_ir, validate_ir
from repro.backends.numba_backend import NumbaBackend
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.tensor_backend import TensorBackend
from repro.utils.errors import SimulationError

__all__ = [
    "Backend",
    "BackendUnavailableError",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "available_backends",
    "backend_report",
    "get_backend",
    "KernelIR",
    "build_kernel_ir",
    "validate_ir",
]

DEFAULT_BACKEND = "numpy"

#: Registry, in documentation order (default first).
BACKENDS: Dict[str, Type[Backend]] = {
    cls.name: cls
    for cls in (NumpyBackend, TensorBackend, NumbaBackend, CupyBackend)
}


def available_backends() -> List[str]:
    """Names of the backends that can run in this interpreter."""
    return [name for name, cls in BACKENDS.items() if cls.available()]


def get_backend(name: str) -> Backend:
    """Instantiate backend ``name``, or raise a helpful error."""
    cls = BACKENDS.get(name)
    if cls is None:
        raise SimulationError(
            f"unknown backend {name!r}; known backends: "
            + ", ".join(sorted(BACKENDS))
        )
    if not cls.available():
        raise BackendUnavailableError(
            f"backend {name!r} is not available here: "
            f"{cls.unavailable_reason() or 'unknown reason'}"
        )
    return cls()


def backend_report() -> List[Dict[str, object]]:
    """Plain-data availability report (``repro stats --json``)."""
    return [
        {
            "name": name,
            "available": cls.available(),
            "accelerated": cls.accelerated,
            "summary": cls.summary,
            "reason": cls.unavailable_reason() if not cls.available() else "",
        }
        for name, cls in BACKENDS.items()
    ]
