"""`repro.serve` — the campaign service layer.

Simulation-as-a-service over the cluster runner: a long-running asyncio
server (:class:`CampaignService`, CLI ``repro serve``) that accepts
:class:`~repro.cluster.spec.CampaignSpec` submissions over a local
HTTP/JSON API, schedules them *fairly* across tenants at shard
granularity (:class:`FairScheduler`), executes shards on a pool of
cluster workers, and never simulates the same content twice thanks to a
content-addressed per-shard result store (:class:`ResultStore`).

The cache key is :meth:`CampaignSpec.shard_signature` — design text,
seed, cycles, batch geometry, executor/backend and the shard's own lane
range + faults — so an identical resubmission is served entirely from
the store (hit rate 1.0, byte-identical merged outputs) and an edited
campaign re-simulates only the shards whose content changed.

See ``docs/service.md`` for the API, the store layout and the fairness
model; :class:`ServiceClient` (CLI ``repro submit``/``jobs``/``result``/
``cancel``) is the matching client.
"""

from repro.serve.client import ServiceClient
from repro.serve.protocol import (
    JobRecord,
    decode_outputs,
    encode_outputs,
    outputs_digest,
    spec_from_dict,
    spec_to_dict,
)
from repro.serve.scheduler import FairScheduler
from repro.serve.server import BackgroundService, CampaignService, run_service
from repro.serve.store import ResultStore, adopt_payload
from repro.utils.errors import QueueFullError, ServiceError

__all__ = [
    "BackgroundService",
    "CampaignService",
    "FairScheduler",
    "JobRecord",
    "QueueFullError",
    "ResultStore",
    "ServiceClient",
    "ServiceError",
    "adopt_payload",
    "decode_outputs",
    "encode_outputs",
    "outputs_digest",
    "run_service",
    "spec_from_dict",
    "spec_to_dict",
]
