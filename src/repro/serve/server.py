"""`repro serve` — the long-running asyncio campaign service.

One process, one event loop, three moving parts:

* **Job queue + fair scheduler** — submissions arrive over a local
  HTTP/JSON API, are planned into lane shards
  (:func:`~repro.cluster.spec.plan_shards`, the cluster's planner), and
  queue through the :class:`~repro.serve.scheduler.FairScheduler`:
  weighted round-robin across tenants at *shard* granularity, per-tenant
  in-flight caps, bounded-queue backpressure (HTTP 429).
* **Content-addressed result store** — every shard's content key
  (:meth:`CampaignSpec.shard_signature`) is probed at submission:
  hits are adopted without touching a worker, misses are simulated and
  published back.  An identical resubmission is pure lookups (hit rate
  1.0, zero simulations, byte-identical merged outputs); an edited
  campaign re-simulates only its changed shards.
* **Worker pool** — ``workers > 0`` spawn-started processes running
  :func:`~repro.serve.worker.service_worker_main` (the cluster worker
  loop with a per-campaign compiled-context LRU); ``workers == 0`` the
  same loop on one in-process thread (deterministic tests/debug).

Durability: job records persist as JSON under ``<data_dir>/jobs`` and
shard results live in the store, so a SIGTERM'd server drains its
in-flight shards, persists queued jobs, and a restarted server resumes
them — completed shards come back as store hits, only the remainder is
simulated.  Telemetry (`repro.obs`) threads through everything:
``serve.*`` metrics on ``GET /metrics``, spans on the service tracer.

API (all JSON, all local-trust — no auth):

====== ======================= =====================================
POST   /jobs                    submit {"spec": {...}, "tenant", "weight"}
GET    /jobs[?tenant=]          list job summaries
GET    /jobs/<id>[?since=N]     status + incremental events after seq N
GET    /jobs/<id>/result        merged outputs (hex), digest, metrics
POST   /jobs/<id>/cancel        cancel (releases queued shards)
GET    /metrics                 service/store/tenant/registry metrics
GET    /healthz                 liveness
====== ======================= =====================================
"""

from __future__ import annotations

import asyncio
import json
import os
import queue as queue_mod
import re
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from collections import deque

from repro.cluster.merge import ShardOutcome, merge_payloads
from repro.cluster.spec import CampaignSpec, ShardSpec, plan_shards
from repro.cluster.worker import PAYLOAD_SCHEMA
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.resilience.checkpoint import atomic_write_bytes
from repro.serve.protocol import (
    JobRecord,
    encode_outputs,
    outputs_digest,
    spec_from_dict,
    spec_to_dict,
)
from repro.serve.scheduler import FairScheduler
from repro.serve.store import ResultStore, adopt_payload
from repro.serve.worker import service_worker_main
from repro.utils.errors import QueueFullError, ServiceError

__all__ = ["CampaignService", "BackgroundService", "run_service"]

_EVENT_CAP = 4096  # per-job in-memory event window
_JOB_ID_RE = re.compile(r"^j\d{6}$")


# ---------------------------------------------------------------------------
# Worker pool (process or inline-thread homes for the same worker loop)


class _WorkerHandle:
    __slots__ = ("id", "task_q", "process", "thread", "busy")

    def __init__(self, id: int, task_q, process=None, thread=None):
        self.id = id
        self.task_q = task_q
        self.process = process
        self.thread = thread
        self.busy: Optional[Tuple[str, ShardSpec]] = None  # (job_id, shard)


class _LoopQueue:
    """A ``put``-only queue that delivers into the event loop thread."""

    def __init__(self, loop: asyncio.AbstractEventLoop, handler):
        self.loop = loop
        self.handler = handler

    def put(self, msg) -> None:
        try:
            self.loop.call_soon_threadsafe(self.handler, msg)
        except RuntimeError:
            pass  # loop already closed during shutdown


class _WorkerPool:
    """Spawn-process pool (``workers > 0``) or one inline thread (0)."""

    def __init__(self, workers: int, cfg: dict):
        self.workers = workers
        self.cfg = cfg
        self.handles: Dict[int, _WorkerHandle] = {}
        self._next_id = 0
        self._ctx = None
        self._result_q = None
        self._pump: Optional[threading.Thread] = None
        self._loop_q: Optional[_LoopQueue] = None

    def start(self, loop: asyncio.AbstractEventLoop, handler) -> None:
        self._loop_q = _LoopQueue(loop, handler)
        if self.workers <= 0:
            self._spawn_thread()
            return
        import multiprocessing as mp

        self._ctx = mp.get_context("spawn")
        self._result_q = self._ctx.Queue()
        self._pump = threading.Thread(
            target=self._pump_main, name="repro-serve-pump", daemon=True
        )
        self._pump.start()
        for _ in range(self.workers):
            self.spawn()

    def _pump_main(self) -> None:
        while True:
            msg = self._result_q.get()
            if msg is None:
                return
            self._loop_q.put(msg)

    def _spawn_thread(self) -> _WorkerHandle:
        task_q: "queue_mod.Queue" = queue_mod.Queue()
        wid = self._next_id
        self._next_id += 1
        th = threading.Thread(
            target=service_worker_main,
            args=(wid, task_q, self._loop_q, self.cfg),
            name=f"repro-serve-w{wid}",
            daemon=True,
        )
        th.start()
        h = _WorkerHandle(wid, task_q, thread=th)
        self.handles[wid] = h
        return h

    def spawn(self) -> _WorkerHandle:
        if self.workers <= 0:
            return self._spawn_thread()
        wid = self._next_id
        self._next_id += 1
        task_q = self._ctx.Queue()
        proc = self._ctx.Process(
            target=service_worker_main,
            args=(wid, task_q, self._result_q, self.cfg),
            daemon=True,
            name=f"repro-serve-w{wid}",
        )
        proc.start()
        h = _WorkerHandle(wid, task_q, process=proc)
        self.handles[wid] = h
        return h

    def send(self, wid: int, msg) -> None:
        self.handles[wid].task_q.put(msg)

    def dead_workers(self) -> List[_WorkerHandle]:
        """Process-mode handles whose worker died (never fires inline)."""
        return [
            h for h in self.handles.values()
            if h.process is not None and h.process.exitcode is not None
        ]

    def remove(self, wid: int) -> None:
        self.handles.pop(wid, None)

    def stop(self, timeout: float = 5.0) -> None:
        for h in self.handles.values():
            try:
                h.task_q.put(None)
            except Exception:
                pass
        deadline = time.monotonic() + timeout
        for h in self.handles.values():
            left = max(0.1, deadline - time.monotonic())
            if h.process is not None:
                h.process.join(timeout=left)
                if h.process.exitcode is None:
                    h.process.terminate()
                    h.process.join(timeout=1.0)
                if h.process.exitcode is None:
                    h.process.kill()
            elif h.thread is not None:
                h.thread.join(timeout=left)
        if self._result_q is not None:
            self._result_q.put(None)  # release the pump thread
        self.handles.clear()


# ---------------------------------------------------------------------------
# Runtime job state


@dataclass
class _Job:
    record: JobRecord
    spec: CampaignSpec
    shards: List[ShardSpec]
    payloads: Dict[int, dict] = field(default_factory=dict)
    attempts: Dict[int, int] = field(default_factory=dict)
    events: List[dict] = field(default_factory=list)
    hit_ids: set = field(default_factory=set)
    t_submit: float = 0.0
    result = None  # merged CampaignResult, once done
    done_event: Optional[asyncio.Event] = None


# ---------------------------------------------------------------------------
# The service


class CampaignService:
    """The campaign service: queue + store + fair scheduler + workers.

    All state mutations happen on the event loop thread; worker
    completions are marshalled onto it.  Construct, then ``await
    start()`` inside a running loop (or use :class:`BackgroundService` /
    :func:`run_service`).
    """

    def __init__(
        self,
        data_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 0,
        shard_lanes: Optional[int] = None,
        max_queued_shards: int = 1024,
        tenant_inflight_cap: Optional[int] = None,
        store_max_bytes: Optional[int] = None,
        store_max_entries: Optional[int] = None,
        max_restarts: int = 3,
        heartbeat_seconds: float = 0.25,
        progress_min_interval: float = 0.05,
    ):
        self.data_dir = os.path.abspath(data_dir)
        self.jobs_dir = os.path.join(self.data_dir, "jobs")
        os.makedirs(self.jobs_dir, exist_ok=True)
        self.host = host
        self.port = port
        self.workers = workers
        self.shard_lanes = shard_lanes
        self.max_restarts = max_restarts
        self.store = ResultStore(
            os.path.join(self.data_dir, "store"),
            max_bytes=store_max_bytes,
            max_entries=store_max_entries,
        )
        self.scheduler = FairScheduler(
            max_queued=max_queued_shards, inflight_cap=tenant_inflight_cap
        )
        self.metrics = MetricsRegistry(enabled=True)
        self.tracer = Tracer(enabled=True)
        self.jobs: Dict[str, _Job] = {}
        #: Global shard-completion log [(tenant, job_id, shard_id)] — the
        #: record the fairness tests (and acceptance criteria) read to
        #: see tenants' shards interleaving.
        self.shard_log: List[Tuple[str, str, int]] = []
        self._pool = _WorkerPool(workers, {
            "checkpoint_dir": None,
            "heartbeat_seconds": heartbeat_seconds,
            "progress_min_interval": progress_min_interval,
        })
        self._idle: Deque[int] = deque()
        self._seq = 0
        self._next_job_num = 1
        self._wake: Optional[asyncio.Event] = None
        self._dispatch_task = None
        self._watchdog_task = None
        self._http_server = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopping = False
        self._t0 = time.monotonic()

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._load_jobs()
        self._pool.start(self._loop, self._on_message)
        self._dispatch_task = asyncio.ensure_future(self._dispatch_loop())
        if self.workers > 0:
            self._watchdog_task = asyncio.ensure_future(self._watchdog_loop())
        self._http_server = await asyncio.start_server(
            self._handle_conn, host=self.host, port=self.port
        )
        self.port = self._http_server.sockets[0].getsockname()[1]
        self._wake.set()

    async def shutdown(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Drain and stop: the SIGTERM path.

        With ``drain=True`` the service stops accepting submissions and
        dispatching new shards, lets in-flight shards finish (bounded by
        ``timeout``; their results still reach the store), persists
        every non-terminal job as ``queued``, and exits.  A restarted
        server on the same ``data_dir`` re-enqueues those jobs; their
        already-completed shards come back as store hits.
        """
        self._stopping = True
        if self._wake is not None:
            self._wake.set()
        if drain:
            deadline = time.monotonic() + timeout
            while (any(h.busy is not None for h in self._pool.handles.values())
                   and time.monotonic() < deadline):
                await asyncio.sleep(0.02)
        for task in (self._dispatch_task, self._watchdog_task):
            if task is not None:
                task.cancel()
                try:
                    await task
                except BaseException:  # noqa: BLE001 - cancelled/failed task
                    pass
        for job in self.jobs.values():
            if not job.record.terminal:
                job.record.state = "queued"
                self._persist(job.record)
        await self._loop.run_in_executor(None, self._pool.stop)
        if self._http_server is not None:
            self._http_server.close()
            await self._http_server.wait_closed()

    # -- durable job records ---------------------------------------------------

    def _job_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def _persist(self, record: JobRecord) -> None:
        atomic_write_bytes(
            self._job_path(record.id),
            json.dumps(record.to_dict(), indent=1).encode(),
        )

    def _load_jobs(self) -> None:
        """Reload persisted jobs; re-enqueue the non-terminal ones."""
        for name in sorted(os.listdir(self.jobs_dir)):
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(self.jobs_dir, name)) as fh:
                    record = JobRecord.from_dict(json.load(fh))
            except Exception:
                continue  # unreadable record: skip, don't crash the server
            if _JOB_ID_RE.match(record.id):
                self._next_job_num = max(
                    self._next_job_num, int(record.id[1:]) + 1
                )
            spec = spec_from_dict(record.spec)
            job = _Job(record=record, spec=spec,
                       shards=self._plan(spec), t_submit=time.monotonic())
            self.jobs[record.id] = job
            if record.terminal:
                continue
            # Restart a non-terminal job from the durable store: counters
            # reset to this lifetime so hits + simulated == total again —
            # shards the previous server finished come back as hits.
            record.store_hits = 0
            record.shards_simulated = 0
            record.shards_done = 0
            self._event(job, "resumed")
            self._enqueue(job)

    # -- submission ------------------------------------------------------------

    def _plan(self, spec: CampaignSpec) -> List[ShardSpec]:
        return plan_shards(spec.n, max(1, self.workers), self.shard_lanes)

    def submit(self, spec_dict: dict, tenant: str = "default",
               weight: float = 1.0) -> dict:
        """Validate, plan, cache-probe and queue one campaign.

        Returns the job's status dict.  Raises :class:`ServiceError`
        (bad spec → 400) or :class:`QueueFullError` (backpressure → 429,
        nothing queued).
        """
        if self._stopping:
            raise ServiceError("service is draining; resubmit after restart")
        tenant = str(tenant or "default")
        with self.tracer.span("serve.submit"):
            spec = spec_from_dict(spec_dict)
            job_id = f"j{self._next_job_num:06d}"
            record = JobRecord(
                id=job_id, tenant=tenant, weight=float(weight),
                spec=spec_to_dict(spec), submitted_seq=self._bump_seq(),
            )
            job = _Job(record=record, spec=spec, shards=self._plan(spec),
                       t_submit=time.monotonic())
            record.shards_total = len(job.shards)
            self._event(job, "submitted", tenant=tenant,
                        shards=len(job.shards))
            # The id is claimed only once _enqueue can no longer raise
            # QueueFullError, so a rejected submission leaves no trace.
            self._enqueue(job)
            self._next_job_num += 1
            self.jobs[job_id] = job
            self.metrics.inc("serve.jobs_submitted")
            self._persist(record)
            self._wake.set()
        return self.job_status(job_id)

    def _enqueue(self, job: _Job) -> None:
        """Probe the store for every shard; queue only the misses."""
        record = job.record
        record.shards_total = len(job.shards)
        pending: List[ShardSpec] = []
        hits = 0
        for shard in job.shards:
            payload = self.store.get(job.spec.shard_signature(shard))
            if payload is not None and payload.get("schema") == PAYLOAD_SCHEMA:
                job.payloads[shard.id] = adopt_payload(
                    payload, job.spec, shard
                )
                job.hit_ids.add(shard.id)
                hits += 1
                self._event(job, "shard-cache-hit", shard=shard.id)
            else:
                pending.append(shard)
        record.store_hits += hits
        record.shards_done = len(job.payloads)
        self.metrics.inc("serve.store_hits", hits)
        self.metrics.inc("serve.store_misses", len(pending))
        if not pending:
            self._finalize(job)
            return
        record.state = "queued"
        self.scheduler.submit(
            record.id, record.tenant, record.weight, pending
        )

    def _bump_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _event(self, job: _Job, kind: str, **data) -> None:
        ev = {"seq": self._bump_seq(),
              "t": round(time.monotonic() - self._t0, 4),
              "kind": kind}
        ev.update(data)
        job.events.append(ev)
        if len(job.events) > _EVENT_CAP:
            del job.events[: len(job.events) - _EVENT_CAP]

    # -- dispatch --------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            if self._stopping:
                return
            while self._idle:
                pick = self.scheduler.next()
                if pick is None:
                    break
                job_id, shard = pick
                job = self.jobs[job_id]
                wid = self._idle.popleft()
                attempt = job.attempts.get(shard.id, 0)
                task = {
                    "shard": (shard.id, shard.lo, shard.hi),
                    "attempt": attempt,
                    "resume": False,
                    "crash_cycle": None,
                    "stimulus": None,
                }
                handle = self._pool.handles.get(wid)
                if handle is None:
                    continue  # worker died between idle and dispatch
                handle.busy = (job_id, shard)
                if job.record.state == "queued":
                    job.record.state = "running"
                    self._persist(job.record)
                self._event(job, "shard-started", shard=shard.id,
                            worker=wid, attempt=attempt)
                self._pool.send(wid, (job_id, job.spec, task))
            self.metrics.set_gauge("serve.queue_depth", self.scheduler.queued)
            self.metrics.set_gauge("serve.inflight", self.scheduler.inflight)

    async def _watchdog_loop(self) -> None:
        """Process mode only: reap dead workers, requeue their shards."""
        while True:
            await asyncio.sleep(0.25)
            for h in self._pool.dead_workers():
                self._pool.remove(h.id)
                try:
                    self._idle.remove(h.id)
                except ValueError:
                    pass
                busy = h.busy
                self._pool.spawn()
                self.metrics.inc("serve.worker_restarts")
                if busy is None:
                    continue
                job_id, shard = busy
                job = self.jobs.get(job_id)
                if job is None:
                    continue
                try:
                    self.scheduler.task_done(job.record.tenant)
                except ServiceError:
                    pass
                if job.record.terminal:
                    continue
                attempt = job.attempts.get(shard.id, 0) + 1
                job.attempts[shard.id] = attempt
                if attempt > self.max_restarts:
                    self._fail(job, f"shard {shard.id} killed {attempt} "
                                    f"worker(s); giving up")
                    continue
                self._event(job, "shard-requeued", shard=shard.id,
                            attempt=attempt)
                self.scheduler.requeue_front(
                    job_id, job.record.tenant, job.record.weight, shard
                )
                self._wake.set()

    # -- worker messages -------------------------------------------------------

    def _on_message(self, msg) -> None:
        kind = msg[0]
        if kind in ("ready", "fatal"):
            wid = msg[1]
            if kind == "ready" and wid in self._pool.handles:
                self._idle.append(wid)
                self._wake.set()
            return
        if kind == "progress":
            _k, _wid, job_id, shard_id, cycles = msg
            job = self.jobs.get(job_id)
            if job is not None and not job.record.terminal:
                self._event(job, "progress", shard=shard_id, cycles=cycles)
            return
        if kind == "result":
            _k, wid, job_id, shard_id, payload = msg
            self._finish_shard(wid, job_id, shard_id, payload)
            return
        if kind == "error":
            _k, wid, job_id, shard_id, text = msg
            self._release_worker(wid, job_id)
            job = self.jobs.get(job_id)
            self.metrics.inc("serve.shard_errors")
            if job is not None and not job.record.terminal:
                self._fail(job, f"shard {shard_id} failed: {text}")
            self._wake.set()

    def _release_worker(self, wid: int, job_id: str) -> None:
        h = self._pool.handles.get(wid)
        if h is not None:
            h.busy = None
            self._idle.append(wid)
        job = self.jobs.get(job_id)
        tenant = job.record.tenant if job is not None else "default"
        try:
            self.scheduler.task_done(tenant)
        except ServiceError:
            pass  # already released by the watchdog for a dead worker

    def _finish_shard(self, wid: int, job_id: str, shard_id: int,
                      payload: dict) -> None:
        self._release_worker(wid, job_id)
        job = self.jobs.get(job_id)
        if job is None:
            self._wake.set()
            return
        shard = job.shards[shard_id]
        # Publish to the content-addressed store regardless of job state:
        # a cancelled job's finished shard is still a valid, reusable
        # result (the store stays consistent — keys never lie).
        self.store.put(job.spec.shard_signature(shard), payload)
        if job.record.terminal:
            self._event(job, "shard-discarded", shard=shard_id)
            self._wake.set()
            return
        job.payloads[shard_id] = payload
        job.record.shards_done = len(job.payloads)
        job.record.shards_simulated += 1
        self.metrics.inc("serve.shards_simulated")
        self.shard_log.append((job.record.tenant, job_id, shard_id))
        self._event(job, "shard-done", shard=shard_id, worker=wid,
                    cycles=payload.get("cycles_run", 0))
        if len(job.payloads) == len(job.shards):
            self._finalize(job)
        self._wake.set()

    # -- completion ------------------------------------------------------------

    def _finalize(self, job: _Job) -> None:
        record = job.record
        with self.tracer.span("serve.merge"):
            try:
                payloads = [job.payloads[s.id] for s in job.shards]
                result = merge_payloads(job.spec, payloads)
            except Exception as exc:
                self._fail(job, f"merge failed: {type(exc).__name__}: {exc}")
                return
        result.shards = [
            ShardOutcome(
                id=s.id, lo=s.lo, hi=s.hi,
                attempts=job.attempts.get(s.id, 0) + 1,
                cycles_run=job.payloads[s.id].get("cycles_run", 0),
                cached=s.id in job.hit_ids,
                cache_hit=s.id in job.hit_ids,
            )
            for s in job.shards
        ]
        result.workers = self.workers
        job.result = result
        record.state = "done"
        record.result_digest = outputs_digest(result.outputs)
        record.outputs = sorted(result.outputs)
        record.wall_seconds = round(time.monotonic() - job.t_submit, 4)
        self._event(job, "done", digest=record.result_digest,
                    hit_rate=record.progress()["hit_rate"])
        self.metrics.inc("serve.jobs_done")
        self._persist(record)
        if job.done_event is not None:
            job.done_event.set()

    def _fail(self, job: _Job, message: str) -> None:
        record = job.record
        record.state = "failed"
        record.error = message
        self.scheduler.cancel(record.id)
        self._event(job, "failed", error=message)
        self.metrics.inc("serve.jobs_failed")
        self._persist(record)
        if job.done_event is not None:
            job.done_event.set()

    def cancel(self, job_id: str) -> dict:
        job = self._get_job(job_id)
        record = job.record
        if record.terminal:
            return self.job_status(job_id)
        freed = self.scheduler.cancel(job_id)
        record.state = "cancelled"
        record.cancelled_shards = (
            record.shards_total - record.shards_done
        )
        self._event(job, "cancelled", released_shards=freed)
        self.metrics.inc("serve.jobs_cancelled")
        self._persist(record)
        if job.done_event is not None:
            job.done_event.set()
        self._wake.set()
        return self.job_status(job_id)

    # -- queries ---------------------------------------------------------------

    def _get_job(self, job_id: str) -> _Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise KeyError(job_id)
        return job

    def job_status(self, job_id: str, since: Optional[int] = None) -> dict:
        job = self._get_job(job_id)
        out = {"job": job.record.to_dict(),
               "progress": job.record.progress()}
        if since is not None:
            events = [e for e in job.events if e["seq"] > since]
        else:
            events = list(job.events)
        out["events"] = events
        out["next_since"] = events[-1]["seq"] if events else (since or 0)
        return out

    def job_result(self, job_id: str) -> dict:
        job = self._get_job(job_id)
        record = job.record
        if record.state != "done":
            raise ServiceError(
                f"job {job_id} is {record.state}, not done"
                + (f": {record.error}" if record.error else "")
            )
        result = job.result
        if result is None:
            result = self._reconstruct(job)
            job.result = result
        return {
            "job": record.to_dict(),
            "digest": record.result_digest,
            "outputs": encode_outputs(result.outputs),
            "faults": result.faults,
            "metrics": {
                "store_hits": record.store_hits,
                "shards_simulated": record.shards_simulated,
                "hit_rate": record.progress()["hit_rate"],
            },
        }

    def _reconstruct(self, job: _Job):
        """Rebuild a done job's merged result purely from the store
        (the post-restart path: records persist, merged arrays do not)."""
        payloads = []
        for shard in job.shards:
            payload = job.payloads.get(shard.id)
            if payload is None:
                payload = self.store.get(job.spec.shard_signature(shard))
                if payload is None:
                    raise ServiceError(
                        f"job {job.record.id}: shard {shard.id} result was "
                        "evicted from the store; resubmit the campaign"
                    )
                payload = adopt_payload(payload, job.spec, shard)
            payloads.append(payload)
        result = merge_payloads(job.spec, payloads)
        digest = outputs_digest(result.outputs)
        if (job.record.result_digest is not None
                and digest != job.record.result_digest):
            raise ServiceError(
                f"job {job.record.id}: reconstructed result digest "
                f"{digest[:12]}... != recorded "
                f"{job.record.result_digest[:12]}...; store corrupted"
            )
        return result

    def list_jobs(self, tenant: Optional[str] = None) -> List[dict]:
        out = []
        for job_id in sorted(self.jobs):
            r = self.jobs[job_id].record
            if tenant is not None and r.tenant != tenant:
                continue
            d = r.progress()
            d.update(id=r.id, tenant=r.tenant, weight=r.weight,
                     error=r.error, result_digest=r.result_digest)
            out.append(d)
        return out

    def service_metrics(self) -> dict:
        states: Dict[str, int] = {}
        for job in self.jobs.values():
            states[job.record.state] = states.get(job.record.state, 0) + 1
        return {
            "uptime_seconds": round(time.monotonic() - self._t0, 3),
            "workers": self.workers,
            "jobs": states,
            "queue_depth": self.scheduler.queued,
            "inflight": self.scheduler.inflight,
            "tenants": self.scheduler.tenant_stats(),
            "store": self.store.stats(),
            "metrics": self.metrics.dump(),
            "spans": {k: v.as_dict()
                      for k, v in self.tracer.aggregate().items()},
        }

    # -- HTTP ------------------------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            status, payload = await self._handle_request(reader)
        except Exception as exc:  # noqa: BLE001 - must answer the socket
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        body = json.dumps(payload).encode()
        reason = {200: "OK", 201: "Created", 400: "Bad Request",
                  404: "Not Found", 409: "Conflict",
                  429: "Too Many Requests", 503: "Service Unavailable",
                  500: "Internal Server Error"}.get(status, "OK")
        try:
            writer.write(
                f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n".encode() + body
            )
            await writer.drain()
            writer.close()
        except (ConnectionError, RuntimeError):
            pass

    async def _handle_request(self, reader) -> Tuple[int, dict]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}
        method, target = parts[0].upper(), parts[1]
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            key, _, value = line.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        raw = await reader.readexactly(length) if length else b""
        body = {}
        if raw:
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as exc:
                return 400, {"error": f"bad JSON body: {exc}"}
        url = urlsplit(target)
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}
        try:
            return self._route(method, url.path, query, body)
        except KeyError as exc:
            return 404, {"error": f"unknown job {exc.args[0]!r}"}
        except QueueFullError as exc:
            return 429, {"error": str(exc)}
        except ServiceError as exc:
            code = 503 if self._stopping else (
                409 if "not done" in str(exc) else 400
            )
            return code, {"error": str(exc)}

    def _route(self, method: str, path: str, query: dict,
               body: dict) -> Tuple[int, dict]:
        if method == "GET" and path == "/healthz":
            return 200, {"ok": True, "port": self.port,
                         "draining": self._stopping}
        if method == "GET" and path == "/metrics":
            return 200, self.service_metrics()
        if path == "/jobs":
            if method == "POST":
                status = self.submit(
                    body.get("spec"),
                    tenant=body.get("tenant", "default"),
                    weight=float(body.get("weight", 1.0)),
                )
                return 201, status
            if method == "GET":
                return 200, {"jobs": self.list_jobs(query.get("tenant"))}
        m = re.match(r"^/jobs/([^/]+)(/result|/cancel)?$", path)
        if m:
            job_id, sub = m.group(1), m.group(2)
            if sub is None and method == "GET":
                since = int(query["since"]) if "since" in query else None
                return 200, self.job_status(job_id, since=since)
            if sub == "/result" and method == "GET":
                return 200, self.job_result(job_id)
            if sub == "/cancel" and method == "POST":
                return 200, self.cancel(job_id)
        return 404, {"error": f"no route for {method} {path}"}


# ---------------------------------------------------------------------------
# Entry points


class BackgroundService:
    """Run a :class:`CampaignService` on its own thread + event loop.

    The handle the tests and embedders use::

        bg = BackgroundService(CampaignService(data_dir=..., workers=0))
        bg.start()
        ... talk to http://127.0.0.1:{bg.port} ...
        bg.stop(drain=True)   # the same path the SIGTERM handler takes
    """

    def __init__(self, service: CampaignService):
        self.service = service
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.service.port

    @property
    def base_url(self) -> str:
        return f"http://{self.service.host}:{self.service.port}"

    def start(self, timeout: float = 30.0) -> "BackgroundService":
        self._thread = threading.Thread(
            target=self._main, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ServiceError("service failed to start within timeout")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _main(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def boot():
            try:
                await self.service.start()
            except BaseException as exc:  # noqa: BLE001
                self._startup_error = exc
            finally:
                self._ready.set()

        self._loop.create_task(boot())
        self._loop.run_forever()
        self._loop.close()

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        if self._loop is None:
            return
        fut = asyncio.run_coroutine_threadsafe(
            self.service.shutdown(drain=drain, timeout=timeout), self._loop
        )
        fut.result(timeout=timeout + 10)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)


def run_service(service: CampaignService) -> int:
    """Blocking CLI entry: serve until SIGTERM/SIGINT, then drain."""

    async def main() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await service.start()
        print(f"repro serve: listening on "
              f"http://{service.host}:{service.port} "
              f"(workers={service.workers}, data={service.data_dir})",
              flush=True)
        await stop.wait()
        print("repro serve: draining...", flush=True)
        await service.shutdown(drain=True)
        print("repro serve: stopped", flush=True)

    asyncio.run(main())
    return 0
