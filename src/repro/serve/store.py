"""Content-addressed result store for per-shard simulation payloads.

The store maps a shard's *content key* — the sha256
:meth:`~repro.cluster.spec.CampaignSpec.shard_signature`, which covers
the design text, stimulus seed, cycle count, batch width, executor,
backend, run options, the shard's lane range and the faults re-based
into it — to the shard's complete result payload (the same plain-data
dict the cluster worker returns).  Because the key is derived from
*content*, not from which campaign or job produced the result:

* re-submitting an identical campaign resolves every shard by lookup —
  zero simulations, merged outputs byte-identical to the first run;
* an *edited* campaign (one lane fault added, say) misses only on the
  shards whose content actually changed — incremental re-simulation,
  the GATSPI/ADEPT re-run workload;
* results are shared across tenants, jobs, the ``repro serve`` service
  and ``repro campaign --store`` CLI runs pointed at the same root.

Layout: ``<root>/objects/<key[:2]>/<key>.pkl`` — a pickled payload
written atomically (temp + fsync + rename, the resilience layer's
primitive), stamped with a ``shard_key`` field that :meth:`get`
re-checks so a corrupt or misplaced object can never be served.

Eviction is LRU by file mtime (:meth:`get` touches the object): when
``max_bytes``/``max_entries`` are set, :meth:`gc` drops the
least-recently-used objects until both bounds hold.  The store is the
*cache*, not the ledger — evicting an entry only costs recomputation.
"""

from __future__ import annotations

import os
import pickle
import threading
from typing import List, Optional, Tuple

from repro.cluster.spec import CampaignSpec, ShardSpec
from repro.resilience.checkpoint import atomic_write_bytes
from repro.utils.errors import ServiceError

__all__ = ["ResultStore", "adopt_payload"]


def adopt_payload(payload: dict, spec: CampaignSpec, shard: ShardSpec) -> dict:
    """Re-stamp a stored payload for the campaign that is adopting it.

    A stored payload carries the ``signature`` of the campaign that
    *produced* it, which may legitimately differ from the adopter's
    (e.g. the producer had extra lane faults in other shards).  The
    shard key proves shard-level equivalence, so the adopter may take
    the result — but the merge layer (rightly) insists every payload
    carry the adopting campaign's signature.  Returns a shallow copy
    with ``signature``/``shard`` rewritten and provenance preserved in
    ``produced_by``; raises :class:`ServiceError` if the payload's lane
    range does not match ``shard`` (a store-corruption symptom the key
    check should have caught).
    """
    _sid, lo, hi = payload["shard"]
    if (lo, hi) != (shard.lo, shard.hi):
        raise ServiceError(
            f"stored shard payload covers lanes [{lo}, {hi}) but the "
            f"campaign expects [{shard.lo}, {shard.hi}); the store entry "
            "is corrupt"
        )
    out = dict(payload)
    out["produced_by"] = payload.get("produced_by", payload.get("signature"))
    out["signature"] = spec.signature()
    out["shard"] = (shard.id, shard.lo, shard.hi)
    return out


class ResultStore:
    """Durable, content-addressed store of per-shard result payloads.

    Thread-safe for use from the service's event loop plus its worker
    completion callbacks; multi-process safe for readers and writers on
    the same root (writes are atomic renames; a racing duplicate ``put``
    just rewrites identical content).
    """

    def __init__(
        self,
        root: str,
        max_bytes: Optional[int] = None,
        max_entries: Optional[int] = None,
    ):
        self.root = os.path.abspath(root)
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()
        os.makedirs(os.path.join(self.root, "objects"), exist_ok=True)

    def _path(self, key: str) -> str:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ServiceError(f"malformed store key {key!r}")
        return os.path.join(self.root, "objects", key[:2], f"{key}.pkl")

    # -- lookup / insert -------------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """The payload stored under ``key``, or None (counted as a miss).

        A readable object whose stamped ``shard_key`` disagrees with its
        filename is treated as corrupt: it is deleted and counted as a
        miss rather than served.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        except Exception:
            payload = None  # truncated/unreadable object
        if not isinstance(payload, dict) or payload.get("shard_key") != key:
            try:
                os.unlink(path)
            except OSError:
                pass
            with self._lock:
                self.misses += 1
            return None
        try:
            os.utime(path)  # LRU touch
        except OSError:
            pass
        with self._lock:
            self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> str:
        """Store ``payload`` under ``key`` (idempotent) and maybe GC."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        stamped = dict(payload)
        stamped["shard_key"] = key
        atomic_write_bytes(
            path, pickle.dumps(stamped, protocol=pickle.HIGHEST_PROTOCOL)
        )
        if self.max_bytes is not None or self.max_entries is not None:
            self.gc()
        return path

    def contains(self, key: str) -> bool:
        """Existence probe that does not touch hit/miss counters."""
        return os.path.exists(self._path(key))

    # -- maintenance -----------------------------------------------------------

    def _entries(self) -> List[Tuple[float, int, str]]:
        out = []
        objects = os.path.join(self.root, "objects")
        for dirpath, _dirs, files in os.walk(objects):
            for name in files:
                path = os.path.join(dirpath, name)
                try:
                    st = os.stat(path)
                except OSError:
                    continue
                out.append((st.st_mtime, st.st_size, path))
        return out

    def gc(self) -> int:
        """Evict least-recently-used objects past the configured bounds.

        Returns the number of objects removed.  With no bounds set this
        is a no-op — the store grows without limit and an operator prunes
        it out of band (it is just a directory of files).
        """
        entries = self._entries()
        total = sum(size for _m, size, _p in entries)
        removed = 0
        entries.sort()  # oldest mtime first
        for _mtime, size, path in entries:
            over_bytes = self.max_bytes is not None and total > self.max_bytes
            over_count = (
                self.max_entries is not None
                and len(entries) - removed > self.max_entries
            )
            if not over_bytes and not over_count:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            removed += 1
        with self._lock:
            self.evictions += removed
        return removed

    def stats(self) -> dict:
        entries = self._entries()
        with self._lock:
            hits, misses = self.hits, self.misses
            evictions = self.evictions
        total = hits + misses
        return {
            "root": self.root,
            "entries": len(entries),
            "bytes": sum(size for _m, size, _p in entries),
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "hit_rate": (hits / total) if total else 0.0,
            "max_bytes": self.max_bytes,
            "max_entries": self.max_entries,
        }
