"""Multi-tenant fair scheduling at shard granularity.

The service's unit of work is one *shard* (a contiguous lane range of
one campaign), so fairness is enforced where it matters: a 10,000-lane
campaign from one tenant cannot monopolize the worker pool — other
tenants' shards interleave with it shard-for-shard.

Three mechanisms, all deterministic (no clocks, no randomness — the
fairness tests assert exact interleavings):

* **Weighted round-robin across tenants** — smooth WRR (the nginx
  algorithm): each eligible tenant's ``current`` credit grows by its
  weight every pick; the largest credit wins and pays back the total
  eligible weight.  Weight 2 vs 1 yields the A, B, A, A, B, A ...
  pattern rather than bursts.
* **Round-robin across a tenant's campaigns** — within a tenant, jobs
  take turns shard-for-shard (a tenant's second submission does not
  wait for its first to finish).
* **Per-tenant in-flight caps + bounded queue** — ``inflight_cap``
  bounds how many of one tenant's shards may occupy workers at once;
  ``max_queued`` bounds the total queued shards, and a submission that
  would exceed it raises :class:`QueueFullError` (HTTP 429 on the
  wire) instead of growing without bound.

Cancellation removes a job's queued shards immediately (releasing
queue slots); its in-flight shards finish in the workers and are
discarded by the service on completion.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Any, Dict, List, Optional, Tuple

from repro.utils.errors import QueueFullError, ServiceError

__all__ = ["FairScheduler"]


class _TenantState:
    __slots__ = ("name", "weight", "current", "inflight", "jobs")

    def __init__(self, name: str, weight: float):
        self.name = name
        self.weight = weight
        self.current = 0.0  # smooth-WRR credit
        self.inflight = 0
        # job_id -> deque of pending tasks; OrderedDict gives intra-tenant
        # round-robin by re-inserting the picked job at the back.
        self.jobs: "OrderedDict[str, deque]" = OrderedDict()

    @property
    def pending(self) -> int:
        return sum(len(q) for q in self.jobs.values())


class FairScheduler:
    """Deterministic weighted-fair shard queue (not thread-safe: the
    service drives it from its single event loop)."""

    def __init__(
        self,
        max_queued: int = 1024,
        inflight_cap: Optional[int] = None,
    ):
        if max_queued <= 0:
            raise ServiceError(
                f"max_queued must be positive, got {max_queued}"
            )
        if inflight_cap is not None and inflight_cap <= 0:
            raise ServiceError(
                f"inflight_cap must be positive, got {inflight_cap}"
            )
        self.max_queued = max_queued
        self.inflight_cap = inflight_cap
        self._tenants: Dict[str, _TenantState] = {}
        self._job_tenant: Dict[str, str] = {}
        self._queued = 0

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        job_id: str,
        tenant: str,
        weight: float,
        tasks: List[Any],
    ) -> None:
        """Queue ``tasks`` (shards) for ``job_id`` under ``tenant``.

        Raises :class:`QueueFullError` (queuing *none* of the tasks)
        when they would push the total queue past ``max_queued``.
        """
        if weight <= 0:
            raise ServiceError(f"tenant weight must be positive, got {weight}")
        if job_id in self._job_tenant:
            raise ServiceError(f"job {job_id!r} is already queued")
        if self._queued + len(tasks) > self.max_queued:
            raise QueueFullError(
                f"queue full: {self._queued} shard(s) queued, submitting "
                f"{len(tasks)} more would exceed max_queued={self.max_queued}"
            )
        t = self._tenants.get(tenant)
        if t is None:
            t = self._tenants[tenant] = _TenantState(tenant, weight)
        t.weight = weight  # latest submission wins
        t.jobs[job_id] = deque(tasks)
        self._job_tenant[job_id] = tenant
        self._queued += len(tasks)

    # -- picking ---------------------------------------------------------------

    def _eligible(self) -> List[_TenantState]:
        return [
            t for t in self._tenants.values()
            if t.pending > 0
            and (self.inflight_cap is None or t.inflight < self.inflight_cap)
        ]

    def next(self) -> Optional[Tuple[str, Any]]:
        """Pick the next (job_id, task) fairly, or None if nothing is
        eligible (empty, or every pending tenant is at its cap).

        The pick counts against the tenant's in-flight total until the
        service calls :meth:`task_done`.
        """
        eligible = self._eligible()
        if not eligible:
            return None
        total = sum(t.weight for t in eligible)
        for t in eligible:
            t.current += t.weight
        # Stable tie-break on tenant name keeps the order deterministic.
        best = max(eligible, key=lambda t: (t.current, t.name))
        best.current -= total
        job_id, q = next(iter(best.jobs.items()))
        task = q.popleft()
        if q:
            best.jobs.move_to_end(job_id)  # intra-tenant round-robin
        else:
            del best.jobs[job_id]
            del self._job_tenant[job_id]
        best.inflight += 1
        self._queued -= 1
        return job_id, task

    def task_done(self, tenant: str) -> None:
        """Release one in-flight slot for ``tenant`` (shard finished,
        failed, or was discarded after cancellation)."""
        t = self._tenants.get(tenant)
        if t is None or t.inflight <= 0:
            raise ServiceError(
                f"task_done({tenant!r}) without a matching pick"
            )
        t.inflight -= 1

    def requeue_front(self, job_id: str, tenant: str, weight: float,
                      task: Any) -> None:
        """Put a picked task back at the *front* of its job's queue.

        The worker-death retry path: the task was already admitted once,
        so this deliberately bypasses ``max_queued`` — dropping admitted
        work on backpressure would lose a shard.
        """
        t = self._tenants.get(tenant)
        if t is None:
            t = self._tenants[tenant] = _TenantState(tenant, weight)
        q = t.jobs.get(job_id)
        if q is None:
            q = t.jobs[job_id] = deque()
            t.jobs.move_to_end(job_id, last=False)
            self._job_tenant[job_id] = tenant
        q.appendleft(task)
        self._queued += 1

    # -- cancellation ----------------------------------------------------------

    def cancel(self, job_id: str) -> int:
        """Drop ``job_id``'s queued tasks; returns how many were freed.

        In-flight tasks are untouched — they drain normally and the
        caller releases them with :meth:`task_done`.
        """
        tenant = self._job_tenant.pop(job_id, None)
        if tenant is None:
            return 0
        t = self._tenants[tenant]
        q = t.jobs.pop(job_id, None)
        freed = len(q) if q else 0
        self._queued -= freed
        return freed

    # -- introspection ---------------------------------------------------------

    @property
    def queued(self) -> int:
        return self._queued

    @property
    def inflight(self) -> int:
        return sum(t.inflight for t in self._tenants.values())

    def tenant_stats(self) -> Dict[str, dict]:
        return {
            name: {
                "weight": t.weight,
                "queued": t.pending,
                "inflight": t.inflight,
                "jobs": list(t.jobs),
            }
            for name, t in sorted(self._tenants.items())
        }
