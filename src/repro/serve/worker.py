"""The campaign service's shard worker loop.

Unlike a :mod:`repro.cluster` worker — which is born bound to one
campaign — a *service* worker serves shards from **many** campaigns
over its lifetime, so it keeps a small LRU of compiled
:class:`~repro.cluster.worker._WorkerContext` objects keyed by campaign
signature: the first shard of a new campaign pays the compile, every
later shard of that campaign reuses it (the paper's amortization
argument applied across jobs instead of lanes).

The same loop body runs in two homes:

* ``workers > 0`` — spawn-started processes (``service_worker_main`` is
  the ``mp.Process`` target; tasks/results cross mp queues), one per
  worker, exactly like the cluster pool.
* ``workers == 0`` — one plain thread inside the server process with
  ``queue.Queue``s (the deterministic test/debug mode, mirroring the
  coordinator's inline mode).

Messages up the result queue::

    ("ready",    worker_id, None,   pid)
    ("progress", worker_id, job_id, shard_id, cycles_done)
    ("result",   worker_id, job_id, shard_id, payload)
    ("error",    worker_id, job_id, shard_id, "Type: text")
    ("fatal",    worker_id, None,   None,     "Type: text")

``progress`` events originate from the simulator's (rate-limited)
``progress`` hook via the cluster worker's heartbeat machinery — the
service turns them into the incremental job-status feed.
"""

from __future__ import annotations

import os
from collections import OrderedDict

from repro.cluster.worker import _WorkerContext

__all__ = ["service_worker_main", "DEFAULT_CONTEXT_CACHE"]

#: Compiled designs kept warm per worker; evicting one only costs a
#: recompile on that campaign's next shard.
DEFAULT_CONTEXT_CACHE = 4


class _HeartbeatShim:
    """Adapts cluster-worker heartbeats into job-tagged progress events.

    :class:`_WorkerContext` emits ``("heartbeat", wid, shard_id,
    cycles, now)`` — it has no concept of a job.  The shim stamps the
    currently running job id on and forwards everything else unchanged.
    """

    def __init__(self, result_q, worker_id: int):
        self.result_q = result_q
        self.worker_id = worker_id
        self.job_id = None

    def put(self, msg) -> None:
        if msg and msg[0] == "heartbeat":
            _kind, wid, shard_id, cycles, _now = msg
            self.result_q.put(
                ("progress", wid, self.job_id, shard_id, int(cycles))
            )


def service_worker_main(worker_id: int, task_q, result_q, cfg: dict) -> None:
    """Serve ``(job_id, spec, task)`` messages until the ``None`` sentinel.

    A failure while building a context or running a shard is reported
    as an ``error`` for that job and the worker keeps serving — one
    tenant's broken design must not take the worker away from everyone
    else (deterministic errors fail the *job*, never the service).
    """
    shim = _HeartbeatShim(result_q, worker_id)
    contexts: "OrderedDict[str, _WorkerContext]" = OrderedDict()
    cache_size = max(1, int(cfg.get("max_cached_designs",
                                    DEFAULT_CONTEXT_CACHE)))
    result_q.put(("ready", worker_id, None, os.getpid()))
    while True:
        msg = task_q.get()
        if msg is None:
            break
        job_id, spec, task = msg
        shim.job_id = job_id
        shard_id = task["shard"][0]
        try:
            sig = spec.signature()
            ctx = contexts.get(sig)
            if ctx is None:
                ctx = _WorkerContext(worker_id, spec, shim, cfg)
                contexts[sig] = ctx
                while len(contexts) > cache_size:
                    contexts.popitem(last=False)
            else:
                contexts.move_to_end(sig)
            payload = ctx.run_shard(task)
        except BaseException as exc:  # noqa: BLE001 - must cross the queue
            result_q.put(
                ("error", worker_id, job_id, shard_id,
                 f"{type(exc).__name__}: {exc}")
            )
            continue
        result_q.put(("result", worker_id, job_id, shard_id, payload))
