"""Wire/durable representations for the campaign service.

Everything the service exchanges with clients — and everything it
persists per job — is plain JSON: a :class:`~repro.cluster.spec.CampaignSpec`
round-trips through :func:`spec_to_dict`/:func:`spec_from_dict`, a job's
lifecycle is a :class:`JobRecord`, and merged numpy outputs serialize
through :func:`encode_outputs` (per-lane hex strings plus dtype/shape,
lossless for the uint64-tier arrays the simulator produces).

:func:`outputs_digest` is the byte-identity fingerprint the acceptance
tests and the CI smoke job compare: sha256 over every output's name,
dtype, shape and raw bytes in name order.  Two runs whose digests match
produced bit-identical merged results.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.spec import CampaignSpec
from repro.utils.errors import ServiceError

__all__ = [
    "JOB_STATES",
    "JobRecord",
    "spec_to_dict",
    "spec_from_dict",
    "encode_outputs",
    "decode_outputs",
    "outputs_digest",
]

#: Lifecycle: queued -> running -> done | failed | cancelled.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = ("done", "failed", "cancelled")


def spec_to_dict(spec: CampaignSpec) -> dict:
    """A JSON-safe dict that :func:`spec_from_dict` restores exactly."""
    d = asdict(spec)
    d["lane_faults"] = [
        [int(c), int(l), str(r)] for c, l, r in spec.lane_faults
    ]
    return d


def spec_from_dict(d: dict) -> CampaignSpec:
    """Rebuild a validated :class:`CampaignSpec` from client JSON.

    Unknown keys are rejected with a clear error (a typo'd field name
    must not silently fall back to a default and simulate the wrong
    campaign); ``lane_faults`` entries become the tuples the spec
    expects.
    """
    if not isinstance(d, dict):
        raise ServiceError(f"spec must be a JSON object, got {type(d).__name__}")
    known = {f.name for f in fields(CampaignSpec)}
    unknown = sorted(set(d) - known)
    if unknown:
        raise ServiceError(
            "unknown spec field(s) " + ", ".join(repr(u) for u in unknown)
            + "; known fields: " + ", ".join(sorted(known))
        )
    kw = dict(d)
    try:
        kw["lane_faults"] = [
            (int(c), int(l), str(r)) for c, l, r in kw.get("lane_faults", [])
        ]
    except (TypeError, ValueError) as exc:
        raise ServiceError(
            f"lane_faults entries must be [cycle, lane, reason] triples: {exc}"
        ) from exc
    try:
        spec = CampaignSpec(**kw)
        spec.validate()
    except ServiceError:
        raise
    except Exception as exc:  # TypeError, ClusterError, ... -> HTTP 400
        raise ServiceError(f"bad spec: {exc}") from exc
    return spec


# -- merged outputs over the wire ---------------------------------------------


def encode_outputs(outputs: Dict[str, np.ndarray]) -> dict:
    """Numpy outputs as JSON: hex value strings + dtype + shape."""
    enc = {}
    for name in sorted(outputs):
        arr = np.asarray(outputs[name])
        enc[name] = {
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
            "hex": [format(int(v), "x") for v in arr.reshape(-1)],
        }
    return enc


def decode_outputs(enc: dict) -> Dict[str, np.ndarray]:
    out = {}
    for name, rec in enc.items():
        arr = np.array([int(h, 16) for h in rec["hex"]],
                       dtype=np.dtype(rec["dtype"]))
        out[name] = arr.reshape(rec["shape"])
    return out


def outputs_digest(outputs: Dict[str, np.ndarray]) -> str:
    """sha256 byte-identity fingerprint of a merged output set."""
    h = hashlib.sha256()
    for name in sorted(outputs):
        arr = np.ascontiguousarray(outputs[name])
        h.update(f"{name}:{arr.dtype}:{arr.shape};".encode())
        h.update(arr.tobytes())
    return h.hexdigest()


# -- job lifecycle ------------------------------------------------------------


@dataclass
class JobRecord:
    """One submitted campaign's durable state.

    This is what ``<data_dir>/jobs/<id>.json`` holds and what the
    status endpoint returns (minus the events, which are in-memory and
    served incrementally).  Shard *results* never live here — they live
    in the content-addressed store, which is how a restarted server
    resumes a half-finished job without redoing its completed shards.
    """

    id: str
    tenant: str
    weight: float
    spec: dict  # spec_to_dict form
    state: str = "queued"
    submitted_seq: int = 0
    shards_total: int = 0
    shards_done: int = 0
    store_hits: int = 0
    shards_simulated: int = 0
    cancelled_shards: int = 0
    error: Optional[str] = None
    result_digest: Optional[str] = None
    wall_seconds: float = 0.0
    outputs: List[str] = field(default_factory=list)  # output signal names

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "JobRecord":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in known})

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def progress(self) -> dict:
        return {
            "state": self.state,
            "shards_done": self.shards_done,
            "shards_total": self.shards_total,
            "store_hits": self.store_hits,
            "shards_simulated": self.shards_simulated,
            "hit_rate": (
                self.store_hits / self.shards_total
                if self.shards_total else 0.0
            ),
        }
