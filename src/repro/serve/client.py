"""Synchronous client for the campaign service (stdlib ``http.client``).

The library surface behind the ``repro submit`` / ``repro jobs`` /
``repro result`` / ``repro cancel`` subcommands, and the handle the
tests drive the service with.  Every method speaks the JSON API
documented in :mod:`repro.serve.server`; HTTP error statuses raise
:class:`ServiceError` (429 raises :class:`QueueFullError` so callers
can implement backoff).
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Optional
from urllib.parse import urlencode, urlsplit

from repro.cluster.spec import CampaignSpec
from repro.serve.protocol import spec_to_dict
from repro.utils.errors import QueueFullError, ServiceError

__all__ = ["ServiceClient"]


class ServiceClient:
    """Talk to one ``repro serve`` instance at ``base_url``."""

    def __init__(self, base_url: str = "http://127.0.0.1:8463",
                 timeout: float = 30.0):
        url = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if url.scheme not in ("", "http"):
            raise ServiceError(
                f"only http:// service URLs are supported, got {base_url!r}"
            )
        self.host = url.hostname or "127.0.0.1"
        self.port = url.port or 8463
        self.timeout = timeout

    # -- transport -------------------------------------------------------------

    def _request(self, method: str, path: str, body: Optional[dict] = None,
                 query: Optional[dict] = None) -> dict:
        if query:
            path = f"{path}?{urlencode(query)}"
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            try:
                conn.request(method, path, body=payload, headers=headers)
                resp = conn.getresponse()
                raw = resp.read()
            except (ConnectionError, OSError) as exc:
                raise ServiceError(
                    f"cannot reach service at {self.host}:{self.port}: {exc}"
                ) from exc
            try:
                data = json.loads(raw) if raw else {}
            except json.JSONDecodeError as exc:
                raise ServiceError(
                    f"service returned non-JSON ({resp.status}): {raw[:200]!r}"
                ) from exc
            if resp.status == 429:
                raise QueueFullError(data.get("error", "queue full"))
            if resp.status >= 400:
                raise ServiceError(
                    data.get("error", f"HTTP {resp.status} on {method} {path}")
                )
            return data
        finally:
            conn.close()

    # -- API -------------------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def wait_ready(self, timeout: float = 15.0, poll: float = 0.1) -> dict:
        """Poll ``/healthz`` until the server answers (startup races)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except ServiceError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll)

    def submit(self, spec, tenant: str = "default",
               weight: float = 1.0) -> dict:
        """Submit a campaign; ``spec`` is a CampaignSpec or its dict."""
        if isinstance(spec, CampaignSpec):
            spec = spec_to_dict(spec)
        return self._request(
            "POST", "/jobs",
            body={"spec": spec, "tenant": tenant, "weight": weight},
        )

    def jobs(self, tenant: Optional[str] = None) -> list:
        query = {"tenant": tenant} if tenant else None
        return self._request("GET", "/jobs", query=query)["jobs"]

    def status(self, job_id: str, since: Optional[int] = None) -> dict:
        query = {"since": since} if since is not None else None
        return self._request("GET", f"/jobs/{job_id}", query=query)

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 0.05) -> dict:
        """Block until ``job_id`` reaches a terminal state.

        Polls the incremental status endpoint with a ``since`` cursor
        (each poll only transfers new events) and returns the final
        status dict; raises :class:`ServiceError` on timeout.
        """
        deadline = time.monotonic() + timeout
        since = 0
        while True:
            status = self.status(job_id, since=since)
            since = status["next_since"]
            if status["job"]["state"] in ("done", "failed", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out waiting for job {job_id} "
                    f"(state {status['job']['state']})"
                )
            time.sleep(poll)
