"""Known-bits dataflow over the RTL graph.

A :class:`KnownBits` value is the classic two-mask abstract domain: for
an unsigned value of ``width`` bits, ``ones`` marks bit positions proven
to be 1 and ``zeros`` positions proven to be 0 (the remaining positions
are unknown).  The transfer functions below mirror the package's scalar
reference semantics (:func:`repro.baselines.reference.eval_expr`):
everything is unsigned, operations evaluate at the annotated context
width, and assignments truncate to the target width.

Two consumers:

* the dataflow lint rules (``const-cond``, ``const-compare``,
  ``redundant-mask`` in :mod:`repro.lint.rules`) — they ask whether a
  condition, comparison or mask is provably constant/redundant;
* the translation validator (:mod:`repro.verify.rules`) — it re-proves
  the :class:`~repro.core.codegen.FusedExprCodegen` rewrite claims
  (dropped constant-zero branches, increment-mux peepholes, demand-width
  truncation) through this engine, which shares **no code** with the
  emitter it checks.

Soundness contract: every transfer function may forget information
(return fewer known bits) but must never claim a bit the concrete
semantics could flip.  When in doubt, return :func:`top`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.elaborate.constfold import try_const
from repro.rtlir.graph import RtlGraph
from repro.verilog import ast_nodes as A

__all__ = ["KnownBits", "top", "const", "analyze_graph", "expr_bits", "same_expr"]


def _mask(width: int) -> int:
    return (1 << width) - 1 if width > 0 else 0


@dataclass(frozen=True)
class KnownBits:
    """Bit-level facts about one unsigned ``width``-bit value."""

    width: int
    ones: int  # bits proven 1
    zeros: int  # bits proven 0

    @property
    def mask(self) -> int:
        return _mask(self.width)

    @property
    def unknown(self) -> int:
        return self.mask & ~(self.ones | self.zeros)

    @property
    def is_const(self) -> bool:
        return self.unknown == 0

    @property
    def value(self) -> int:
        """The proven constant value (only meaningful when ``is_const``)."""
        return self.ones

    @property
    def max_value(self) -> int:
        return self.mask & ~self.zeros

    @property
    def min_value(self) -> int:
        return self.ones

    def truth(self) -> Optional[bool]:
        """Provable truthiness: True/False, or None when unknown."""
        if self.ones:
            return True
        if self.max_value == 0:
            return False
        return None


def top(width: int) -> KnownBits:
    return KnownBits(width, 0, 0)


def const(value: int, width: int) -> KnownBits:
    v = value & _mask(width)
    return KnownBits(width, v, _mask(width) & ~v)


def _bool(value: Optional[bool], width: int = 1) -> KnownBits:
    """A 0/1 result at ``width`` (high bits always known zero)."""
    if value is None:
        return KnownBits(width, 0, _mask(width) & ~1)
    return const(1 if value else 0, width)


def resize(kb: KnownBits, width: int) -> KnownBits:
    """Zero-extend or truncate to ``width`` (assignment semantics)."""
    if width == kb.width:
        return kb
    m = _mask(width)
    if width < kb.width:
        return KnownBits(width, kb.ones & m, kb.zeros & m)
    # Zero extension: the new high bits are known zero.
    high = m & ~_mask(kb.width)
    return KnownBits(width, kb.ones, kb.zeros | high)


# ---------------------------------------------------------------------------
# Transfer functions (all at a shared result width)
# ---------------------------------------------------------------------------


def and_(a: KnownBits, b: KnownBits) -> KnownBits:
    return KnownBits(a.width, a.ones & b.ones, a.zeros | b.zeros)


def or_(a: KnownBits, b: KnownBits) -> KnownBits:
    return KnownBits(a.width, a.ones | b.ones, a.zeros & b.zeros)


def xor(a: KnownBits, b: KnownBits) -> KnownBits:
    known = (a.ones | a.zeros) & (b.ones | b.zeros)
    v = (a.ones ^ b.ones) & known
    return KnownBits(a.width, v, known & ~v)


def not_(a: KnownBits) -> KnownBits:
    return KnownBits(a.width, a.zeros, a.ones)


def join(a: KnownBits, b: KnownBits) -> KnownBits:
    """Least upper bound: keep only facts proven on both paths."""
    return KnownBits(a.width, a.ones & b.ones, a.zeros & b.zeros)


def shl(a: KnownBits, amount: int) -> KnownBits:
    m = a.mask
    if amount >= a.width:
        return const(0, a.width)
    return KnownBits(
        a.width,
        (a.ones << amount) & m,
        ((a.zeros << amount) | _mask(amount)) & m,
    )


def shr(a: KnownBits, amount: int) -> KnownBits:
    m = a.mask
    if amount >= a.width:
        return const(0, a.width)
    high = m & ~(m >> amount)
    return KnownBits(a.width, a.ones >> amount, (a.zeros >> amount) | high)


def _leading_zeros(width: int, max_value: int) -> KnownBits:
    """TOP except the high bits an interval bound proves zero."""
    m = _mask(width)
    return KnownBits(width, 0, m & ~_mask(max_value.bit_length()))


def add(a: KnownBits, b: KnownBits) -> KnownBits:
    if a.is_const and b.is_const:
        return const(a.value + b.value, a.width)
    # Low bits: ripple the carry through positions known on both sides.
    ones = zeros = 0
    carry = 0
    for i in range(a.width):
        bit = 1 << i
        if (a.ones | a.zeros) & bit and (b.ones | b.zeros) & bit:
            s = bool(a.ones & bit) + bool(b.ones & bit) + carry
            if s & 1:
                ones |= bit
            else:
                zeros |= bit
            carry = s >> 1
        else:
            break
    out = KnownBits(a.width, ones, zeros)
    hi = a.max_value + b.max_value
    if hi <= a.mask:  # no wrap possible: interval bounds the high bits
        lead = _leading_zeros(a.width, hi)
        out = KnownBits(a.width, out.ones | lead.ones, out.zeros | lead.zeros)
    return out


def sub(a: KnownBits, b: KnownBits) -> KnownBits:
    if a.is_const and b.is_const:
        return const(a.value - b.value, a.width)
    if a.min_value >= b.max_value:  # no wrap: result <= a.max
        return _leading_zeros(a.width, a.max_value)
    return top(a.width)


def mul(a: KnownBits, b: KnownBits) -> KnownBits:
    if a.is_const and b.is_const:
        return const(a.value * b.value, a.width)
    if a.max_value == 0 or b.max_value == 0:
        return const(0, a.width)
    hi = a.max_value * b.max_value
    if hi <= a.mask:
        return _leading_zeros(a.width, hi)
    return top(a.width)


def div(a: KnownBits, b: KnownBits) -> KnownBits:
    if a.is_const and b.is_const:
        # Division by zero yields the two-state sentinel 0 (see bitvec).
        return const(a.value // b.value if b.value else 0, a.width)
    return _leading_zeros(a.width, a.max_value)


def mod(a: KnownBits, b: KnownBits) -> KnownBits:
    if a.is_const and b.is_const:
        return const(a.value % b.value if b.value else 0, a.width)
    bound = a.max_value
    if b.min_value > 0:
        bound = min(bound, b.max_value - 1)
    return _leading_zeros(a.width, bound)


def eq(a: KnownBits, b: KnownBits) -> Optional[bool]:
    if a.is_const and b.is_const:
        return a.value == b.value
    # A position proven 1 on one side and 0 on the other decides it.
    if (a.ones & b.zeros) | (a.zeros & b.ones):
        return False
    if a.min_value > b.max_value or b.min_value > a.max_value:
        return False
    return None


def lt(a: KnownBits, b: KnownBits) -> Optional[bool]:
    if a.max_value < b.min_value:
        return True
    if a.min_value >= b.max_value:
        return False
    return None


# ---------------------------------------------------------------------------
# Expression evaluation
# ---------------------------------------------------------------------------


def expr_bits(
    e: A.Expr,
    env: Dict[str, KnownBits],
    graph: Optional[RtlGraph] = None,
    width: Optional[int] = None,
) -> KnownBits:
    """Known bits of ``e`` at ``width`` (default: its annotated context).

    ``env`` maps signal names to their current facts; unbound names are
    TOP at their declared width when ``graph`` is given, else TOP at the
    use width.  Never raises on unannotated expressions — a zero width
    degrades to TOP(0), which proves nothing.
    """
    w = width if width is not None else (e.ctx_width or e.width)
    if w <= 0:
        return top(0)
    kb = _eval(e, env, graph, w)
    return kb


def _signal_width(name: str, graph: Optional[RtlGraph]) -> Optional[int]:
    if graph is None:
        return None
    sig = graph.design.signals.get(name)
    if sig is not None:
        return sig.width
    memo = graph.design.memories.get(name)
    if memo is not None:
        return memo.width
    return None


def _load(name: str, env: Dict[str, KnownBits], graph, w: int) -> KnownBits:
    kb = env.get(name)
    if kb is None:
        declared = _signal_width(name, graph)
        kb = top(declared if declared is not None else w)
    return resize(kb, w)


def _eval(e: A.Expr, env, graph, w: int) -> KnownBits:
    if isinstance(e, A.Number):
        return const(e.value, w)
    if isinstance(e, A.Ident):
        return _load(e.name, env, graph, w)
    if isinstance(e, A.Unary):
        return _unary(e, env, graph, w)
    if isinstance(e, A.Binary):
        return _binary(e, env, graph, w)
    if isinstance(e, A.Ternary):
        c = expr_bits(e.cond, env, graph).truth()
        if c is True:
            return _eval_at(e.then, env, graph, w)
        if c is False:
            return _eval_at(e.other, env, graph, w)
        return join(_eval_at(e.then, env, graph, w), _eval_at(e.other, env, graph, w))
    if isinstance(e, A.Concat):
        out = const(0, w)
        total = 0
        for p in reversed(e.parts):  # parts are MSB-first
            pw = p.width
            if pw <= 0:
                return top(w)
            pk = resize(expr_bits(p, env, graph, width=pw), w)
            out = or_(out, shl(pk, total) if total else pk)
            total += pw
            if total >= w:
                break
        if total < w:  # bits above the concat are zero
            high = _mask(w) & ~_mask(total)
            out = KnownBits(w, out.ones, out.zeros | high)
        return out
    if isinstance(e, A.Repeat):
        cnt = try_const(e.count)
        vw = e.value.width
        if cnt is None or vw <= 0:
            return top(w)
        piece = expr_bits(e.value, env, graph, width=vw)
        out = const(0, w)
        for i in range(int(cnt)):
            shifted = shl(resize(piece, w), i * vw) if i else resize(piece, w)
            out = or_(out, shifted)
            if (i + 1) * vw >= w:
                break
        if int(cnt) * vw < w:
            high = _mask(w) & ~_mask(int(cnt) * vw)
            out = KnownBits(w, out.ones, out.zeros | high)
        return out
    if isinstance(e, A.Index):
        if e.is_memory:
            mw = _signal_width(e.base, graph)
            return resize(top(mw), w) if mw else top(w)
        idx = try_const(e.index)
        base_w = _signal_width(e.base, graph)
        if idx is None:
            return _bool(None, w)
        if base_w is not None and idx >= base_w:
            return const(0, w)  # out-of-range bit select reads zero
        base = _load(e.base, env, graph, base_w or (idx + 1))
        bit = 1 << int(idx)
        if base.ones & bit:
            return const(1, w)
        if base.zeros & bit:
            return const(0, w)
        return _bool(None, w)
    if isinstance(e, A.PartSelect):
        lsb = getattr(e, "_lsb_i", None)
        if lsb is None:
            lsb = try_const(e.lsb)
        if lsb is None or e.width <= 0:
            return top(w)
        base_w = _signal_width(e.base, graph)
        base = _load(e.base, env, graph, max(base_w or 0, int(lsb) + e.width))
        return resize(resize(shr(base, int(lsb)), e.width), w)
    return top(w)


def _eval_at(e: A.Expr, env, graph, w: int) -> KnownBits:
    """A subexpression folded into a ``w``-wide result (zext/truncate)."""
    sub_w = e.ctx_width or e.width or w
    return resize(expr_bits(e, env, graph, width=sub_w), w)


def _unary(e: A.Unary, env, graph, w: int) -> KnownBits:
    op = e.op
    ow = e.operand.ctx_width or e.operand.width
    if op == "!":
        t = expr_bits(e.operand, env, graph).truth()
        return _bool(None if t is None else not t, w)
    if op in ("&", "~&", "|", "~|", "^", "~^", "^~"):
        if ow <= 0:
            return _bool(None, w)
        a = expr_bits(e.operand, env, graph, width=ow)
        if op in ("&", "~&"):
            if a.ones == a.mask:
                r: Optional[bool] = True
            elif a.zeros:
                r = False
            else:
                r = None
            if op == "~&" and r is not None:
                r = not r
            return _bool(r, w)
        if op in ("|", "~|"):
            r = a.truth()
            if op == "~|" and r is not None:
                r = not r
            return _bool(r, w)
        if a.is_const:  # ^ / ~^
            r = bool(bin(a.value).count("1") & 1)
            if op != "^":
                r = not r
            return _bool(r, w)
        return _bool(None, w)
    a = _eval_at(e.operand, env, graph, w)
    if op == "~":
        return not_(a)
    if op == "-":
        return const(-a.value, w) if a.is_const else top(w)
    if op == "+":
        return a
    return top(w)


_CMP_OPS = {"<", "<=", ">", ">=", "==", "!="}


def compare(op: str, a: KnownBits, b: KnownBits) -> Optional[bool]:
    """Provable result of an unsigned comparison, or None."""
    if op == "==":
        return eq(a, b)
    if op == "!=":
        r = eq(a, b)
        return None if r is None else not r
    if op == "<":
        return lt(a, b)
    if op == ">":
        return lt(b, a)
    if op == "<=":
        r = lt(b, a)
        return None if r is None else not r
    if op == ">=":
        r = lt(a, b)
        return None if r is None else not r
    return None


def _binary(e: A.Binary, env, graph, w: int) -> KnownBits:
    op = e.op
    if op in _CMP_OPS:
        cw = max(e.left.ctx_width or e.left.width,
                 e.right.ctx_width or e.right.width)
        if cw <= 0:
            return _bool(None, w)
        a = expr_bits(e.left, env, graph, width=cw)
        b = expr_bits(e.right, env, graph, width=cw)
        return _bool(compare(op, a, b), w)
    if op in ("&&", "||"):
        ta = expr_bits(e.left, env, graph).truth()
        tb = expr_bits(e.right, env, graph).truth()
        if op == "&&":
            if ta is False or tb is False:
                return _bool(False, w)
            if ta is True and tb is True:
                return _bool(True, w)
        else:
            if ta is True or tb is True:
                return _bool(True, w)
            if ta is False and tb is False:
                return _bool(False, w)
        return _bool(None, w)
    if op in ("<<", "<<<", ">>", ">>>"):
        a = _eval_at(e.left, env, graph, w)
        amt = expr_bits(e.right, env, graph)
        if amt.is_const:
            return shl(a, amt.value) if op in ("<<", "<<<") else shr(a, amt.value)
        if op in (">>", ">>>"):
            return _leading_zeros(w, a.max_value)
        return top(w)
    a = _eval_at(e.left, env, graph, w)
    b = _eval_at(e.right, env, graph, w)
    if op == "&":
        return and_(a, b)
    if op == "|":
        return or_(a, b)
    if op == "^":
        return xor(a, b)
    if op in ("~^", "^~"):
        return not_(xor(a, b))
    if op == "+":
        return add(a, b)
    if op == "-":
        return sub(a, b)
    if op == "*":
        return mul(a, b)
    if op == "/":
        return div(a, b)
    if op == "%":
        return mod(a, b)
    if op == "**":
        if a.is_const and b.is_const and b.value <= 64:
            return const(a.value ** b.value, w)
        return top(w)
    return top(w)


# ---------------------------------------------------------------------------
# Whole-graph analysis
# ---------------------------------------------------------------------------


def analyze_graph(graph: RtlGraph) -> Dict[str, KnownBits]:
    """One dataflow pass over the comb DAG in topological order.

    Inputs and registers start TOP at their declared width (their values
    cross evaluation boundaries, so nothing can be assumed beyond the
    zero-extension above the width).  Combinational targets accumulate
    whatever the transfer functions prove.  Single pass — the comb DAG is
    acyclic by construction, and registers deliberately stay TOP rather
    than iterating to a cross-cycle fixpoint.
    """
    env: Dict[str, KnownBits] = {}
    design = graph.design
    for name, sig in design.signals.items():
        env[name] = top(sig.width)
    for nid in graph.comb_order:
        node = graph.nodes[nid]
        sig = design.signals.get(node.target)
        if sig is None or node.expr is None:
            continue
        kb = expr_bits(node.expr, env, graph)
        env[node.target] = resize(kb, sig.width)
    return env


def same_expr(a: A.Expr, b: A.Expr) -> bool:
    """Structural equality, independent of the emitter's version."""
    if type(a) is not type(b):
        return False
    if isinstance(a, A.Ident):
        return a.name == b.name
    if isinstance(a, A.Number):
        return a.value == b.value
    if isinstance(a, A.Unary):
        return a.op == b.op and same_expr(a.operand, b.operand)
    if isinstance(a, A.Binary):
        return (a.op == b.op and same_expr(a.left, b.left)
                and same_expr(a.right, b.right))
    if isinstance(a, A.Ternary):
        return (same_expr(a.cond, b.cond) and same_expr(a.then, b.then)
                and same_expr(a.other, b.other))
    if isinstance(a, A.Index):
        return a.base == b.base and same_expr(a.index, b.index)
    if isinstance(a, A.PartSelect):
        return (a.base == b.base and same_expr(a.msb, b.msb)
                and same_expr(a.lsb, b.lsb))
    return False
