"""repro.verify — translation-validation verifier for the lowering flow.

Three layers of compile-time assurance over the RTL -> batch-program
pipeline (see ``docs/verify.md``):

1. **IR verifier passes** (:mod:`repro.verify.ir_checks`) re-derive the
   invariants of every lowering boundary — RtlGraph well-formedness,
   TaskGraph cover/edge/schedule consistency, memory-layout offset
   disjointness, fused-bundle clock-domain coverage and commit bindings.
2. **Known-bits dataflow** (:mod:`repro.verify.knownbits`) proves the
   fused emitter's rewrites sound (dropped constant-zero branches,
   increment-mux peepholes, demand-width truncation) and powers the
   ``const-cond`` / ``const-compare`` / ``redundant-mask`` lint rules.
3. **Scheduling-hazard detection** (:mod:`repro.verify.hazards`) —
   static conflict analysis over the task graph plus the opt-in
   :class:`RuntimeSanitizer` executor that asserts declared write
   footprints and epoch monotonicity while simulating.

Verification reports through the lint machinery: findings are
:class:`~repro.lint.Diagnostic` records in a
:class:`~repro.lint.LintReport`, and every verify rule lives in the
shared registry under the ``verify-*`` ids (ERROR severity).  The
mutation self-test (:mod:`repro.verify.mutate`) injects synthetic IR
corruptions and requires the verifier to flag each one.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro.lint.diagnostics import Diagnostic, LintReport, Severity, SourceLoc
from repro.lint.engine import lint_artifacts
from repro.lint.rules import LintContext

# Importing the rules module registers the verify-* rules.
from repro.verify import rules as _rules  # noqa: F401
from repro.verify.hazards import RuntimeSanitizer, check_hazards
from repro.verify.knownbits import KnownBits, analyze_graph, expr_bits
from repro.verify.rules import VERIFY_RULE_IDS

__all__ = [
    "VERIFY_RULE_IDS",
    "VERIFY_STAGES",
    "KnownBits",
    "RuntimeSanitizer",
    "analyze_graph",
    "check_hazards",
    "expr_bits",
    "verify_model",
    "verify_source",
]

#: Lint stages the verifier populates beyond plain lint.
VERIFY_STAGES = ("graph", "taskgraph", "fused")


def _verify_backend(model, backend: str, report: LintReport) -> None:
    """Append backend-lowering diagnostics for ``backend`` to ``report``.

    Checks three things about the non-default lowering: the backend is
    known and available, its kernel IR is structurally well-formed
    (:func:`repro.backends.ir.validate_ir`), and the produced bundle
    covers every sequential clock domain of the model.  Failures are
    ERROR diagnostics under the ``verify-backend`` id.
    """
    from repro.backends import (
        BACKENDS,
        build_kernel_ir,
        get_backend,
        validate_ir,
    )
    from repro.utils.errors import ReproError

    def err(msg: str) -> None:
        report.add(Diagnostic("verify-backend", Severity.ERROR, msg))

    if backend not in BACKENDS:
        err(f"unknown backend {backend!r}; known backends: "
            + ", ".join(sorted(BACKENDS)))
        return
    try:
        bundle = get_backend(backend).compile(model)
    except ReproError as e:
        err(f"[{backend}] lowering failed: {getattr(e, 'message', e)}")
        return
    ir = build_kernel_ir(model.taskgraph, layout=bundle.layout)
    for problem in validate_ir(ir):
        err(f"[{backend}] {problem}")
    have = set(bundle.seq)
    want = set(model.clock_domains())
    if have != want:
        err(f"[{backend}] bundle covers clock domains {sorted(have)}, "
            f"model has {sorted(want)}")


def verify_model(
    model,
    *,
    filename: str = "<input>",
    text: Optional[str] = None,
    rules: Optional[Iterable[str]] = None,
    backend: Optional[str] = None,
) -> LintReport:
    """Run the verifier passes over a compiled model.

    Returns a :class:`LintReport` of ``verify-*`` findings (restrict or
    widen with ``rules``).  ``text`` enables source waivers.  Building
    the report forces the fused lowering (``model.fused()``) — the
    verifier's whole point is checking that artifact.  With ``backend``
    set to a non-default lowering, the report additionally covers that
    backend's bundle (availability, kernel-IR validity, clock-domain
    coverage).
    """
    design = model.graph.design
    ctx = LintContext(
        top=getattr(design, "top", "") or "",
        filename=filename,
        lowered=design,
        graph=model.graph,
        taskgraph=model.taskgraph,
        model=model,
    )
    selected = tuple(rules) if rules is not None else VERIFY_RULE_IDS
    report = lint_artifacts(ctx, text=text, rules=selected)
    if backend not in (None, "numpy"):
        _verify_backend(model, backend, report)
    return report


def verify_source(
    text: str,
    top: str,
    *,
    filename: str = "<input>",
    defines: Optional[Mapping[str, str]] = None,
    rules: Optional[Iterable[str]] = None,
    target_weight: Optional[float] = None,
    backend: Optional[str] = None,
) -> LintReport:
    """Build ``text`` through the full flow and verify the result.

    Front-end failures (parse/elaborate/lower) come back as a located
    ``elab`` ERROR diagnostic instead of raising, mirroring
    :func:`repro.lint.lint_source`'s tolerance — ``repro verify`` over a
    broken design reports *something* rather than crashing.
    """
    from repro.core.flow import RTLFlow
    from repro.utils.errors import ReproError

    report = LintReport(top=top, filename=filename)
    try:
        flow = RTLFlow.from_source(
            text, top, defines=defines, filename=filename, lint=False
        )
        kw = {} if target_weight is None else {"target_weight": target_weight}
        model = flow.compile(**kw)
    except ReproError as e:
        loc = None
        if getattr(e, "has_location", False):
            loc = SourceLoc(e.filename, e.line, e.col)
        report.add(Diagnostic(
            "elab", Severity.ERROR, getattr(e, "message", str(e)), loc=loc
        ))
        return report
    return verify_model(
        model, filename=filename, text=text, rules=rules, backend=backend
    )
