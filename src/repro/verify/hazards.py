"""Scheduling-hazard detection: static analysis + runtime sanitizer.

Two halves of one guarantee — that the task schedule can never race:

* :func:`check_hazards` proves it statically.  Any two tasks the
  schedule treats as order-free (unordered combinational tasks, or
  sequential tasks sharing a clock domain) must have disjoint write
  footprints, and an unordered task must not read what its peer writes.
  The builders *should* make this impossible (edges are derived from
  reads x producer), so any finding means a builder bug or a corrupted
  graph (see :mod:`repro.verify.mutate`).

* :class:`RuntimeSanitizer` checks it dynamically.  An opt-in executor
  (``repro run --verify``, or ``executor='sanitize'``) that replays the
  per-task plan while diffing device pools around every task launch:
  each task may only change offsets inside its declared
  :class:`~repro.core.codegen.TaskAccess` write footprint, no two tasks
  in one phase may write the same offset, and the device write-epoch
  counters must stay monotone and bounded by the global epoch.  A
  violation raises :class:`~repro.utils.errors.SanitizerError` naming
  the task, pool, offset and signal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.lint.diagnostics import Diagnostic, Severity
from repro.partition.taskgraph import TaskGraph
from repro.rtlir.graph import NodeKind
from repro.utils.errors import SanitizerError

__all__ = ["check_hazards", "RuntimeSanitizer"]


def _err(msg: str, subject: Optional[str] = None) -> Diagnostic:
    return Diagnostic(rule_id="verify-hazard", severity=Severity.ERROR,
                      message=msg, subject=subject)


def check_hazards(tg: TaskGraph) -> List[Diagnostic]:
    """Static read-write conflict analysis over the task graph."""
    out: List[Diagnostic] = []

    # Ancestor bitsets over the comb topo order: anc[t] has bit p set
    # when p must run before t.  Any pair with neither relation is
    # order-free and must not conflict.
    comb = [t for t in tg.comb_topo
            if 0 <= t < len(tg.tasks) and tg.tasks[t].kind is NodeKind.COMB]
    anc: Dict[int, int] = {}
    for tid in comb:
        a = 0
        for p in tg.preds.get(tid, ()):
            a |= anc.get(p, 0) | (1 << p)
        anc[tid] = a
    reads = {t: tg.task_reads(t) for t in comb}
    writes = {t: tg.task_writes(t) for t in comb}
    for i, a in enumerate(comb):
        for b in comb[i + 1:]:
            if (anc[b] >> a) & 1 or (anc[a] >> b) & 1:
                continue  # ordered: the schedule serializes them
            ww = writes[a] & writes[b]
            if ww:
                out.append(_err(
                    f"unordered comb tasks {a} and {b} both write "
                    f"{sorted(ww)[:3]}", subject=sorted(ww)[0]))
            for x, y in ((a, b), (b, a)):
                rw = writes[x] & reads[y]
                if rw:
                    out.append(_err(
                        f"comb task {y} reads {sorted(rw)[:3]} written by "
                        f"task {x}, but no edge orders them",
                        subject=sorted(rw)[0]))

    # Sequential tasks within one clock domain all fire on the same edge
    # (mutually order-free by design): their register/scratch writes
    # must be pairwise disjoint.
    domains: Dict[Tuple[str, str], List[int]] = {}
    for t in tg.tasks:
        if t.kind is NodeKind.SEQ:
            domains.setdefault((t.clock or "", t.edge), []).append(t.tid)
    for dom, tids in sorted(domains.items()):
        owner: Dict[str, int] = {}
        for tid in tids:
            for nid in tg.tasks[tid].nodes:
                if nid < 0 or nid >= len(tg.graph.nodes):
                    continue
                node = tg.graph.nodes[nid]
                # MEMW nodes write private scratch; two write ports on
                # one memory are legal (commit applies them in order).
                if node.kind is not NodeKind.SEQ:
                    continue
                prev = owner.get(node.target)
                if prev is not None and prev != tid:
                    out.append(_err(
                        f"seq tasks {prev} and {tid} in domain {dom} both "
                        f"write register {node.target!r}",
                        subject=node.target))
                owner[node.target] = tid
    return out


class RuntimeSanitizer:
    """Per-task replay executor that asserts the declared footprints.

    Drop-in for the ``graph`` executor (same unpacked layout and task
    functions), at a large constant cost per task — this is a debugging
    mode, not a performance path.  ``wants_epochs`` opts the simulator
    into write-epoch tracking so epoch monotonicity is checkable too.
    """

    name = "sanitized"
    wants_epochs = True

    def __init__(self, model, device):
        self.model = model
        self.device = device
        self._accesses = model.task_accesses()
        self._comb_plan = list(model.comb_schedule())
        self._seq_plans = {
            dom: model.seq_schedule(*dom) for dom in model.clock_domains()
        }
        self._names = self._offset_names(model.layout)
        self._last_epoch = -1
        self.tasks_checked = 0

    @staticmethod
    def _offset_names(layout) -> List[Dict[int, str]]:
        """Per pool: offset -> human-readable owner, for error messages."""
        names: List[Dict[int, str]] = [dict() for _ in range(5)]
        for name, s in layout.slots.items():
            for i in range(s.limbs):
                names[s.pool][s.offset + i] = name
                if s.next_offset is not None:
                    names[s.pool][s.next_offset + i] = f"{name}.next"
        for nid, sc in layout.scratch.items():
            for label, s in (("cond", sc.cond), ("addr", sc.addr),
                             ("data", sc.data)):
                names[s.pool][s.offset] = f"memw{nid}.{label}"
        for name, m in layout.mems.items():
            for i in range(m.depth):
                names[m.pool][m.base + i] = f"{name}[{i}]"
        return names

    def reset_activity(self) -> None:
        """Forget epoch history (checkpoint restore rewinds epochs)."""
        self._last_epoch = -1

    # -- executor interface ----------------------------------------------------

    def run_comb(self, arrays) -> None:
        self._run_phase(arrays, self._comb_plan, "comb")

    def run_seq(self, arrays, clock: str, edge: str) -> None:
        plan = self._seq_plans.get((clock, edge))
        if plan:
            self._run_phase(arrays, plan, f"seq {edge} {clock}")

    def _args(self, arrays) -> tuple:
        p = arrays.pools
        return (p[0], p[1], p[2], p[3], arrays.n, arrays.lane)

    def _run_phase(self, arrays, plan: List[int], phase: str) -> None:
        self._check_epochs(arrays, phase)
        base = [pool.copy() for pool in arrays.pools[:4]]
        owners: List[Dict[int, int]] = [dict() for _ in range(4)]
        args = self._args(arrays)
        n = arrays.n
        for tid in plan:
            self.device.launch_graph([self.model.task_fns[tid]], args)
            self.tasks_checked += 1
            acc = self._accesses[tid]
            allowed = {pool: set(offs.tolist())
                       for pool, offs in acc.write_offsets}
            for pool in range(4):
                diff = np.nonzero(arrays.pools[pool] != base[pool])[0]
                if diff.size == 0:
                    continue
                changed = np.unique(diff // n)
                for off in changed.tolist():
                    if off not in allowed.get(pool, ()):
                        raise SanitizerError(
                            f"task {tid} wrote pool {pool} offset {off} "
                            f"({self._name(pool, off)}) outside its "
                            f"declared write footprint during the {phase} "
                            "phase"
                        )
                    prev = owners[pool].get(off)
                    if prev is not None and prev != tid:
                        raise SanitizerError(
                            f"tasks {prev} and {tid} both wrote pool "
                            f"{pool} offset {off} ({self._name(pool, off)}) "
                            f"in one {phase} phase"
                        )
                    owners[pool][off] = tid
                base[pool][diff] = arrays.pools[pool][diff]
        self._check_epochs(arrays, phase)

    def _name(self, pool: int, off: int) -> str:
        return self._names[pool].get(off, "?")

    def _check_epochs(self, arrays, phase: str) -> None:
        """Write epochs must stay monotone and below the global epoch."""
        if arrays.epoch < self._last_epoch:
            raise SanitizerError(
                f"global write epoch moved backwards ({self._last_epoch} "
                f"-> {arrays.epoch}) entering the {phase} phase"
            )
        self._last_epoch = arrays.epoch
        if not arrays.track_epochs or arrays.write_epochs is None:
            return
        for pool, col in enumerate(arrays.write_epochs):
            if col.size and int(col.max()) > arrays.epoch:
                off = int(col.argmax())
                raise SanitizerError(
                    f"pool {pool} offset {off} ({self._name(pool, off) if pool < 4 else '?'}) "
                    f"carries write epoch {int(col.max())} beyond the "
                    f"global epoch {arrays.epoch}"
                )


def _unordered_pairs(tg: TaskGraph) -> Set[Tuple[int, int]]:
    """Exposed for tests: order-free comb task pairs."""
    comb = [t for t in tg.comb_topo]
    anc: Dict[int, int] = {}
    for tid in comb:
        a = 0
        for p in tg.preds.get(tid, ()):
            a |= anc.get(p, 0) | (1 << p)
        anc[tid] = a
    out: Set[Tuple[int, int]] = set()
    for i, a in enumerate(comb):
        for b in comb[i + 1:]:
            if not ((anc[b] >> a) & 1 or (anc[a] >> b) & 1):
                out.add((min(a, b), max(a, b)))
    return out
