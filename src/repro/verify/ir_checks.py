"""Structural IR verifier passes for every lowering boundary.

Each ``check_*`` function re-derives an invariant that some builder
(:func:`repro.rtlir.build.build_graph`, the partitioner,
:class:`~repro.core.memory.MemoryLayout`, the fused codegen) is supposed
to establish, **from first principles**, and reports any divergence as
an ERROR :class:`~repro.lint.diagnostics.Diagnostic`.  The checks share
no code with the builders they validate — that independence is the
point: a bug (or an injected mutation, see :mod:`repro.verify.mutate`)
in either side shows up as a mismatch.

These are pure functions over in-memory IR; the staged rule wrappers in
:mod:`repro.verify.rules` adapt them to the lint engine and attach
source locations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.memory import PACKED_POOL, MemoryLayout
from repro.lint.diagnostics import Diagnostic, Severity
from repro.partition.taskgraph import TaskGraph
from repro.rtlir.graph import NodeKind, RtlGraph

__all__ = [
    "check_graph",
    "check_taskgraph",
    "check_layout",
    "check_fused",
    "check_audit",
]

#: Element width in bits of the four scalar pools (var8..var64).
_POOL_BITS = (8, 16, 32, 64)
_EDGES = ("posedge", "negedge")


def _err(rule_id: str, msg: str, subject: Optional[str] = None,
         hint: str = "") -> Diagnostic:
    return Diagnostic(rule_id=rule_id, severity=Severity.ERROR,
                      message=msg, hint=hint, subject=subject)


# ---------------------------------------------------------------------------
# RtlGraph well-formedness
# ---------------------------------------------------------------------------


def check_graph(graph: RtlGraph) -> List[Diagnostic]:
    """Re-derive every invariant :func:`build_graph` promises."""
    rid = "verify-graph"
    out: List[Diagnostic] = []
    design = graph.design
    declared = set(design.signals) | set(design.memories)

    for i, node in enumerate(graph.nodes):
        if node.nid != i:
            out.append(_err(rid, f"node at index {i} carries nid {node.nid}",
                            subject=node.target))
        if node.kind is NodeKind.COMB:
            if node.clock is not None:
                out.append(_err(
                    rid, f"comb node {i} ({node.target}) has a clock "
                    f"({node.clock})", subject=node.target))
            if node.target not in design.signals:
                out.append(_err(rid, f"comb node {i} drives undeclared "
                                f"signal {node.target!r}", subject=node.target))
        else:
            if node.clock is None:
                out.append(_err(
                    rid, f"{node.kind.value} node {i} ({node.target}) has "
                    "no clock", subject=node.target))
            if node.edge not in _EDGES:
                out.append(_err(
                    rid, f"{node.kind.value} node {i} ({node.target}) has "
                    f"invalid edge {node.edge!r}", subject=node.target))
            if node.kind is NodeKind.SEQ and node.target not in design.signals:
                out.append(_err(rid, f"seq node {i} drives undeclared "
                                f"signal {node.target!r}", subject=node.target))
            if node.kind is NodeKind.MEMW and node.target not in design.memories:
                out.append(_err(rid, f"memw node {i} writes undeclared "
                                f"memory {node.target!r}", subject=node.target))
        for name in node.reads:
            if name not in declared:
                out.append(_err(rid, f"node {i} ({node.target}) reads "
                                f"undeclared name {name!r}",
                                subject=node.target))

    # Producer map: exactly one entry per comb node, pointing back at it.
    comb_nids = [n.nid for n in graph.nodes if n.kind is NodeKind.COMB]
    expected_producer = {}
    for nid in comb_nids:
        t = graph.nodes[nid].target
        if t in expected_producer:
            out.append(_err(rid, f"signal {t!r} driven by two comb nodes "
                            f"({expected_producer[t]} and {nid})", subject=t))
        expected_producer[t] = nid
    if graph.producer != expected_producer:
        extra = set(graph.producer) ^ set(expected_producer)
        wrong = {t for t in set(graph.producer) & set(expected_producer)
                 if graph.producer[t] != expected_producer[t]}
        out.append(_err(
            rid, "producer map diverges from comb node targets "
            f"(mismatched: {sorted(extra | wrong)[:5]})"))

    # Edges: recompute preds from reads x producer, compare both directions.
    for nid in comb_nids:
        node = graph.nodes[nid]
        expect: Set[int] = set()
        for name in node.reads:
            p = expected_producer.get(name)
            if p is not None:
                expect.add(p)
        if nid in expect:
            out.append(_err(rid, f"comb node {nid} ({node.target}) depends "
                            "on itself", subject=node.target))
            expect.discard(nid)
        have = graph.preds.get(nid, set())
        if have != expect:
            out.append(_err(
                rid, f"comb node {nid} ({node.target}) preds {sorted(have)} "
                f"!= recomputed {sorted(expect)}", subject=node.target))
    recomputed_succs: Dict[int, Set[int]] = {nid: set() for nid in comb_nids}
    for nid in comb_nids:
        for p in graph.preds.get(nid, ()):
            if p in recomputed_succs:
                recomputed_succs[p].add(nid)
    for nid in comb_nids:
        have = graph.succs.get(nid, set())
        if have != recomputed_succs[nid]:
            out.append(_err(
                rid, f"comb node {nid} succs {sorted(have)} inconsistent "
                f"with preds (expected {sorted(recomputed_succs[nid])})",
                subject=graph.nodes[nid].target))

    # Topological order: a permutation of the comb nodes, preds-first.
    if sorted(graph.comb_order) != sorted(comb_nids):
        out.append(_err(
            rid, f"comb_order is not a permutation of the comb nodes "
            f"({len(graph.comb_order)} scheduled, {len(comb_nids)} exist)"))
    else:
        pos = {nid: i for i, nid in enumerate(graph.comb_order)}
        for nid in comb_nids:
            for p in graph.preds.get(nid, ()):
                if pos.get(p, -1) > pos[nid]:
                    out.append(_err(
                        rid, f"comb_order schedules node {nid} "
                        f"({graph.nodes[nid].target}) before its "
                        f"dependency {p}", subject=graph.nodes[nid].target))

    # Levels: comb nodes sit at level >= 0, edges strictly increase level,
    # and the level lists agree with the per-node annotation.
    for nid in comb_nids:
        node = graph.nodes[nid]
        if node.level < 0:
            out.append(_err(rid, f"comb node {nid} ({node.target}) has no "
                            "level", subject=node.target))
            continue
        for p in graph.preds.get(nid, ()):
            if graph.nodes[p].level >= node.level:
                out.append(_err(
                    rid, f"edge {p}->{nid} does not increase level "
                    f"({graph.nodes[p].level} >= {node.level})",
                    subject=node.target))
    level_members = {nid for lv in graph.levels for nid in lv}
    if level_members != set(comb_nids):
        out.append(_err(rid, "levels do not partition the comb nodes"))
    else:
        for i, lv in enumerate(graph.levels):
            for nid in lv:
                if graph.nodes[nid].level != i:
                    out.append(_err(
                        rid, f"node {nid} listed at level {i} but annotated "
                        f"level {graph.nodes[nid].level}",
                        subject=graph.nodes[nid].target))
    return out


# ---------------------------------------------------------------------------
# TaskGraph invariants
# ---------------------------------------------------------------------------


def check_taskgraph(tg: TaskGraph) -> List[Diagnostic]:
    rid = "verify-taskgraph"
    out: List[Diagnostic] = []
    graph = tg.graph

    # Exact cover: every RTL node in exactly one task; node_task inverse.
    seen: Dict[int, int] = {}
    for task in tg.tasks:
        for nid in task.nodes:
            if nid in seen:
                out.append(_err(rid, f"node {nid} assigned to tasks "
                                f"{seen[nid]} and {task.tid}"))
            seen[nid] = task.tid
    expected = {n.nid for n in graph.nodes}
    if set(seen) != expected:
        missing = sorted(expected - set(seen))[:5]
        stray = sorted(set(seen) - expected)[:5]
        out.append(_err(rid, f"task cover mismatch (missing nodes "
                        f"{missing}, stray {stray})"))
    if tg.node_task != seen:
        wrong = [n for n in set(tg.node_task) & set(seen)
                 if tg.node_task[n] != seen[n]]
        out.append(_err(rid, "node_task map inconsistent with task "
                        f"membership (e.g. nodes {sorted(wrong)[:5]})"))

    # Per-task uniformity: kind and clock domain must match the nodes.
    for task in tg.tasks:
        for nid in task.nodes:
            if nid < 0 or nid >= len(graph.nodes):
                out.append(_err(rid, f"task {task.tid} references "
                                f"nonexistent node {nid}"))
                continue
            node = graph.nodes[nid]
            if task.kind is NodeKind.COMB:
                if node.kind is not NodeKind.COMB:
                    out.append(_err(
                        rid, f"comb task {task.tid} contains "
                        f"{node.kind.value} node {nid} ({node.target})",
                        subject=node.target))
            else:
                if node.kind is NodeKind.COMB:
                    out.append(_err(
                        rid, f"seq task {task.tid} contains comb node "
                        f"{nid} ({node.target})", subject=node.target))
                elif (node.clock, node.edge) != (task.clock, task.edge):
                    out.append(_err(
                        rid, f"task {task.tid} domain ({task.clock}, "
                        f"{task.edge}) != node {nid} domain "
                        f"({node.clock}, {node.edge})", subject=node.target))

    # Task edges: recompute from the node graph through the cover.
    comb_tids = [t.tid for t in tg.tasks if t.kind is NodeKind.COMB]
    expect_preds: Dict[int, Set[int]] = {t: set() for t in comb_tids}
    expect_succs: Dict[int, Set[int]] = {t: set() for t in comb_tids}
    for tid in comb_tids:
        for nid in tg.tasks[tid].nodes:
            for p in graph.preds.get(nid, ()):
                pt = seen.get(p)
                if pt is not None and pt != tid:
                    expect_preds[tid].add(pt)
                    expect_succs[pt].add(tid)
    for tid in comb_tids:
        if tg.preds.get(tid, set()) != expect_preds[tid]:
            out.append(_err(
                rid, f"task {tid} preds {sorted(tg.preds.get(tid, ()))} != "
                f"recomputed {sorted(expect_preds[tid])}"))
        if tg.succs.get(tid, set()) != expect_succs[tid]:
            out.append(_err(
                rid, f"task {tid} succs {sorted(tg.succs.get(tid, ()))} != "
                f"recomputed {sorted(expect_succs[tid])}"))

    # Schedule: comb_topo a permutation in dependency order, levels rise.
    if sorted(tg.comb_topo) != sorted(comb_tids):
        out.append(_err(rid, "comb_topo is not a permutation of the comb "
                        f"tasks ({len(tg.comb_topo)} scheduled, "
                        f"{len(comb_tids)} exist)"))
    else:
        pos = {tid: i for i, tid in enumerate(tg.comb_topo)}
        for tid in comb_tids:
            for p in expect_preds[tid]:
                if pos[p] > pos[tid]:
                    out.append(_err(rid, f"comb_topo schedules task {tid} "
                                    f"before its dependency {p}"))
        for tid in comb_tids:
            for p in expect_preds[tid]:
                if tg.tasks[p].level >= tg.tasks[tid].level:
                    out.append(_err(
                        rid, f"task edge {p}->{tid} does not increase level "
                        f"({tg.tasks[p].level} >= {tg.tasks[tid].level})"))

    if sorted(tg.seq_tasks) != sorted(
            t.tid for t in tg.tasks if t.kind is NodeKind.SEQ):
        out.append(_err(rid, "seq_tasks list inconsistent with task kinds"))

    # SEQ register write-disjointness per clock domain: two next-value
    # computations for one register would race at commit.
    writers: Dict[Tuple[str, str, str], List[int]] = {}
    for task in tg.tasks:
        if task.kind is NodeKind.COMB:
            continue
        for nid in task.nodes:
            if nid < 0 or nid >= len(graph.nodes):
                continue
            node = graph.nodes[nid]
            if node.kind is NodeKind.SEQ:
                key = (node.clock or "", node.edge, node.target)
                writers.setdefault(key, []).append(nid)
    for (clock, edge, target), nids in sorted(writers.items()):
        if len(nids) > 1:
            out.append(_err(
                rid, f"register {target!r} has {len(nids)} next-value "
                f"drivers in domain ({clock}, {edge}): nodes {sorted(nids)}",
                subject=target))
    return out


# ---------------------------------------------------------------------------
# Memory layout: offset disjointness and bounds
# ---------------------------------------------------------------------------


def check_layout(layout: MemoryLayout) -> List[Diagnostic]:
    rid = "verify-layout"
    out: List[Diagnostic] = []
    # Per pool, every occupied [lo, hi) interval with its owner label.
    intervals: Dict[int, List[Tuple[int, int, str]]] = {}

    def claim(pool: int, lo: int, size: int, owner: str) -> None:
        intervals.setdefault(pool, []).append((lo, lo + size, owner))

    for name, slot in layout.slots.items():
        if slot.pool == PACKED_POOL:
            if not layout.packed:
                out.append(_err(rid, f"slot {name!r} in packed pool of an "
                                "unpacked layout", subject=name))
            if slot.width != 1:
                out.append(_err(
                    rid, f"packed slot {name!r} has width {slot.width} "
                    "(only 1-bit signals may be lane-packed)", subject=name))
            if slot.limbs != 1:
                out.append(_err(rid, f"packed slot {name!r} has "
                                f"{slot.limbs} limbs", subject=name))
        elif slot.pool in (0, 1, 2):
            if slot.limbs != 1:
                out.append(_err(rid, f"slot {name!r} in pool {slot.pool} "
                                f"has {slot.limbs} limbs", subject=name))
            if slot.width > _POOL_BITS[slot.pool]:
                out.append(_err(
                    rid, f"slot {name!r} width {slot.width} exceeds pool "
                    f"var{_POOL_BITS[slot.pool]}", subject=name))
        elif slot.pool == 3:
            need = max(1, -(-slot.width // 64))
            if slot.limbs != need:
                out.append(_err(
                    rid, f"slot {name!r} width {slot.width} needs {need} "
                    f"limb(s), allocated {slot.limbs}", subject=name))
        else:
            out.append(_err(rid, f"slot {name!r} in unknown pool "
                            f"{slot.pool}", subject=name))
            continue
        claim(slot.pool, slot.offset, slot.limbs, name)
        if slot.is_state:
            if slot.next_offset is None:
                out.append(_err(rid, f"state slot {name!r} has no shadow "
                                "(next_offset)", subject=name))
            else:
                claim(slot.pool, slot.next_offset, slot.limbs, f"{name}.next")
    for name, ms in layout.mems.items():
        if ms.pool == PACKED_POOL:
            out.append(_err(rid, f"memory {name!r} placed in the packed "
                            "pool", subject=name))
            continue
        claim(ms.pool, ms.base, max(ms.depth, 0), f"mem:{name}")
    for nid, sc in layout.scratch.items():
        for label, slot in (("cond", sc.cond), ("addr", sc.addr),
                            ("data", sc.data)):
            if slot.pool == PACKED_POOL:
                out.append(_err(rid, f"memw scratch {label} of node {nid} "
                                "placed in the packed pool"))
                continue
            claim(slot.pool, slot.offset, slot.limbs,
                  f"scratch{nid}.{label}")

    sizes = list(layout.pool_sizes) + [0] * (PACKED_POOL + 1 -
                                             len(layout.pool_sizes))
    sizes[PACKED_POOL] = layout.packed_size
    for pool, ivs in sorted(intervals.items()):
        cap = sizes[pool] if pool <= PACKED_POOL else -1
        ivs.sort()
        prev_hi, prev_owner = 0, ""
        for lo, hi, owner in ivs:
            if lo < 0 or hi > cap:
                out.append(_err(
                    rid, f"{owner} occupies [{lo}, {hi}) outside pool "
                    f"{pool} of size {cap}", subject=owner.split(".")[0]))
            if lo < prev_hi:
                out.append(_err(
                    rid, f"pool {pool} overlap: {owner} [{lo}, {hi}) "
                    f"collides with {prev_owner}",
                    subject=owner.split(".")[0]))
            if hi > prev_hi:
                prev_hi, prev_owner = hi, owner
    return out


# ---------------------------------------------------------------------------
# Fused-program bundle consistency
# ---------------------------------------------------------------------------


def _check_mem_bindings(rid: str, bindings, layout: MemoryLayout,
                        graph: RtlGraph) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    memw_nids = {n.nid for n in graph.nodes if n.kind is NodeKind.MEMW}
    bound = set()
    for b in bindings:
        if b.node_id in bound:
            out.append(_err(rid, f"memory write node {b.node_id} bound "
                            "twice"))
        bound.add(b.node_id)
        if b.node_id not in memw_nids:
            out.append(_err(rid, f"binding references node {b.node_id}, "
                            "which is not a memory write"))
            continue
        node = graph.nodes[b.node_id]
        if (b.clock, b.edge) != (node.clock, node.edge):
            out.append(_err(
                rid, f"binding for node {b.node_id} carries domain "
                f"({b.clock}, {b.edge}) != node ({node.clock}, "
                f"{node.edge})", subject=node.target))
        ms = layout.mems.get(node.target)
        if ms is None or (b.mem_pool, b.mem_base, b.mem_depth) != (
                ms.pool, ms.base, ms.depth):
            out.append(_err(rid, f"binding for node {b.node_id} does not "
                            f"match the layout of memory {node.target!r}",
                            subject=node.target))
        sc = layout.scratch.get(b.node_id)
        if sc is None:
            out.append(_err(rid, f"no scratch allocated for memory write "
                            f"node {b.node_id}", subject=node.target))
        elif ((b.cond_pool, b.cond_off) != (sc.cond.pool, sc.cond.offset)
              or (b.addr_pool, b.addr_off) != (sc.addr.pool, sc.addr.offset)
              or (b.data_pool, b.data_off) != (sc.data.pool, sc.data.offset)):
            out.append(_err(rid, f"binding for node {b.node_id} diverges "
                            "from its scratch slots", subject=node.target))
    for nid in sorted(memw_nids - bound):
        out.append(_err(rid, f"memory write node {nid} "
                        f"({graph.nodes[nid].target}) has no commit "
                        "binding", subject=graph.nodes[nid].target))
    return out


def check_fused(model) -> List[Diagnostic]:
    """Fused bundle vs model: domains, node counts, commit bindings."""
    rid = "verify-fused"
    out: List[Diagnostic] = []
    tg = model.taskgraph
    graph = model.graph
    fused = model.fused()

    domains = set(model.clock_domains())
    have = set(fused.seq.keys())
    if have != domains:
        out.append(_err(
            rid, f"fused sequential programs cover domains {sorted(have)} "
            f"but the model has {sorted(domains)} — the trigger-set plan "
            "cache would miss a clock domain"))

    n_comb = sum(len(tg.tasks[t].nodes) for t in tg.comb_topo)
    if fused.comb.n_nodes != n_comb:
        out.append(_err(rid, f"fused comb program claims "
                        f"{fused.comb.n_nodes} nodes, task graph has "
                        f"{n_comb}"))
    per_dom: Dict[Tuple[str, str], int] = {}
    for t in tg.tasks:
        if t.kind is NodeKind.SEQ:
            dom = (t.clock, t.edge)
            per_dom[dom] = per_dom.get(dom, 0) + len(t.nodes)
    for dom, prog in fused.seq.items():
        if dom in per_dom and prog.n_nodes != per_dom[dom]:
            out.append(_err(
                rid, f"fused program for domain {dom} claims "
                f"{prog.n_nodes} nodes, task graph has {per_dom[dom]}"))

    out.extend(_check_mem_bindings(rid, model.mem_writes, model.layout,
                                   graph))
    out.extend(_check_mem_bindings(rid, fused.mem_writes, fused.layout,
                                   graph))
    return out


# ---------------------------------------------------------------------------
# Translation validation of the fused codegen's rewrite claims
# ---------------------------------------------------------------------------


def check_audit(model) -> List[Diagnostic]:
    """Re-prove every rewrite the fused emitter recorded.

    The emitter's :class:`~repro.core.codegen.AuditRecord` stream says
    *what* it rewrote (dropped constant-zero mux branch, increment-mux
    peephole, demand-width truncated store, packed 1-bit store); this
    pass re-establishes each claim through the independent known-bits
    engine and structural checks.  A claim that cannot be re-proved is
    an ERROR: either the emitter is wrong or the record was corrupted.
    """
    from repro.verify import knownbits as kb

    rid = "verify-audit"
    out: List[Diagnostic] = []
    fused = model.fused()
    graph = model.graph
    layout = fused.layout
    env: Dict[str, kb.KnownBits] = {}  # empty: only constant facts count

    for rec in getattr(fused, "audit", []):
        where = f"node {rec.node}" if rec.node >= 0 else "unknown node"
        if rec.kind == "const0-branch":
            # Evaluate at >= 1 bit: a width-0 TOP has max_value 0 and
            # would vacuously "prove" any unannotated expression zero.
            w = max(1, rec.expr.ctx_width or rec.expr.width
                    ) if rec.expr is not None else 1
            bits = (kb.expr_bits(rec.expr, env, graph, width=w)
                    if rec.expr is not None else kb.top(1))
            if rec.expr is None or bits.max_value != 0:
                out.append(_err(
                    rid, f"emitter dropped a mux branch at {where} claiming "
                    "it is constant zero, but the known-bits engine cannot "
                    "prove it (dropped live bits)", subject=rec.target))
        elif rec.kind == "inc-mux":
            e = rec.expr
            ok = False
            if (e is not None and hasattr(e, "then")
                    and hasattr(e, "other")):
                t, f = e.then, e.other
                if getattr(t, "op", None) == "+":
                    left = kb.expr_bits(t.left, env, graph)
                    right = kb.expr_bits(t.right, env, graph)
                    ok = ((right.is_const and right.value == 1
                           and kb.same_expr(t.left, f))
                          or (left.is_const and left.value == 1
                              and kb.same_expr(t.right, f)))
            if not ok:
                out.append(_err(
                    rid, f"increment-mux rewrite at {where} does not match "
                    "the `c ? x + 1 : x` shape on re-analysis",
                    subject=rec.target))
        elif rec.kind == "demand-store":
            slot = layout.slots.get(rec.target or "")
            if slot is None:
                out.append(_err(rid, f"demand store at {where} targets "
                                f"unknown slot {rec.target!r}",
                                subject=rec.target))
                continue
            demand = rec.detail.get("demand")
            bits = rec.detail.get("bits")
            masked = rec.detail.get("masked")
            if demand != slot.width:
                out.append(_err(
                    rid, f"store to {rec.target!r} at {where} demanded "
                    f"{demand} bits but the slot keeps {slot.width} — "
                    "truncation drops live bits", subject=rec.target))
            pool_bits = (_POOL_BITS[slot.pool]
                         if slot.pool < len(_POOL_BITS) else 64)
            need_mask = (isinstance(bits, int)
                         and slot.width < min(bits, pool_bits))
            if bool(masked) != need_mask:
                out.append(_err(
                    rid, f"store to {rec.target!r} at {where} "
                    f"{'masked' if masked else 'did not mask'} wrap "
                    "garbage, but the dtype/pool widths require the "
                    "opposite", subject=rec.target))
        elif rec.kind == "packed-store":
            slot = layout.slots.get(rec.target or "")
            if slot is None or slot.pool != PACKED_POOL or slot.width != 1:
                out.append(_err(
                    rid, f"packed store at {where} targets {rec.target!r}, "
                    "which is not a 1-bit packed slot", subject=rec.target))
                continue
            if rec.detail.get("mode") == "const":
                bits = kb.expr_bits(rec.expr, env, graph, width=1)
                want = rec.detail.get("value")
                if not bits.is_const or bits.value != want:
                    out.append(_err(
                        rid, f"packed constant store to {rec.target!r} at "
                        f"{where} claims value {want}, not re-provable",
                        subject=rec.target))
        else:
            out.append(_err(rid, f"unknown audit record kind "
                            f"{rec.kind!r} at {where}", subject=rec.target))
    return out
