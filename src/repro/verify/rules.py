"""Verifier rules registered into the shared lint registry.

Each rule wraps one pure check from :mod:`repro.verify.ir_checks` /
:mod:`repro.verify.hazards` as a staged lint rule, so verification
reuses the Diagnostic/LintReport/waiver machinery and ``repro verify``
is just ``lint_artifacts`` restricted to these rule ids.  All verify
rules are ERROR severity: a finding means an IR invariant is broken —
builder bug or corrupted artifact — never a style issue.

Importing this module (done by ``import repro.verify``) performs the
registration.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.rules import LintContext, rule
from repro.verify import ir_checks
from repro.verify.hazards import check_hazards

#: Rule ids the ``repro verify`` entry points select (lint rules like
#: const-cond stay out: they judge the *design*, these judge the *IR*).
VERIFY_RULE_IDS = (
    "verify-graph",
    "verify-taskgraph",
    "verify-hazard",
    "verify-layout",
    "verify-fused",
    "verify-audit",
)


def _locate(ctx: LintContext, diags: List[Diagnostic]) -> Iterable[Diagnostic]:
    """Attach declaration locations to findings that name a subject."""
    for d in diags:
        if d.loc is None and d.subject:
            loc = ctx.loc_of(d.subject)
            if loc is not None:
                d.loc = loc
        yield d


@rule(
    "verify-graph",
    Severity.ERROR,
    "graph",
    "RtlGraph invariants: node ids, producer map, edges, topo order, levels",
)
def verify_graph(ctx: LintContext) -> Iterable[Diagnostic]:
    assert ctx.graph is not None
    return _locate(ctx, ir_checks.check_graph(ctx.graph))


@rule(
    "verify-taskgraph",
    Severity.ERROR,
    "taskgraph",
    "TaskGraph invariants: exact cover, edge/schedule consistency, domain "
    "uniformity, per-domain register write-disjointness",
)
def verify_taskgraph(ctx: LintContext) -> Iterable[Diagnostic]:
    assert ctx.taskgraph is not None
    return _locate(ctx, ir_checks.check_taskgraph(ctx.taskgraph))


@rule(
    "verify-hazard",
    Severity.ERROR,
    "taskgraph",
    "static scheduling hazards: unordered tasks with conflicting footprints",
)
def verify_hazard(ctx: LintContext) -> Iterable[Diagnostic]:
    assert ctx.taskgraph is not None
    return _locate(ctx, check_hazards(ctx.taskgraph))


@rule(
    "verify-layout",
    Severity.ERROR,
    "fused",
    "memory layout: offset disjointness, pool bounds, width/pool fit "
    "(checked for both the unpacked and the bit-packed layout)",
)
def verify_layout(ctx: LintContext) -> Iterable[Diagnostic]:
    model = ctx.model
    assert model is not None
    diags = ir_checks.check_layout(model.layout)
    diags.extend(ir_checks.check_layout(model.fused().layout))
    return _locate(ctx, diags)


@rule(
    "verify-fused",
    Severity.ERROR,
    "fused",
    "fused bundle: clock-domain coverage (plan-cache soundness), node "
    "counts, memory-commit bindings",
)
def verify_fused(ctx: LintContext) -> Iterable[Diagnostic]:
    assert ctx.model is not None
    return _locate(ctx, ir_checks.check_fused(ctx.model))


@rule(
    "verify-audit",
    Severity.ERROR,
    "fused",
    "translation validation: re-prove every rewrite the fused emitter "
    "recorded through the known-bits engine",
)
def verify_audit(ctx: LintContext) -> Iterable[Diagnostic]:
    assert ctx.model is not None
    return _locate(ctx, ir_checks.check_audit(ctx.model))
