"""Mutation self-test for the verifier.

Each :class:`Mutation` injects one synthetic corruption into a freshly
built compiled model — a dropped task edge, a widened offset, a swapped
dependency, a forged rewrite claim — and the self-test requires
``repro verify`` to flag every one with at least one ERROR.  This is
the verifier's own test harness: a checker that never fires is
indistinguishable from no checker, so CI runs
:func:`verify_selftest` alongside the zero-findings check on the
unmutated bundled designs.

All mutations are applied to in-memory IR *after* the build (the fused
bundle is pre-built so mutations land on the cached artifact the
verifier inspects); the generated source text never changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.rtlir.graph import NodeKind
from repro.utils.errors import ReproError

__all__ = ["MUTATIONS", "Mutation", "fresh_model", "verify_selftest",
           "DEMO_SOURCE", "DEMO_TOP"]

#: Small design exercising every IR feature the mutations need: chained
#: comb logic, two same-domain registers, 1-bit signals (packed pool),
#: a guarded memory write (scratch slots), a reset mux (const0-branch
#: audit record) and an enable counter (inc-mux audit record).
DEMO_SOURCE = """
module mut_demo(
  input clk, input rst, input en,
  input [7:0] din,
  output [7:0] dout,
  output flag
);
  reg [7:0] acc;
  reg [3:0] cnt;
  reg bit0, bit1;
  reg [7:0] mem [0:15];

  wire [7:0] sum = acc + din;
  wire [7:0] masked = sum & 8'h7f;
  wire high = masked > 8'h40;
  wire [3:0] nxt = en ? cnt + 4'd1 : cnt;

  assign dout = masked;
  assign flag = high ^ bit0;

  always @(posedge clk) begin
    acc <= rst ? 8'd0 : sum;
    cnt <= rst ? 4'd0 : nxt;
    bit0 <= en;
    bit1 <= high;
    if (en) mem[cnt] <= din;
  end
endmodule
"""
DEMO_TOP = "mut_demo"


@dataclass(frozen=True)
class Mutation:
    name: str
    area: str  # graph | taskgraph | index-map | fused
    summary: str
    apply: Callable[[object], None]


def fresh_model():
    """Build an un-shared compiled model of the demo design.

    ``target_weight=1.0`` keeps one node per task so the task graph has
    real edges to corrupt; the fused bundle is forced so mutations hit
    the cached artifact the verifier will read.
    """
    from repro.core.flow import RTLFlow

    flow = RTLFlow.from_source(DEMO_SOURCE, DEMO_TOP, lint=False)
    model = flow.compile(target_weight=1.0)
    model.fused()
    return model


class MutationShapeError(ReproError):
    """The demo design no longer has the shape a mutation needs."""


def _need(cond: bool, what: str) -> None:
    if not cond:
        raise MutationShapeError(f"mutation harness: demo design has no {what}")


def _comb_with_pred(graph):
    for nid in graph.comb_order:
        if graph.preds.get(nid):
            return nid, min(graph.preds[nid])
    raise MutationShapeError("mutation harness: no comb node with a pred")


def _seq_nodes(graph):
    nodes = [n for n in graph.nodes if n.kind is NodeKind.SEQ]
    _need(len(nodes) >= 2, "two sequential nodes")
    return nodes


# -- graph mutations ---------------------------------------------------------


def _mut_drop_node_edge(model) -> None:
    g = model.graph
    nid, p = _comb_with_pred(g)
    g.preds[nid].discard(p)
    g.succs[p].discard(nid)


def _mut_producer_corrupt(model) -> None:
    g = model.graph
    comb = [n for n in g.nodes if n.kind is NodeKind.COMB]
    _need(len(comb) >= 2, "two comb nodes")
    g.producer[comb[0].target] = comb[1].nid


def _mut_comb_order_swap(model) -> None:
    g = model.graph
    nid, _ = _comb_with_pred(g)
    g.comb_order.remove(nid)
    g.comb_order.insert(0, nid)


def _mut_level_corrupt(model) -> None:
    g = model.graph
    nid, p = _comb_with_pred(g)
    old = g.nodes[nid].level
    g.nodes[nid].level = g.nodes[p].level  # edge no longer increases level
    g.levels[old].remove(nid)
    g.levels[g.nodes[p].level].append(nid)


def _mut_clock_drop(model) -> None:
    _seq_nodes(model.graph)[0].clock = None


def _mut_wrong_edge(model) -> None:
    _seq_nodes(model.graph)[0].edge = "level"


# -- taskgraph mutations ------------------------------------------------------


def _task_with_pred(tg):
    for tid in tg.comb_topo:
        if tg.preds.get(tid):
            return tid, min(tg.preds[tid])
    raise MutationShapeError("mutation harness: no comb task with a pred")


def _mut_drop_task_edge(model) -> None:
    tg = model.taskgraph
    tid, pt = _task_with_pred(tg)
    tg.preds[tid].discard(pt)
    tg.succs[pt].discard(tid)


def _mut_swap_task_edge(model) -> None:
    tg = model.taskgraph
    tid, pt = _task_with_pred(tg)
    tg.preds[tid].discard(pt)
    tg.succs[pt].discard(tid)
    tg.preds[pt].add(tid)
    tg.succs[tid].add(pt)


def _mut_duplicate_node(model) -> None:
    tg = model.taskgraph
    comb = [t for t in tg.tasks if t.kind is NodeKind.COMB and t.nodes]
    _need(len(comb) >= 2, "two comb tasks")
    comb[1].nodes.append(comb[0].nodes[0])


def _mut_drop_node_from_task(model) -> None:
    tg = model.taskgraph
    for t in tg.tasks:
        if t.nodes:
            t.nodes.pop()
            return
    raise MutationShapeError("mutation harness: no task with nodes")


def _mut_wrong_task_clock(model) -> None:
    tg = model.taskgraph
    seq = [t for t in tg.tasks if t.kind is NodeKind.SEQ]
    _need(bool(seq), "a sequential task")
    seq[0].clock = "phantom_clk"


def _mut_seq_write_overlap(model) -> None:
    g = model.graph
    nodes = _seq_nodes(g)
    by_dom: Dict[tuple, list] = {}
    for n in nodes:
        by_dom.setdefault((n.clock, n.edge), []).append(n)
    for _, group in sorted(by_dom.items()):
        if len(group) >= 2:
            group[1].target = group[0].target
            return
    raise MutationShapeError(
        "mutation harness: no two seq nodes share a clock domain")


def _mut_comb_topo_swap(model) -> None:
    tg = model.taskgraph
    tid, _ = _task_with_pred(tg)
    tg.comb_topo.remove(tid)
    tg.comb_topo.insert(0, tid)


# -- index-map (layout) mutations ---------------------------------------------


def _two_slots_same_pool(layout):
    by_pool: Dict[int, list] = {}
    for s in sorted(layout.slots.values(), key=lambda s: (s.pool, s.offset)):
        if s.limbs == 1:
            by_pool.setdefault(s.pool, []).append(s)
    for pool in sorted(by_pool):
        if len(by_pool[pool]) >= 2:
            return by_pool[pool][0], by_pool[pool][1]
    raise MutationShapeError("mutation harness: no two slots share a pool")


def _mut_offset_collision(model) -> None:
    a, b = _two_slots_same_pool(model.layout)
    b.offset = a.offset


def _mut_offset_oob(model) -> None:
    layout = model.layout
    s = sorted(layout.slots.values(), key=lambda s: s.name)[0]
    sizes = list(layout.pool_sizes) + [layout.packed_size]
    s.offset = sizes[s.pool] + 1  # widened beyond the pool


def _mut_shadow_collision(model) -> None:
    layout = model.layout
    for s in sorted(layout.slots.values(), key=lambda s: s.name):
        if s.is_state and s.next_offset is not None:
            s.next_offset = s.offset
            return
    raise MutationShapeError("mutation harness: no state slot with shadow")


def _mut_packed_collision(model) -> None:
    from repro.core.memory import PACKED_POOL

    layout = model.fused().layout
    packed = sorted(
        (s for s in layout.slots.values() if s.pool == PACKED_POOL),
        key=lambda s: s.offset,
    )
    _need(len(packed) >= 2, "two packed 1-bit slots")
    packed[1].offset = packed[0].offset


def _mut_scratch_collision(model) -> None:
    layout = model.layout
    _need(bool(layout.scratch), "a guarded memory write")
    sc = layout.scratch[sorted(layout.scratch)[0]]
    victim = next(
        (s for s in sorted(layout.slots.values(), key=lambda s: s.name)
         if s.pool == sc.cond.pool and s.offset != sc.cond.offset),
        None,
    )
    _need(victim is not None, "a slot sharing the scratch cond pool")
    sc.cond.offset = victim.offset


# -- fused-codegen mutations --------------------------------------------------


def _mut_drop_seq_program(model) -> None:
    fused = model.fused()
    _need(bool(fused.seq), "a sequential fused program")
    fused.seq.pop(sorted(fused.seq)[0])


def _mut_mem_binding_corrupt(model) -> None:
    fused = model.fused()
    _need(bool(fused.mem_writes), "a memory-write binding")
    fused.mem_writes[0].data_off += 1


def _mut_audit_bogus_const0(model) -> None:
    from repro.core.codegen import AuditRecord
    from repro.verilog.ast_nodes import Number

    one = Number(1)
    one.width = one.ctx_width = 1
    model.fused().audit.append(AuditRecord(
        kind="const0-branch", node=0, target="dout", expr=one))


def _mut_audit_demand_narrow(model) -> None:
    fused = model.fused()
    recs = [r for r in fused.audit if r.kind == "demand-store"
            and r.detail.get("demand", 0) > 1]
    _need(bool(recs), "a multi-bit demand-store audit record")
    recs[0].detail["demand"] = recs[0].detail["demand"] - 1


def _mut_audit_incmux_corrupt(model) -> None:
    fused = model.fused()
    recs = [r for r in fused.audit if r.kind == "inc-mux"]
    _need(bool(recs), "an inc-mux audit record")
    recs[0].expr = recs[0].expr.other  # no longer the c ? x+1 : x shape


MUTATIONS: List[Mutation] = [
    Mutation("drop-node-edge", "graph",
             "remove a comb dependency edge", _mut_drop_node_edge),
    Mutation("producer-corrupt", "graph",
             "point the producer map at the wrong node", _mut_producer_corrupt),
    Mutation("comb-order-swap", "graph",
             "schedule a node before its dependency", _mut_comb_order_swap),
    Mutation("level-corrupt", "graph",
             "flatten a node's level onto its pred's", _mut_level_corrupt),
    Mutation("clock-drop", "graph",
             "strip the clock off a sequential node", _mut_clock_drop),
    Mutation("wrong-edge", "graph",
             "give a sequential node an invalid edge", _mut_wrong_edge),
    Mutation("drop-task-edge", "taskgraph",
             "remove a task dependency edge", _mut_drop_task_edge),
    Mutation("swap-task-edge", "taskgraph",
             "reverse a task dependency edge", _mut_swap_task_edge),
    Mutation("duplicate-node", "taskgraph",
             "assign one node to two tasks", _mut_duplicate_node),
    Mutation("drop-node-from-task", "taskgraph",
             "orphan a node from the task cover", _mut_drop_node_from_task),
    Mutation("wrong-task-clock", "taskgraph",
             "move a seq task to a phantom clock domain",
             _mut_wrong_task_clock),
    Mutation("seq-write-overlap", "taskgraph",
             "retarget a register onto another's driver",
             _mut_seq_write_overlap),
    Mutation("comb-topo-swap", "taskgraph",
             "schedule a task before its dependency", _mut_comb_topo_swap),
    Mutation("offset-collision", "index-map",
             "alias two slots onto one offset", _mut_offset_collision),
    Mutation("offset-oob", "index-map",
             "widen an offset beyond its pool", _mut_offset_oob),
    Mutation("shadow-collision", "index-map",
             "fold a register's shadow onto its current slot",
             _mut_shadow_collision),
    Mutation("packed-collision", "index-map",
             "alias two packed 1-bit slots", _mut_packed_collision),
    Mutation("scratch-collision", "index-map",
             "alias memw scratch onto a live slot", _mut_scratch_collision),
    Mutation("drop-seq-program", "fused",
             "delete a clock domain's fused program", _mut_drop_seq_program),
    Mutation("mem-binding-corrupt", "fused",
             "shift a memory commit binding's data offset",
             _mut_mem_binding_corrupt),
    Mutation("audit-bogus-const0", "fused",
             "forge a dropped-branch claim on a nonzero constant",
             _mut_audit_bogus_const0),
    Mutation("audit-demand-narrow", "fused",
             "narrow a store's demanded width below the slot",
             _mut_audit_demand_narrow),
    Mutation("audit-incmux-corrupt", "fused",
             "break an increment-mux claim's shape",
             _mut_audit_incmux_corrupt),
]


def verify_selftest() -> List[Dict[str, object]]:
    """Apply every mutation to a fresh model and verify each is flagged.

    Returns one row per mutation: name, area, whether the verifier
    flagged it, and which rules fired.  A row with ``flagged=False``
    means a verifier gap — callers (tests, ``repro verify --selftest``)
    must treat it as failure.
    """
    from repro.verify import verify_model

    results: List[Dict[str, object]] = []
    for m in MUTATIONS:
        model = fresh_model()
        m.apply(model)
        report = verify_model(model)
        results.append({
            "mutation": m.name,
            "area": m.area,
            "summary": m.summary,
            "flagged": bool(report.errors),
            "rules": report.rule_ids(),
            "errors": len(report.errors),
        })
    return results
