"""Width inference and context sizing (Verilog-2001 expression sizing).

Runs on the lowered design: every expression node gets

* ``width`` — its self-determined width, and
* ``ctx_width`` — the width the node's value must wrap at (context
  determined by the assignment target and the operators above it).

Code generators then only need to mask the results of operators that can
produce bits above ``ctx_width`` (``+ - * ~ << **`` and negation); all other
operators keep canonical values canonical.

Part-select and memory-index bounds are constant-folded here and cached on
the node (``_msb_i``/``_lsb_i``/``_shift_i``) so codegen does not repeat the
evaluation.
"""

from __future__ import annotations


from repro.elaborate.constfold import eval_const
from repro.elaborate.symexec import LoweredDesign
from repro.utils.bitvec import MAX_TOTAL_WIDTH
from repro.utils.errors import ElaborationError, WidthError
from repro.verilog import ast_nodes as A

# Operators whose operands take the parent's context width.
_CTX_ARITH = {"+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~"}
_CMP_OPS = {"==", "!=", "===", "!==", "<", "<=", ">", ">="}
_LOGICAL = {"&&", "||"}
_SHIFTS = {"<<", ">>", "<<<", ">>>"}
_REDUCTIONS = {"&", "|", "^", "~&", "~|", "~^"}


class WidthAnnotator:
    def __init__(self, design: LoweredDesign):
        self.design = design

    # -- pass 1: self-determined widths ---------------------------------------

    def self_width(self, e: A.Expr) -> int:
        w = self._self_width(e)
        if w <= 0:
            raise WidthError(f"expression has non-positive width {w}")
        if w > MAX_TOTAL_WIDTH:
            raise WidthError(
                f"expression width {w} exceeds the {MAX_TOTAL_WIDTH}-bit "
                f"limit ({A.op_type_name(e)} node)"
            )
        e.width = w
        return w

    def _signal_width(self, name: str) -> int:
        if name in self.design.signals:
            return self.design.signals[name].width
        raise ElaborationError(f"unknown signal {name!r} in expression")

    def _self_width(self, e: A.Expr) -> int:
        if isinstance(e, A.Number):
            if e.size is not None:
                return e.size
            return max(32, e.value.bit_length() or 1)
        if isinstance(e, A.Ident):
            if e.name in self.design.memories:
                raise ElaborationError(
                    f"memory {e.name!r} used as a plain value; index it"
                )
            return self._signal_width(e.name)
        if isinstance(e, A.Unary):
            ow = self.self_width(e.operand)
            if e.op in ("~", "-", "+"):
                return ow
            return 1  # reductions and !
        if isinstance(e, A.Binary):
            lw = self.self_width(e.left)
            rw = self.self_width(e.right)
            if e.op in _CMP_OPS or e.op in _LOGICAL:
                return 1
            if e.op in _SHIFTS or e.op == "**":
                return lw
            return max(lw, rw)
        if isinstance(e, A.Ternary):
            self.self_width(e.cond)
            tw = self.self_width(e.then)
            ow = self.self_width(e.other)
            return max(tw, ow)
        if isinstance(e, A.Concat):
            return sum(self.self_width(p) for p in e.parts)
        if isinstance(e, A.Repeat):
            count = eval_const(e.count)
            if count <= 0:
                raise WidthError("replication count must be positive")
            e._count_i = count  # type: ignore[attr-defined]
            return count * self.self_width(e.value)
        if isinstance(e, A.Index):
            self.self_width(e.index)
            if e.base in self.design.memories:
                e.is_memory = True
                return self.design.memories[e.base].width
            self._signal_width(e.base)  # validate
            return 1
        if isinstance(e, A.PartSelect):
            sig = self.design.signals.get(e.base)
            if sig is None:
                raise ElaborationError(f"unknown signal {e.base!r} in part select")
            msb = eval_const(e.msb) - sig.lsb
            lsb = eval_const(e.lsb) - sig.lsb
            if msb < lsb or lsb < 0 or msb >= sig.width:
                raise WidthError(
                    f"part select {e.base}[{msb + sig.lsb}:{lsb + sig.lsb}] out of "
                    f"range for width {sig.width}",
                    filename=self.design.filename, line=sig.line, col=sig.col,
                )
            e._msb_i = msb  # type: ignore[attr-defined]
            e._lsb_i = lsb  # type: ignore[attr-defined]
            return msb - lsb + 1
        if isinstance(e, A.IndexedPartSelect):
            sig = self.design.signals.get(e.base)
            if sig is None:
                raise ElaborationError(f"unknown signal {e.base!r} in part select")
            w = eval_const(e.part_width)
            if w <= 0 or w > sig.width:
                raise WidthError(
                    f"indexed part width {w} out of range",
                    filename=self.design.filename, line=sig.line, col=sig.col,
                )
            e._width_i = w  # type: ignore[attr-defined]
            e._base_lsb_i = sig.lsb  # type: ignore[attr-defined]
            self.self_width(e.start)
            return w
        raise ElaborationError(f"cannot size expression {type(e).__name__}")

    # -- pass 2: context widths -----------------------------------------------

    def set_context(self, e: A.Expr, ctx: int) -> None:
        ctx = max(ctx, e.width)
        if ctx > MAX_TOTAL_WIDTH:
            ctx = MAX_TOTAL_WIDTH
        e.ctx_width = ctx
        if isinstance(e, (A.Number, A.Ident)):
            return
        if isinstance(e, A.Unary):
            if e.op in ("~", "-", "+"):
                self.set_context(e.operand, ctx)
            else:  # reductions / logical not: operand is self-determined
                self.set_context(e.operand, e.operand.width)
            return
        if isinstance(e, A.Binary):
            op = e.op
            if op in _CTX_ARITH:
                self.set_context(e.left, ctx)
                self.set_context(e.right, ctx)
            elif op in _CMP_OPS:
                cw = max(e.left.width, e.right.width)
                self.set_context(e.left, cw)
                self.set_context(e.right, cw)
            elif op in _LOGICAL:
                self.set_context(e.left, e.left.width)
                self.set_context(e.right, e.right.width)
            elif op in _SHIFTS:
                self.set_context(e.left, ctx)
                self.set_context(e.right, e.right.width)
            elif op == "**":
                self.set_context(e.left, ctx)
                self.set_context(e.right, e.right.width)
            else:
                raise ElaborationError(f"unknown binary op {op!r}")
            return
        if isinstance(e, A.Ternary):
            self.set_context(e.cond, e.cond.width)
            self.set_context(e.then, ctx)
            self.set_context(e.other, ctx)
            return
        if isinstance(e, A.Concat):
            for p in e.parts:
                self.set_context(p, p.width)
            return
        if isinstance(e, A.Repeat):
            self.set_context(e.count, e.count.width)
            self.set_context(e.value, e.value.width)
            return
        if isinstance(e, A.Index):
            self.set_context(e.index, e.index.width)
            return
        if isinstance(e, A.PartSelect):
            return
        if isinstance(e, A.IndexedPartSelect):
            self.set_context(e.start, e.start.width)
            return
        raise ElaborationError(f"cannot contextualize {type(e).__name__}")

    def annotate_assignment(self, expr: A.Expr, target_width: int) -> None:
        w = self.self_width(expr)
        self.set_context(expr, max(w, target_width))

    def annotate_self(self, expr: A.Expr) -> None:
        w = self.self_width(expr)
        self.set_context(expr, w)


def annotate_design(design: LoweredDesign) -> None:
    """Annotate every expression in ``design`` with width/ctx_width."""
    ann = WidthAnnotator(design)
    for ca in design.comb:
        tw = design.signals[ca.target].width
        ann.annotate_assignment(ca.expr, tw)
    for blk in design.seq:
        if blk.clock not in design.signals:
            raise ElaborationError(f"unknown clock signal {blk.clock!r}")
        for upd in blk.updates:
            if upd.target not in design.signals:
                raise ElaborationError(f"unknown register {upd.target!r}")
            ann.annotate_assignment(upd.expr, design.signals[upd.target].width)
        for mw in blk.mem_writes:
            mem = design.memories.get(mw.mem)
            if mem is None:
                raise ElaborationError(f"unknown memory {mw.mem!r}")
            ann.annotate_self(mw.cond)
            ann.annotate_self(mw.addr)
            ann.annotate_assignment(mw.data, mem.width)
