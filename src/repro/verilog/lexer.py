"""Tokenizer for the supported Verilog subset."""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum, auto
from typing import Iterator, List, Optional

from repro.utils.errors import VerilogSyntaxError


class TokenKind(Enum):
    KEYWORD = auto()
    IDENT = auto()
    NUMBER = auto()
    OP = auto()
    EOF = auto()


KEYWORDS = frozenset(
    """
    module endmodule input output inout wire reg integer parameter localparam
    assign always initial begin end if else case casez casex endcase default
    posedge negedge or signed generate endgenerate genvar for function
    endfunction while repeat forever automatic
    """.split()
)

# Longest-match-first operator table.
OPERATORS = [
    "<<<", ">>>", "===", "!==", "**",
    "<=", ">=", "==", "!=", "&&", "||", "<<", ">>", "+:", "-:", "~&", "~|", "~^", "^~",
    "(", ")", "[", "]", "{", "}", ";", ":", ",", ".", "@", "#", "?", "=",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">",
]
_OP_RE = re.compile("|".join(re.escape(op) for op in OPERATORS))

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_$]*")
# Verilog numbers: optional size, base, digits — or a bare decimal.
_BASED_RE = re.compile(r"(\d+)?\s*'\s*[sS]?([bBoOdDhH])\s*([0-9a-fA-FxXzZ_?]+)")
_DEC_RE = re.compile(r"\d[\d_]*")

_BASE_RADIX = {"b": 2, "o": 8, "d": 10, "h": 16}


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    col: int
    # For NUMBER tokens: parsed value and explicit size (None if unsized).
    value: int = 0
    size: Optional[int] = None
    # Bit positions that were written as x/z/? — kept so casez can treat
    # them as wildcards.  Two-state evaluation reads them as 0.
    xz_mask: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.col})"


_BITS_PER_DIGIT = {2: 1, 8: 3, 16: 4}


def _parse_based(size_str: Optional[str], base: str, digits: str, line: int, col: int):
    radix = _BASE_RADIX[base.lower()]
    raw = digits.replace("_", "")
    # Two-state semantics: x/z/? digits read as 0 (Verilator's default),
    # but remember which bit positions they occupied for casez wildcards.
    xz_mask = 0
    if radix in _BITS_PER_DIGIT:
        bpd = _BITS_PER_DIGIT[radix]
        for pos, ch in enumerate(reversed(raw)):
            if ch in "xXzZ?":
                xz_mask |= ((1 << bpd) - 1) << (pos * bpd)
    cleaned = re.sub(r"[xXzZ?]", "0", raw)
    try:
        value = int(cleaned, radix) if cleaned else 0
    except ValueError:
        raise VerilogSyntaxError(f"bad {base}-base literal {digits!r}", line=line, col=col)
    size = int(size_str) if size_str else None
    if size is not None:
        if size <= 0:
            raise VerilogSyntaxError("literal size must be positive", line=line, col=col)
        value &= (1 << size) - 1
        xz_mask &= (1 << size) - 1
    return value, size, xz_mask


class Lexer:
    """Converts preprocessed source text into a token stream."""

    def __init__(self, text: str, filename: str = "<input>"):
        self.text = text
        self.filename = filename

    def tokens(self) -> Iterator[Token]:
        text = self.text
        pos = 0
        line = 1
        line_start = 0
        n = len(text)
        while pos < n:
            c = text[pos]
            if c == "\n":
                line += 1
                pos += 1
                line_start = pos
                continue
            if c in " \t\r":
                pos += 1
                continue
            col = pos - line_start + 1

            m = _BASED_RE.match(text, pos)
            if m:
                value, size, xz = _parse_based(m.group(1), m.group(2), m.group(3), line, col)
                yield Token(TokenKind.NUMBER, m.group(0), line, col, value, size, xz)
                pos = m.end()
                continue

            m = _IDENT_RE.match(text, pos)
            if m:
                word = m.group(0)
                kind = TokenKind.KEYWORD if word in KEYWORDS else TokenKind.IDENT
                yield Token(kind, word, line, col)
                pos = m.end()
                continue

            m = _DEC_RE.match(text, pos)
            if m:
                value = int(m.group(0).replace("_", ""))
                yield Token(TokenKind.NUMBER, m.group(0), line, col, value, None)
                pos = m.end()
                continue

            m = _OP_RE.match(text, pos)
            if m:
                yield Token(TokenKind.OP, m.group(0), line, col)
                pos = m.end()
                continue

            raise VerilogSyntaxError(
                f"unexpected character {c!r}", self.filename, line, col
            )
        yield Token(TokenKind.EOF, "", line, 1)


def tokenize(text: str, filename: str = "<input>") -> List[Token]:
    """Tokenize ``text`` fully (convenience for tests)."""
    return list(Lexer(text, filename).tokens())
