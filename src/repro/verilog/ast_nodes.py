"""AST node classes for the supported Verilog subset.

The node taxonomy intentionally mirrors the Verilator AST concepts the
paper manipulates in §3.1 (MODULE, CELL, VAR, VARREF, ASSIGN, CFUNC,
ARRSEL, CONST ...) so that the annotation / memory-mapping stages of
``repro.core`` read like the paper.

All nodes are plain dataclasses; expression nodes carry two width
attributes filled in by :mod:`repro.verilog.width`:

* ``width`` — the self-determined width of the expression, and
* ``ctx_width`` — the context-determined width at which arithmetic on the
  node must wrap (Verilog-2001 expression sizing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for expressions."""

    # Filled by width inference; declared here so every node has the slots.
    width: int = field(default=0, init=False, compare=False, repr=False)
    ctx_width: int = field(default=0, init=False, compare=False, repr=False)


@dataclass
class Number(Expr):
    """A literal constant, e.g. ``10'h1`` or ``42``.

    ``sized`` records whether the literal had an explicit width, which
    matters for concat legality and expression sizing.
    """

    value: int
    size: Optional[int] = None  # explicit bit width, if any
    xz_mask: int = 0  # bit positions that were x/z/? (casez wildcards)

    @property
    def sized(self) -> bool:
        return self.size is not None


@dataclass
class Ident(Expr):
    """A reference to a declared signal (the paper's VARREF)."""

    name: str


@dataclass
class Unary(Expr):
    """Unary operator: ``~ ! - + & | ^ ~& ~| ~^``."""

    op: str
    operand: Expr


@dataclass
class Binary(Expr):
    """Binary operator: arithmetic, bitwise, shifts, comparisons, logical."""

    op: str
    left: Expr
    right: Expr


@dataclass
class Ternary(Expr):
    """Conditional operator ``cond ? t : f``."""

    cond: Expr
    then: Expr
    other: Expr


@dataclass
class Concat(Expr):
    """Concatenation ``{a, b, c}`` (MSB first)."""

    parts: List[Expr]


@dataclass
class Repeat(Expr):
    """Replication ``{n{expr}}``; ``count`` must elaborate to a constant."""

    count: Expr
    value: Expr


@dataclass
class Index(Expr):
    """Single index ``base[idx]``.

    After elaboration this is either a *bit select* on a vector signal or an
    *element select* on a memory (the paper's ARRSEL).  ``is_memory`` is
    resolved during width inference.
    """

    base: str
    index: Expr
    is_memory: bool = field(default=False, compare=False)


@dataclass
class PartSelect(Expr):
    """Constant part select ``base[msb:lsb]``."""

    base: str
    msb: Expr
    lsb: Expr


@dataclass
class IndexedPartSelect(Expr):
    """Indexed part select ``base[start +: width]`` (width must be const)."""

    base: str
    start: Expr
    part_width: Expr
    descending: bool = True  # ``+:`` vs ``-:``


# ---------------------------------------------------------------------------
# L-values
# ---------------------------------------------------------------------------

# An l-value reuses expression nodes: Ident, Index, PartSelect,
# IndexedPartSelect, or a Concat of those.
LValue = Union[Ident, Index, PartSelect, IndexedPartSelect, Concat]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for procedural statements."""


@dataclass
class Block(Stmt):
    """``begin ... end`` sequence."""

    stmts: List[Stmt]


@dataclass
class BlockingAssign(Stmt):
    """``lhs = rhs`` inside a procedural block."""

    lhs: LValue
    rhs: Expr


@dataclass
class NonBlockingAssign(Stmt):
    """``lhs <= rhs`` inside a procedural block."""

    lhs: LValue
    rhs: Expr


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    other: Optional[Stmt] = None


@dataclass
class CaseItem:
    labels: List[Expr]  # empty list == default
    body: Stmt


@dataclass
class Case(Stmt):
    """``case``/``casez`` statement; lowered to a mux tree at elaboration."""

    subject: Expr
    items: List[CaseItem]
    casez: bool = False


@dataclass
class For(Stmt):
    """``for (var = init; cond; var = step) body``.

    Bounds must elaborate to constants; the loop is fully unrolled during
    symbolic execution (the full-cycle transformation Verilator applies).
    """

    var: str
    init: Expr
    cond: Expr
    step: Expr  # the full RHS of the update assignment
    body: Stmt


# ---------------------------------------------------------------------------
# Module items
# ---------------------------------------------------------------------------


@dataclass
class Range:
    """A ``[msb:lsb]`` range with (possibly parameterized) bound expressions."""

    msb: Expr
    lsb: Expr


@dataclass
class NetDecl:
    """Declaration of a wire/reg, optionally a memory (``array`` set).

    ``line``/``col`` locate the declared name in the source (0 = unknown);
    they flow into :class:`repro.elaborate.elaborator.Signal` so that
    elaboration errors and lint diagnostics can point at the declaration.
    """

    name: str
    kind: str  # 'wire' | 'reg'
    rng: Optional[Range] = None  # None -> 1 bit
    array: Optional[Range] = None  # memory depth range, e.g. [0:255]
    signed: bool = False
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)


@dataclass
class PortDecl:
    name: str
    direction: str  # 'input' | 'output'
    kind: str = "wire"  # 'wire' | 'reg'
    rng: Optional[Range] = None
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)


@dataclass
class ParamDecl:
    name: str
    value: Expr
    local: bool = False


@dataclass
class ContinuousAssign:
    lhs: LValue
    rhs: Expr


@dataclass
class EdgeEvent:
    """One entry of a sensitivity list: ``posedge clk`` / ``negedge rst``."""

    edge: str  # 'posedge' | 'negedge'
    signal: str


@dataclass
class Always:
    """An always block.

    ``events`` is empty for combinational blocks (``always @*`` or an
    explicit signal list, which we treat as comb), and holds edge events
    for sequential blocks.
    """

    events: List[EdgeEvent]
    body: Stmt

    @property
    def is_sequential(self) -> bool:
        return bool(self.events)


@dataclass
class FuncCall(Expr):
    """A call to a user-defined function (inlined during lowering).

    ``resolved`` holds the flat function key once elaboration has renamed
    the call into the flat namespace.
    """

    name: str
    args: List[Expr]
    resolved: str = ""


@dataclass
class FuncDecl:
    """A Verilog function: pure combinational, returns ``name``.

    The paper's AST annotation stage tags these ``__device__`` (functions
    are called from macro-task kernels); here they are inlined outright.
    """

    name: str
    rng: Optional["Range"]  # return range (None -> 1 bit)
    inputs: List[Tuple[str, Optional["Range"]]]
    locals_: List[Tuple[str, Optional["Range"]]]
    body: Stmt


@dataclass
class Instance:
    """A module instantiation (the paper's CELL)."""

    module: str
    name: str
    connections: Dict[str, Optional[Expr]]
    param_overrides: Dict[str, Expr] = field(default_factory=dict)
    by_order: Optional[List[Expr]] = None  # positional connections, if used
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)


@dataclass
class GenvarDecl:
    """``genvar i, j;`` — loop indices for generate-for regions."""

    names: List[str]


@dataclass
class GenerateFor:
    """``for (i = a; i < b; i = i + s) begin : label ... end``.

    Expanded at elaboration: each iteration instantiates the body items
    under the scope ``label[i].`` with the genvar bound as a constant.
    """

    var: str
    init: "Expr"
    cond: "Expr"
    step: "Expr"
    label: str
    items: List["ModuleItem"]


@dataclass
class GenerateIf:
    """``if (COND) begin ... end else begin ... end`` at module level."""

    cond: "Expr"
    then_items: List["ModuleItem"]
    else_items: List["ModuleItem"]
    label: str = ""


ModuleItem = Union[
    NetDecl, PortDecl, ParamDecl, ContinuousAssign, Always, Instance,
    FuncDecl, GenvarDecl, GenerateFor, GenerateIf,
]


@dataclass
class Module:
    name: str
    port_order: List[str]
    items: List[ModuleItem]

    def ports(self) -> List[PortDecl]:
        return [i for i in self.items if isinstance(i, PortDecl)]

    def params(self) -> List[ParamDecl]:
        return [i for i in self.items if isinstance(i, ParamDecl)]


@dataclass
class SourceUnit:
    """A parsed collection of modules (one or more source files).

    ``filename`` is the label diagnostics use for locations in this unit
    (a real path, or ``<input>`` for in-memory source).
    """

    modules: List[Module]
    filename: str = field(default="<input>", compare=False)

    def module(self, name: str) -> Module:
        for m in self.modules:
            if m.name == name:
                return m
        raise KeyError(f"module {name!r} not found")


# ---------------------------------------------------------------------------
# Helpers used across the toolchain
# ---------------------------------------------------------------------------


def walk_expr(e: Expr):
    """Yield ``e`` and all sub-expressions, pre-order."""
    yield e
    if isinstance(e, Unary):
        yield from walk_expr(e.operand)
    elif isinstance(e, Binary):
        yield from walk_expr(e.left)
        yield from walk_expr(e.right)
    elif isinstance(e, Ternary):
        yield from walk_expr(e.cond)
        yield from walk_expr(e.then)
        yield from walk_expr(e.other)
    elif isinstance(e, Concat):
        for p in e.parts:
            yield from walk_expr(p)
    elif isinstance(e, Repeat):
        yield from walk_expr(e.count)
        yield from walk_expr(e.value)
    elif isinstance(e, Index):
        yield from walk_expr(e.index)
    elif isinstance(e, PartSelect):
        yield from walk_expr(e.msb)
        yield from walk_expr(e.lsb)
    elif isinstance(e, IndexedPartSelect):
        yield from walk_expr(e.start)
        yield from walk_expr(e.part_width)
    elif isinstance(e, FuncCall):
        for a in e.args:
            yield from walk_expr(a)


def expr_reads(e: Expr) -> List[str]:
    """Names of all signals read by expression ``e`` (with duplicates)."""
    out: List[str] = []
    for n in walk_expr(e):
        if isinstance(n, Ident):
            out.append(n.name)
        elif isinstance(n, (Index, PartSelect, IndexedPartSelect)):
            out.append(n.base)
    return out


def op_type_name(e: Expr) -> str:
    """A short node-type tag used for the partitioner's op histograms.

    These play the role of the "top k most frequently appeared RTL nodes"
    in the paper's weight function (Eq. 1).
    """
    if isinstance(e, Binary):
        return f"bin:{e.op}"
    if isinstance(e, Unary):
        return f"un:{e.op}"
    if isinstance(e, Ternary):
        return "mux"
    if isinstance(e, Concat):
        return "concat"
    if isinstance(e, Repeat):
        return "repeat"
    if isinstance(e, Index):
        return "arrsel" if e.is_memory else "bitsel"
    if isinstance(e, (PartSelect, IndexedPartSelect)):
        return "partsel"
    if isinstance(e, Ident):
        return "varref"
    if isinstance(e, Number):
        return "const"
    return type(e).__name__.lower()
