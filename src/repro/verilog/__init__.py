"""Verilog-2001 front end (substrate).

The paper builds its transpiler atop Verilator's AST parser; this package is
our from-scratch equivalent: a preprocessor, lexer, recursive-descent parser
and width-inference pass for the synthesizable subset used by the bundled
designs (see DESIGN.md §5 for the exact subset).
"""

from repro.verilog.lexer import Lexer, Token, TokenKind, tokenize
from repro.verilog.parser import Parser, parse_source
from repro.verilog.preprocessor import preprocess
from repro.verilog import ast_nodes as ast

__all__ = [
    "Lexer",
    "Token",
    "TokenKind",
    "tokenize",
    "Parser",
    "parse_source",
    "preprocess",
    "ast",
]
