r"""A minimal Verilog preprocessor.

Supports the directives the bundled designs use:

* ``//`` and ``/* */`` comments (stripped, newlines preserved so that
  diagnostics keep their line numbers),
* ``\`define NAME value`` (object-like macros only, no arguments),
* ``\`undef NAME``,
* ``\`ifdef`` / ``\`ifndef`` / ``\`else`` / ``\`endif``,
* macro expansion ``\`NAME`` (recursive, with a depth guard),
* ``\`timescale`` and ``\`default_nettype`` are accepted and ignored.

``\`include`` is resolved against an optional ``include_dirs`` search list.
"""

from __future__ import annotations

import os
import re
from typing import Dict, List, Optional, Sequence

from repro.utils.errors import VerilogSyntaxError

_DIRECTIVE_RE = re.compile(r"^\s*`(\w+)\s*(.*)$")
_MACRO_USE_RE = re.compile(r"`(\w+)")
_MAX_EXPANSION_DEPTH = 32


def strip_comments(text: str) -> str:
    """Remove ``//`` and ``/* */`` comments, preserving line structure."""
    out: List[str] = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            if j < 0:
                raise VerilogSyntaxError("unterminated block comment")
            # keep embedded newlines so line numbers survive
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            out.append(text[i : j + 1])
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _expand_macros(line: str, defines: Dict[str, str], lineno: int, depth: int = 0) -> str:
    if depth > _MAX_EXPANSION_DEPTH:
        raise VerilogSyntaxError("macro expansion too deep (recursive `define?)", line=lineno)

    def repl(m: re.Match) -> str:
        name = m.group(1)
        if name in defines:
            return defines[name]
        raise VerilogSyntaxError(f"undefined macro `{name}", line=lineno)

    new = _MACRO_USE_RE.sub(repl, line)
    if "`" in new:
        return _expand_macros(new, defines, lineno, depth + 1)
    return new


def preprocess(
    text: str,
    defines: Optional[Dict[str, str]] = None,
    include_dirs: Sequence[str] = (),
    filename: str = "<input>",
) -> str:
    """Run the preprocessor over ``text`` and return expanded source."""
    # The defines table is shared with included files (a `define made
    # inside an include is visible to the includer, as in real tools).
    shared = dict(defines or {})
    return _preprocess_shared(text, shared, include_dirs, filename)


def _preprocess_shared(
    text: str,
    defines: Dict[str, str],
    include_dirs: Sequence[str],
    filename: str,
) -> str:
    """Preprocess with a *shared* (mutated in place) defines table."""
    out: List[str] = []
    # Stack of (condition_active, any_branch_taken) for `ifdef nesting.
    cond_stack: List[List[bool]] = []

    def active() -> bool:
        return all(frame[0] for frame in cond_stack)

    for lineno, raw in enumerate(strip_comments(text).split("\n"), start=1):
        m = _DIRECTIVE_RE.match(raw)
        if m:
            directive, rest = m.group(1), m.group(2).strip()
            if directive == "define":
                if active():
                    parts = rest.split(None, 1)
                    if not parts:
                        raise VerilogSyntaxError("`define needs a name", filename, lineno)
                    if "(" in parts[0]:
                        raise VerilogSyntaxError(
                            "function-like `define is not supported", filename, lineno
                        )
                    defines[parts[0]] = parts[1] if len(parts) > 1 else "1"
                out.append("")
                continue
            if directive == "undef":
                if active():
                    defines.pop(rest, None)
                out.append("")
                continue
            if directive in ("ifdef", "ifndef"):
                present = rest.split()[0] in defines if rest else False
                take = present if directive == "ifdef" else not present
                cond_stack.append([take, take])
                out.append("")
                continue
            if directive == "else":
                if not cond_stack:
                    raise VerilogSyntaxError("`else without `ifdef", filename, lineno)
                frame = cond_stack[-1]
                frame[0] = not frame[1]
                frame[1] = True
                out.append("")
                continue
            if directive == "endif":
                if not cond_stack:
                    raise VerilogSyntaxError("`endif without `ifdef", filename, lineno)
                cond_stack.pop()
                out.append("")
                continue
            if directive == "include":
                if active():
                    name = rest.strip().strip('"')
                    for d in list(include_dirs) + ["."]:
                        path = os.path.join(d, name)
                        if os.path.exists(path):
                            with open(path, "r", encoding="utf-8") as fh:
                                out.append(
                                    _preprocess_shared(
                                        fh.read(), defines, include_dirs, path
                                    )
                                )
                            break
                    else:
                        raise VerilogSyntaxError(
                            f"include file {name!r} not found", filename, lineno
                        )
                else:
                    out.append("")
                continue
            if directive in ("timescale", "default_nettype", "resetall"):
                out.append("")
                continue
            # Unknown directive in active code is an error; in dead code, skip.
            if active():
                raise VerilogSyntaxError(f"unknown directive `{directive}", filename, lineno)
            out.append("")
            continue

        if not active():
            out.append("")
            continue
        out.append(_expand_macros(raw, defines, lineno) if "`" in raw else raw)

    if cond_stack:
        raise VerilogSyntaxError("unterminated `ifdef", filename)
    return "\n".join(out)
