"""Recursive-descent parser for the supported Verilog subset.

Produces :mod:`repro.verilog.ast_nodes` trees.  Both ANSI-style
(``module m(input [3:0] a, output reg b);``) and non-ANSI headers are
accepted, as are named and positional instance connections and parameter
overrides.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.utils.errors import UnsupportedFeatureError, VerilogSyntaxError
from repro.verilog import ast_nodes as A
from repro.verilog.lexer import Lexer, Token, TokenKind
from repro.verilog.preprocessor import preprocess

# Binary operator precedence, low to high (Verilog-2001 Table 5-4).
_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|", "~|"],
    ["^", "~^", "^~"],
    ["&", "~&"],
    ["==", "!=", "===", "!=="],
    ["<", "<=", ">", ">="],
    ["<<", ">>", "<<<", ">>>"],
    ["+", "-"],
    ["*", "/", "%"],
    ["**"],
]

_UNARY_OPS = {"~", "!", "-", "+", "&", "|", "^", "~&", "~|", "~^"}


class Parser:
    def __init__(self, tokens: List[Token], filename: str = "<input>"):
        self.toks = tokens
        self.pos = 0
        self.filename = filename

    # ---- token plumbing ---------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        i = min(self.pos + ahead, len(self.toks) - 1)
        return self.toks[i]

    def next(self) -> Token:
        t = self.toks[self.pos]
        if t.kind is not TokenKind.EOF:
            self.pos += 1
        return t

    def at(self, text: str) -> bool:
        t = self.peek()
        return t.text == text and t.kind in (TokenKind.OP, TokenKind.KEYWORD)

    def accept(self, text: str) -> bool:
        if self.at(text):
            self.next()
            return True
        return False

    def expect(self, text: str) -> Token:
        t = self.peek()
        if not self.at(text):
            raise VerilogSyntaxError(
                f"expected {text!r}, found {t.text!r}", self.filename, t.line, t.col
            )
        return self.next()

    def expect_ident(self) -> str:
        t = self.peek()
        if t.kind is not TokenKind.IDENT:
            raise VerilogSyntaxError(
                f"expected identifier, found {t.text!r}", self.filename, t.line, t.col
            )
        self.next()
        return t.text

    def expect_ident_tok(self) -> Token:
        """Like :meth:`expect_ident` but returns the whole token, for
        declaration sites that record ``line``/``col``."""
        t = self.peek()
        self.expect_ident()
        return t

    def error(self, msg: str) -> VerilogSyntaxError:
        t = self.peek()
        return VerilogSyntaxError(msg, self.filename, t.line, t.col)

    # ---- top level --------------------------------------------------------


    def _reject_signed(self) -> None:
        """Signed declarations change comparison/shift/extension semantics;
        silently treating them as unsigned would corrupt results, so they
        are rejected outright (use explicit bias-compare idioms instead —
        see repro.designs.riscv_mini for the pattern)."""
        if self.at("signed"):
            t = self.peek()
            raise UnsupportedFeatureError(
                f"{self.filename}:{t.line}: signed declarations are not "
                "supported (two-state unsigned semantics only); express "
                "signed comparisons explicitly, e.g. (a ^ MSB) < (b ^ MSB)"
            )

    def parse(self) -> A.SourceUnit:
        modules: List[A.Module] = []
        while self.peek().kind is not TokenKind.EOF:
            if self.at("module"):
                modules.append(self.parse_module())
            else:
                raise self.error(f"expected 'module', found {self.peek().text!r}")
        return A.SourceUnit(modules, filename=self.filename)

    def parse_module(self) -> A.Module:
        self.expect("module")
        name = self.expect_ident()
        items: List[A.ModuleItem] = []
        port_order: List[str] = []

        if self.accept("#"):  # module parameter port list  #(parameter W = 8, ...)
            self.expect("(")
            while not self.at(")"):
                self.accept("parameter")
                pname = self.expect_ident()
                self.expect("=")
                items.append(A.ParamDecl(pname, self.parse_expr()))
                if not self.accept(","):
                    break
            self.expect(")")

        if self.accept("("):
            port_order, port_items = self._parse_port_list()
            items.extend(port_items)
            self.expect(")")
        self.expect(";")

        while not self.at("endmodule"):
            items.extend(self.parse_module_item())
        self.expect("endmodule")
        return A.Module(name, port_order, items)

    def _parse_port_list(self) -> Tuple[List[str], List[A.ModuleItem]]:
        """Parse the parenthesized port list (ANSI or plain name list)."""
        order: List[str] = []
        items: List[A.ModuleItem] = []
        if self.at(")"):
            return order, items
        direction: Optional[str] = None
        kind = "wire"
        rng: Optional[A.Range] = None
        while True:
            if self.peek().text in ("input", "output", "inout"):
                direction = self.next().text
                if direction == "inout":
                    raise UnsupportedFeatureError("inout ports are not supported")
                kind = "reg" if self.accept("reg") else "wire"
                self.accept("wire")
                self._reject_signed()
                rng = self.parse_opt_range()
            ptok = self.expect_ident_tok()
            pname = ptok.text
            order.append(pname)
            if direction is not None:
                items.append(
                    A.PortDecl(pname, direction, kind, rng,
                               line=ptok.line, col=ptok.col)
                )
            if not self.accept(","):
                break
        return order, items

    # ---- module items -----------------------------------------------------

    def parse_module_item(self) -> List[A.ModuleItem]:
        t = self.peek()
        if t.text in ("input", "output"):
            return self._parse_port_decl()
        if t.text in ("wire", "reg", "integer"):
            return self._parse_net_decl()
        if t.text in ("parameter", "localparam"):
            return self._parse_param_decl()
        if t.text == "assign":
            return self._parse_assign()
        if t.text == "always":
            return [self._parse_always()]
        if t.text == "initial":
            raise UnsupportedFeatureError(
                "initial blocks are not supported; preload state via the simulator API"
            )
        if t.text == "function":
            return [self._parse_function()]
        if t.text == "genvar":
            self.next()
            names = [self.expect_ident()]
            while self.accept(","):
                names.append(self.expect_ident())
            self.expect(";")
            return [A.GenvarDecl(names)]
        if t.text == "generate":
            self.next()
            items: List[A.ModuleItem] = []
            while not self.at("endgenerate"):
                items.extend(self._parse_generate_item())
            self.expect("endgenerate")
            return items
        if t.text in ("for", "if"):
            # Verilog-2005: generate constructs without the generate keyword.
            return self._parse_generate_item()
        if t.kind is TokenKind.IDENT:
            return [self._parse_instance()]
        raise self.error(f"unexpected token {t.text!r} in module body")

    def parse_opt_range(self) -> Optional[A.Range]:
        if not self.at("["):
            return None
        self.expect("[")
        msb = self.parse_expr()
        self.expect(":")
        lsb = self.parse_expr()
        self.expect("]")
        return A.Range(msb, lsb)

    def _parse_port_decl(self) -> List[A.ModuleItem]:
        direction = self.next().text
        kind = "reg" if self.accept("reg") else "wire"
        self.accept("wire")
        self._reject_signed()
        rng = self.parse_opt_range()
        out: List[A.ModuleItem] = []
        while True:
            ptok = self.expect_ident_tok()
            out.append(A.PortDecl(ptok.text, direction, kind, rng,
                                  line=ptok.line, col=ptok.col))
            if not self.accept(","):
                break
        self.expect(";")
        return out

    def _parse_net_decl(self) -> List[A.ModuleItem]:
        kw = self.next().text
        if kw == "integer":
            kind, rng = "reg", A.Range(A.Number(31), A.Number(0))
        else:
            kind = kw
            self._reject_signed()
            rng = self.parse_opt_range()
        out: List[A.ModuleItem] = []
        while True:
            ntok = self.expect_ident_tok()
            name = ntok.text
            array = self.parse_opt_range()
            if self.accept("="):
                if kind != "wire":
                    raise UnsupportedFeatureError(
                        "reg initializers are not supported; use a reset",
                        filename=self.filename, line=ntok.line, col=ntok.col,
                    )
                rhs = self.parse_expr()
                out.append(A.NetDecl(name, kind, rng, array,
                                     line=ntok.line, col=ntok.col))
                out.append(A.ContinuousAssign(A.Ident(name), rhs))
            else:
                out.append(A.NetDecl(name, kind, rng, array,
                                     line=ntok.line, col=ntok.col))
            if not self.accept(","):
                break
        self.expect(";")
        return out

    def _parse_param_decl(self) -> List[A.ModuleItem]:
        local = self.next().text == "localparam"
        self.parse_opt_range()  # parameter ranges are accepted and ignored
        out: List[A.ModuleItem] = []
        while True:
            name = self.expect_ident()
            self.expect("=")
            out.append(A.ParamDecl(name, self.parse_expr(), local))
            if not self.accept(","):
                break
        self.expect(";")
        return out

    def _parse_assign(self) -> List[A.ModuleItem]:
        self.expect("assign")
        out: List[A.ModuleItem] = []
        while True:
            lhs = self.parse_lvalue()
            self.expect("=")
            out.append(A.ContinuousAssign(lhs, self.parse_expr()))
            if not self.accept(","):
                break
        self.expect(";")
        return out

    def _parse_always(self) -> A.Always:
        self.expect("always")
        self.expect("@")
        events: List[A.EdgeEvent] = []
        if self.accept("*"):
            pass
        else:
            self.expect("(")
            if self.accept("*"):
                self.expect(")")
            else:
                while True:
                    if self.peek().text in ("posedge", "negedge"):
                        edge = self.next().text
                        events.append(A.EdgeEvent(edge, self.expect_ident()))
                    else:
                        # Explicit comb sensitivity list: treat as always @*.
                        self.expect_ident()
                    if not (self.accept("or") or self.accept(",")):
                        break
                self.expect(")")
        body = self.parse_statement()
        return A.Always(events, body)

    def _parse_instance(self) -> A.Instance:
        mtok = self.expect_ident_tok()
        module = mtok.text
        param_overrides: Dict[str, A.Expr] = {}
        if self.accept("#"):
            self.expect("(")
            if self.at("."):
                while self.accept("."):
                    pname = self.expect_ident()
                    self.expect("(")
                    param_overrides[pname] = self.parse_expr()
                    self.expect(")")
                    self.accept(",")
            else:
                raise UnsupportedFeatureError(
                    "positional parameter overrides are not supported; use .NAME(value)"
                )
            self.expect(")")
        name = self.expect_ident()
        self.expect("(")
        connections: Dict[str, Optional[A.Expr]] = {}
        by_order: Optional[List[A.Expr]] = None
        if self.at("."):
            while self.accept("."):
                pname = self.expect_ident()
                self.expect("(")
                connections[pname] = None if self.at(")") else self.parse_expr()
                self.expect(")")
                if not self.accept(","):
                    break
        elif not self.at(")"):
            by_order = []
            while True:
                by_order.append(self.parse_expr())
                if not self.accept(","):
                    break
        self.expect(")")
        self.expect(";")
        return A.Instance(module, name, connections, param_overrides, by_order,
                          line=mtok.line, col=mtok.col)

    # ---- statements ---------------------------------------------------------

    def parse_statement(self) -> A.Stmt:
        if self.accept("begin"):
            if self.accept(":"):
                self.expect_ident()  # named block; name ignored
            stmts: List[A.Stmt] = []
            while not self.at("end"):
                stmts.append(self.parse_statement())
            self.expect("end")
            return A.Block(stmts)
        if self.accept("if"):
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            then = self.parse_statement()
            other = self.parse_statement() if self.accept("else") else None
            return A.If(cond, then, other)
        if self.at("case") or self.at("casez") or self.at("casex"):
            kw = self.next().text
            if kw == "casex":
                raise UnsupportedFeatureError("casex is not supported (use casez)")
            self.expect("(")
            subject = self.parse_expr()
            self.expect(")")
            items: List[A.CaseItem] = []
            while not self.at("endcase"):
                if self.accept("default"):
                    self.accept(":")
                    items.append(A.CaseItem([], self.parse_statement()))
                else:
                    labels = [self.parse_expr()]
                    while self.accept(","):
                        labels.append(self.parse_expr())
                    self.expect(":")
                    items.append(A.CaseItem(labels, self.parse_statement()))
            self.expect("endcase")
            return A.Case(subject, items, casez=(kw == "casez"))
        if self.accept(";"):
            return A.Block([])
        if self.at("for"):
            return self._parse_for()
        if self.at("while") or self.at("repeat") or self.at("forever"):
            raise UnsupportedFeatureError(
                f"{self.peek().text} loops are not supported (only "
                "constant-bounded for loops)"
            )
        # assignment statement
        lhs = self.parse_lvalue()
        if self.accept("="):
            rhs = self.parse_expr()
            self.expect(";")
            return A.BlockingAssign(lhs, rhs)
        if self.accept("<="):
            rhs = self.parse_expr()
            self.expect(";")
            return A.NonBlockingAssign(lhs, rhs)
        raise self.error("expected '=' or '<=' in assignment")

    def _parse_generate_item(self) -> List[A.ModuleItem]:
        """One item of a generate region: for / if / plain module item."""
        if self.at("for"):
            self.expect("for")
            self.expect("(")
            var = self.expect_ident()
            self.expect("=")
            init = self.parse_expr()
            self.expect(";")
            cond = self.parse_expr()
            self.expect(";")
            var2 = self.expect_ident()
            self.expect("=")
            step = self.parse_expr()
            self.expect(")")
            if var2 != var:
                raise UnsupportedFeatureError(
                    "generate-for update must assign the loop genvar"
                )
            label, items = self._parse_generate_block(require_label=True)
            return [A.GenerateFor(var, init, cond, step, label, items)]
        if self.at("if"):
            self.expect("if")
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            label, then_items = self._parse_generate_block(require_label=False)
            else_items: List[A.ModuleItem] = []
            if self.accept("else"):
                if self.at("if"):
                    else_items = self._parse_generate_item()
                else:
                    _, else_items = self._parse_generate_block(require_label=False)
            return [A.GenerateIf(cond, then_items, else_items, label)]
        return self.parse_module_item()

    def _parse_generate_block(self, require_label: bool):
        """``begin [: label] <items> end`` or a single generate item."""
        if self.accept("begin"):
            label = ""
            if self.accept(":"):
                label = self.expect_ident()
            if require_label and not label:
                raise UnsupportedFeatureError(
                    "generate-for blocks must be labelled (begin : name)"
                )
            items: List[A.ModuleItem] = []
            while not self.at("end"):
                items.extend(self._parse_generate_item())
            self.expect("end")
            return label, items
        if require_label:
            raise UnsupportedFeatureError(
                "generate-for requires a labelled begin/end block"
            )
        return "", self._parse_generate_item()

    def _parse_function(self) -> A.FuncDecl:
        """Parse a function declaration (classic or ANSI argument style)."""
        self.expect("function")
        self.accept("automatic")
        self._reject_signed()
        rng = self.parse_opt_range()
        name = self.expect_ident()
        inputs: List[Tuple[str, Optional[A.Range]]] = []
        locals_: List[Tuple[str, Optional[A.Range]]] = []
        if self.accept("("):  # ANSI-style arguments
            while not self.at(")"):
                self.expect("input")
                self.accept("wire")
                self._reject_signed()
                arng = self.parse_opt_range()
                inputs.append((self.expect_ident(), arng))
                if not self.accept(","):
                    break
            self.expect(")")
        self.expect(";")
        # Classic-style input/local declarations before the body.
        while True:
            if self.accept("input"):
                self.accept("wire")
                self._reject_signed()
                arng = self.parse_opt_range()
                while True:
                    inputs.append((self.expect_ident(), arng))
                    if not self.accept(","):
                        break
                self.expect(";")
            elif self.at("reg") or self.at("integer"):
                kw = self.next().text
                lrng = (
                    A.Range(A.Number(31), A.Number(0))
                    if kw == "integer"
                    else self.parse_opt_range()
                )
                while True:
                    locals_.append((self.expect_ident(), lrng))
                    if not self.accept(","):
                        break
                self.expect(";")
            else:
                break
        body = self.parse_statement()
        self.expect("endfunction")
        if not inputs:
            raise UnsupportedFeatureError(
                f"function {name!r} has no inputs; use a localparam instead"
            )
        return A.FuncDecl(name, rng, inputs, locals_, body)

    def _parse_for(self) -> A.For:
        """``for (i = a; i < b; i = i + c) body`` — constant-bounded only."""
        self.expect("for")
        self.expect("(")
        var = self.expect_ident()
        self.expect("=")
        init = self.parse_expr()
        self.expect(";")
        cond = self.parse_expr()
        self.expect(";")
        var2 = self.expect_ident()
        self.expect("=")
        step = self.parse_expr()
        self.expect(")")
        if var2 != var:
            raise UnsupportedFeatureError(
                f"for-loop update must assign the loop variable {var!r}, "
                f"not {var2!r}"
            )
        body = self.parse_statement()
        return A.For(var, init, cond, step, body)

    def parse_lvalue(self) -> A.LValue:
        if self.at("{"):
            self.expect("{")
            parts: List[A.Expr] = [self.parse_lvalue()]
            while self.accept(","):
                parts.append(self.parse_lvalue())
            self.expect("}")
            return A.Concat(parts)
        name = self.expect_ident()
        return self._parse_select_suffix(name)

    def _parse_scoped_ident(self, name: str) -> str:
        """Extend ``name`` with hierarchical scope segments.

        Generate-for blocks expose their declarations as ``label[i].name``
        (with a literal index); plain dotted paths are also folded so
        expressions can reference scoped nets.
        """
        while True:
            if self.at("."):
                self.next()
                name += "." + self.expect_ident()
                continue
            # label[3].net — only a literal index followed by '.' is a
            # scope segment; anything else is a real select.
            if (
                self.at("[")
                and self.peek(1).kind is TokenKind.NUMBER
                and self.peek(2).text == "]"
                and self.peek(3).text == "."
            ):
                self.next()  # [
                idx = self.next()  # number
                self.next()  # ]
                self.next()  # .
                name += f"[{idx.value}]." + self.expect_ident()
                continue
            return name

    def _parse_select_suffix(self, name: str) -> A.Expr:
        """Parse ``name``, ``name[i]``, ``name[m:l]``, ``name[s +: w]``,
        and memory-bit combinations like ``name[i][j]``."""
        name = self._parse_scoped_ident(name)
        if not self.at("["):
            return A.Ident(name)
        self.expect("[")
        first = self.parse_expr()
        if self.accept(":"):
            lsb = self.parse_expr()
            self.expect("]")
            return A.PartSelect(name, first, lsb)
        if self.accept("+:"):
            w = self.parse_expr()
            self.expect("]")
            return A.IndexedPartSelect(name, first, w, descending=False)
        if self.accept("-:"):
            w = self.parse_expr()
            self.expect("]")
            return A.IndexedPartSelect(name, first, w, descending=True)
        self.expect("]")
        node: A.Expr = A.Index(name, first)
        if self.at("["):
            raise UnsupportedFeatureError(
                "chained selects (e.g. mem[i][j]) are not supported; "
                "read the element into a wire first"
            )
        return node

    # ---- expressions ----------------------------------------------------------

    def parse_expr(self) -> A.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> A.Expr:
        cond = self._parse_binary(0)
        if self.accept("?"):
            then = self._parse_ternary()
            self.expect(":")
            other = self._parse_ternary()
            return A.Ternary(cond, then, other)
        return cond

    def _parse_binary(self, level: int) -> A.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        ops = _BINARY_LEVELS[level]
        left = self._parse_binary(level + 1)
        while self.peek().kind is TokenKind.OP and self.peek().text in ops:
            op = self.next().text
            right = self._parse_binary(level + 1)
            left = A.Binary(op, left, right)
        return left

    def _parse_unary(self) -> A.Expr:
        t = self.peek()
        if t.kind is TokenKind.OP and t.text in _UNARY_OPS:
            self.next()
            return A.Unary(t.text, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> A.Expr:
        t = self.peek()
        if t.kind is TokenKind.NUMBER:
            self.next()
            return A.Number(t.value, t.size, t.xz_mask)
        if self.accept("("):
            e = self.parse_expr()
            self.expect(")")
            return e
        if self.at("{"):
            self.expect("{")
            first = self.parse_expr()
            if self.at("{"):
                # replication: { count { value } }
                self.expect("{")
                value = self.parse_expr()
                rest: List[A.Expr] = [value]
                while self.accept(","):
                    rest.append(self.parse_expr())
                self.expect("}")
                self.expect("}")
                inner = rest[0] if len(rest) == 1 else A.Concat(rest)
                return A.Repeat(first, inner)
            parts = [first]
            while self.accept(","):
                parts.append(self.parse_expr())
            self.expect("}")
            return A.Concat(parts)
        if t.kind is TokenKind.IDENT:
            if t.text.startswith("$"):
                raise UnsupportedFeatureError(f"system function {t.text} is not supported")
            self.next()
            if self.at("("):  # user-defined function call
                self.expect("(")
                args: List[A.Expr] = []
                if not self.at(")"):
                    while True:
                        args.append(self.parse_expr())
                        if not self.accept(","):
                            break
                self.expect(")")
                return A.FuncCall(t.text, args)
            return self._parse_select_suffix(t.text)
        raise self.error(f"unexpected token {t.text!r} in expression")


def parse_source(
    text: str,
    filename: str = "<input>",
    defines: Optional[Dict[str, str]] = None,
    include_dirs=(),
) -> A.SourceUnit:
    """Preprocess, lex and parse Verilog source text."""
    expanded = preprocess(text, defines, include_dirs, filename)
    tokens = list(Lexer(expanded, filename).tokens())
    return Parser(tokens, filename).parse()
