"""Deterministic fault injection: every recovery path, on demand.

A :class:`FaultPlan` is a seedable script of failures — lane faults at
chosen cycles, MCMC trial crashes/hangs, pipeline group crashes, and
checkpoint-write failures — that the runtime components consult at their
fault points.  Because the plan is pure data derived from a seed (or
written explicitly), the same plan replays the same faults every run:
the differential suite and the CI smoke job exercise quarantine,
watchdog/retry, graceful degradation, and checkpoint recovery without
flaky monkeypatching.

Injected failures are *transient by default* (``attempts=1``): the first
attempt at the fault point fails, retries succeed — which is exactly the
shape a retry policy must be able to absorb.  Raise ``attempts`` to model
persistent failures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.resilience.faults import (
    REASON_INJECTED,
    LaneStimulusError,
)

__all__ = [
    "LaneFaultSpec",
    "TrialFaultSpec",
    "GroupFaultSpec",
    "FaultPlan",
    "InjectedCrash",
    "InjectedCheckpointFailure",
    "FaultyStimulus",
]


class InjectedCrash(RuntimeError):
    """A scripted crash standing in for an arbitrary runtime failure."""


class InjectedCheckpointFailure(OSError):
    """A scripted checkpoint-write failure (disk full, I/O error, ...)."""


@dataclass(frozen=True)
class LaneFaultSpec:
    """Quarantine ``lane`` at ``cycle`` with ``reason``."""

    cycle: int
    lane: int
    reason: str = REASON_INJECTED

    def to_dict(self) -> dict:
        return {"cycle": self.cycle, "lane": self.lane, "reason": self.reason}


@dataclass(frozen=True)
class TrialFaultSpec:
    """Fail MCMC trial ``iteration``: 'crash' raises, 'hang' sleeps.

    ``attempts`` is how many attempts at this trial fail before the
    injection is spent; ``hang_s`` is how long a hang sleeps (pick it
    longer than the watchdog timeout under test).
    """

    iteration: int
    mode: str = "crash"  # 'crash' | 'hang'
    attempts: int = 1
    hang_s: float = 0.25

    def __post_init__(self) -> None:
        if self.mode not in ("crash", "hang"):
            raise ValueError(f"trial fault mode must be crash|hang, got {self.mode!r}")


@dataclass(frozen=True)
class GroupFaultSpec:
    """Crash pipeline group ``group`` at ``cycle`` (``attempts`` times)."""

    group: int
    cycle: int
    attempts: int = 1


@dataclass
class FaultPlan:
    """A deterministic script of injected failures.

    Build one explicitly (tests, CLI flags) or with :meth:`random` from a
    seed.  Fire-tracking is stateful: each spec fires at most ``attempts``
    times, so a sequential-fallback rerun or a retry sails past a
    transient injection — deterministic recovery, not deterministic
    doom.
    """

    lane_faults: List[LaneFaultSpec] = field(default_factory=list)
    trial_faults: List[TrialFaultSpec] = field(default_factory=list)
    group_faults: List[GroupFaultSpec] = field(default_factory=list)
    # Checkpoint-write indices (0-based) that fail.
    checkpoint_failures: Set[int] = field(default_factory=set)
    # Stimulus decode errors: (cycle, lane) pairs, fire once each.
    stimulus_faults: Set[Tuple[int, int]] = field(default_factory=set)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self._trial_fired: Dict[int, int] = {}
        self._group_fired: Dict[Tuple[int, int], int] = {}
        self._stimulus_fired: Set[Tuple[int, int]] = set()

    # -- construction ---------------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        n_lanes: int,
        cycles: int,
        lane_fault_count: int = 1,
        trial_fault_count: int = 0,
        max_trial_iteration: int = 8,
    ) -> "FaultPlan":
        """A reproducible plan drawn from ``seed`` (same seed, same plan)."""
        rng = np.random.default_rng(seed)
        lanes = rng.choice(n_lanes, size=min(lane_fault_count, n_lanes),
                           replace=False)
        lane_faults = [
            LaneFaultSpec(cycle=int(rng.integers(0, max(1, cycles))),
                          lane=int(lane))
            for lane in lanes
        ]
        iters = rng.choice(max(1, max_trial_iteration),
                           size=min(trial_fault_count, max(1, max_trial_iteration)),
                           replace=False)
        trial_faults = [
            TrialFaultSpec(iteration=int(i),
                           mode="crash" if rng.integers(0, 2) else "hang")
            for i in iters
        ]
        return cls(lane_faults=lane_faults, trial_faults=trial_faults, seed=seed)

    # -- query hooks (called from the runtime's fault points) -----------------

    def lane_faults_at(self, cycle: int) -> List[LaneFaultSpec]:
        return [s for s in self.lane_faults if s.cycle == cycle]

    def max_lane(self) -> int:
        return max((s.lane for s in self.lane_faults), default=-1)

    def maybe_fail_trial(self, iteration: int) -> None:
        """Raise/hang if this MCMC trial is scripted to fail (and unspent)."""
        for spec in self.trial_faults:
            if spec.iteration != iteration:
                continue
            fired = self._trial_fired.get(iteration, 0)
            if fired >= spec.attempts:
                continue
            self._trial_fired[iteration] = fired + 1
            if spec.mode == "hang":
                time.sleep(spec.hang_s)
                # A real hang never returns; the watchdog fires first.
                # Returning afterwards keeps un-watchdogged tests finite.
                return
            raise InjectedCrash(f"injected crash in MCMC trial {iteration}")

    def maybe_fail_group(self, group: int, cycle: int) -> None:
        """Raise if this pipeline (group, cycle) is scripted to crash."""
        for spec in self.group_faults:
            if spec.group != group or spec.cycle != cycle:
                continue
            key = (group, cycle)
            fired = self._group_fired.get(key, 0)
            if fired >= spec.attempts:
                continue
            self._group_fired[key] = fired + 1
            raise InjectedCrash(
                f"injected crash in pipeline group {group} at cycle {cycle}"
            )

    def maybe_fail_checkpoint(self, write_index: int) -> None:
        """Raise if checkpoint write ``write_index`` is scripted to fail."""
        if write_index in self.checkpoint_failures:
            raise InjectedCheckpointFailure(
                f"injected checkpoint-write failure (write #{write_index})"
            )

    def maybe_fail_stimulus(self, cycle: int, lane: int) -> None:
        key = (cycle, lane)
        if key in self.stimulus_faults and key not in self._stimulus_fired:
            self._stimulus_fired.add(key)
            raise LaneStimulusError(lane, cycle, "injected stimulus decode fault")

    # -- reporting ------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "lane_faults": [s.to_dict() for s in self.lane_faults],
            "trial_faults": [
                {"iteration": s.iteration, "mode": s.mode, "attempts": s.attempts}
                for s in self.trial_faults
            ],
            "group_faults": [
                {"group": s.group, "cycle": s.cycle, "attempts": s.attempts}
                for s in self.group_faults
            ],
            "checkpoint_failures": sorted(self.checkpoint_failures),
            "stimulus_faults": sorted(self.stimulus_faults),
        }


class FaultyStimulus:
    """Wrap a stimulus batch so planned (cycle, lane) decodes fail once.

    Exercises the simulator's stimulus-decode recovery path: the wrapped
    ``inputs_at`` raises :class:`LaneStimulusError` the first time a
    scripted (cycle, lane) is fetched; the simulator quarantines the lane
    and re-fetches, and the second fetch succeeds.
    """

    def __init__(self, inner, plan: FaultPlan):
        self.inner = inner
        self.plan = plan

    def __len__(self) -> int:
        return len(self.inner)

    @property
    def n(self) -> int:
        return self.inner.n

    def inputs_at(self, cycle: int):
        for (c, lane) in sorted(self.plan.stimulus_faults):
            if c == cycle:
                self.plan.maybe_fail_stimulus(c, lane)
        return self.inner.inputs_at(cycle)

    def inputs_at_range(self, cycle: int, lo: int, hi: int):
        for (c, lane) in sorted(self.plan.stimulus_faults):
            if c == cycle and lo <= lane < hi:
                self.plan.maybe_fail_stimulus(c, lane)
        return self.inner.inputs_at_range(cycle, lo, hi)


def parse_lane_fault(spec: str) -> LaneFaultSpec:
    """Parse a CLI ``CYCLE:LANE[:REASON]`` lane-fault spec."""
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise ValueError(
            f"lane fault spec must be CYCLE:LANE[:REASON], got {spec!r}"
        )
    try:
        cycle, lane = int(parts[0]), int(parts[1])
    except ValueError:
        raise ValueError(
            f"lane fault spec must be CYCLE:LANE[:REASON], got {spec!r}"
        ) from None
    reason = parts[2] if len(parts) == 3 else REASON_INJECTED
    return LaneFaultSpec(cycle=cycle, lane=lane, reason=reason)
