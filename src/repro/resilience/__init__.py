"""Fault tolerance for batch RTL simulation.

Four pillars (see docs/resilience.md):

- **Lane quarantine** (:mod:`repro.resilience.faults`): one poisoned
  stimulus lane is masked out of the batch instead of aborting the other
  N-1; survivors stay bit-identical to a fault-free run.
- **Durable checkpoints** (:mod:`repro.resilience.checkpoint`): atomic
  write-to-temp + fsync + rename snapshots, policy-driven cadence,
  SIGKILL-safe resume.
- **Watchdog + retry** (:mod:`repro.resilience.retry`): bounded retries
  with backoff and thread watchdog timeouts around crash-prone work
  (MCMC compile-and-run trials, pipeline groups).
- **Deterministic fault injection** (:mod:`repro.resilience.inject`): a
  seedable :class:`FaultPlan` that replays scripted failures so every
  recovery path is testable in CI.

This package sits below ``core``: it imports only numpy, ``utils`` and
``obs``, so the simulator can depend on it without cycles.
"""

from repro.resilience.checkpoint import (
    CheckpointManager,
    CheckpointPolicy,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)
from repro.resilience.faults import (
    REASON_COVERAGE,
    REASON_DIV_ZERO,
    REASON_INJECTED,
    REASON_MEM_OOB,
    REASON_STIMULUS,
    LaneFault,
    LaneQuarantine,
    LaneStimulusError,
    merge_fault_lists,
)
from repro.resilience.inject import (
    FaultPlan,
    FaultyStimulus,
    GroupFaultSpec,
    InjectedCheckpointFailure,
    InjectedCrash,
    LaneFaultSpec,
    TrialFaultSpec,
    parse_lane_fault,
)
from repro.resilience.retry import RetryPolicy, call_with_retry, run_with_timeout
from repro.utils.errors import (
    CheckpointError,
    ResilienceError,
    RetryExhausted,
    WatchdogTimeout,
)

__all__ = [
    # faults
    "LaneFault",
    "LaneQuarantine",
    "LaneStimulusError",
    "merge_fault_lists",
    "REASON_MEM_OOB",
    "REASON_DIV_ZERO",
    "REASON_STIMULUS",
    "REASON_COVERAGE",
    "REASON_INJECTED",
    # checkpoint
    "CheckpointPolicy",
    "CheckpointManager",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    # retry
    "RetryPolicy",
    "run_with_timeout",
    "call_with_retry",
    # inject
    "FaultPlan",
    "FaultyStimulus",
    "LaneFaultSpec",
    "TrialFaultSpec",
    "GroupFaultSpec",
    "InjectedCrash",
    "InjectedCheckpointFailure",
    "parse_lane_fault",
    # errors
    "ResilienceError",
    "CheckpointError",
    "WatchdogTimeout",
    "RetryExhausted",
]
