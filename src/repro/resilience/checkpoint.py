"""Durable, atomic on-disk checkpoints for long batch runs.

The in-memory ``save_checkpoint`` dict (pools + clock phase + epoch
state + quarantine) is serialized with pickle and written with the
classic crash-safe sequence: write to a temp file in the same directory,
``fsync``, then ``os.replace`` onto the final name (plus a best-effort
directory fsync).  A SIGKILL at any instant leaves either the previous
checkpoint or the new one — never a truncated file — and resume always
picks the newest complete snapshot.

:class:`CheckpointPolicy` decides *when* to snapshot (every K cycles
and/or every T seconds); :class:`CheckpointManager` owns a directory of
``ckpt-<cycles>.pkl`` files, prunes old ones, and degrades gracefully
when a periodic write fails (the run continues from the previous
checkpoint; failures are counted in ``resilience.checkpoint_write_failures``).
"""

from __future__ import annotations

import json
import os
import pickle
import re
import tempfile
import time
from dataclasses import dataclass
from typing import Optional

from repro.obs import get_metrics, get_tracer
from repro.utils.errors import CheckpointError

__all__ = [
    "CheckpointPolicy",
    "CheckpointManager",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
]

_CKPT_RE = re.compile(r"^ckpt-(\d+)\.pkl$")


# ---------------------------------------------------------------------------
# Atomic file writes (also used by the benchmark result emitters)
# ---------------------------------------------------------------------------


def atomic_write_bytes(path: str, data: bytes) -> str:
    """Write ``data`` to ``path`` atomically (temp + fsync + rename)."""
    path = os.path.abspath(path)
    directory = os.path.dirname(path)
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    # Durability of the rename itself: fsync the directory when the
    # platform allows opening one (best-effort elsewhere).
    try:
        dfd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dfd)
        finally:
            os.close(dfd)
    except OSError:
        pass
    return path


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> str:
    return atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path: str, payload, **json_kw) -> str:
    json_kw.setdefault("indent", 2)
    return atomic_write_text(path, json.dumps(payload, **json_kw) + "\n")


# ---------------------------------------------------------------------------
# Policy + manager
# ---------------------------------------------------------------------------


@dataclass
class CheckpointPolicy:
    """When to snapshot: every K cycles, every T seconds, or both.

    Either trigger firing makes the snapshot due; ``None`` disables that
    trigger.  A policy with both triggers disabled never fires on its own
    (only explicit ``save`` calls write).
    """

    every_cycles: Optional[int] = None
    every_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.every_cycles is not None and self.every_cycles <= 0:
            raise CheckpointError(
                f"every_cycles must be positive, got {self.every_cycles}"
            )
        if self.every_seconds is not None and self.every_seconds <= 0:
            raise CheckpointError(
                f"every_seconds must be positive, got {self.every_seconds}"
            )

    def due(self, cycles_since: int, seconds_since: float) -> bool:
        if self.every_cycles is not None and cycles_since >= self.every_cycles:
            return True
        if self.every_seconds is not None and seconds_since >= self.every_seconds:
            return True
        return False


class CheckpointManager:
    """A directory of atomic checkpoints with periodic-save bookkeeping.

    ``fault_plan`` (see :mod:`repro.resilience.inject`) lets tests force
    write failures deterministically; a failed *periodic* write is
    swallowed (counted, previous checkpoint intact) while an explicit
    ``save(..., required=True)`` re-raises as :class:`CheckpointError`.
    """

    def __init__(
        self,
        directory: str,
        policy: Optional[CheckpointPolicy] = None,
        keep: int = 2,
        fault_plan=None,
        tracer=None,
        metrics=None,
    ):
        if keep < 1:
            raise CheckpointError(f"keep must be >= 1, got {keep}")
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.policy = policy
        self.keep = keep
        self.fault_plan = fault_plan
        self.tracer = tracer if tracer is not None else get_tracer()
        self.metrics = metrics if metrics is not None else get_metrics()
        self.writes = 0
        self.write_attempts = 0
        self.write_failures = 0
        self._anchor_cycles: Optional[int] = None
        self._last_save_time = time.monotonic()

    # -- periodic-save bookkeeping ---------------------------------------------

    def begin(self, cycles: int) -> None:
        """Anchor the cycle counter at the start of a (resumed) run."""
        self._anchor_cycles = cycles
        self._last_save_time = time.monotonic()

    def maybe_save(self, sim) -> Optional[str]:
        """Snapshot ``sim`` if the policy says a checkpoint is due."""
        if self.policy is None:
            return None
        cycles = sim.cycles_run
        if self._anchor_cycles is None:
            self._anchor_cycles = cycles
        now = time.monotonic()
        if not self.policy.due(cycles - self._anchor_cycles,
                               now - self._last_save_time):
            return None
        return self.save(sim, required=False)

    # -- saving ----------------------------------------------------------------

    def save(self, sim, required: bool = True) -> Optional[str]:
        """Write one atomic checkpoint of ``sim``; prune old snapshots.

        ``required=False`` (the periodic path) turns write failures into
        graceful degradation: the failure is counted and the run keeps
        its previous durable checkpoint.
        """
        cycles = sim.cycles_run
        path = os.path.join(self.directory, f"ckpt-{cycles:012d}.pkl")
        attempt = self.write_attempts
        self.write_attempts += 1
        try:
            with self.tracer.span("checkpoint_save", resource="resilience"):
                if self.fault_plan is not None:
                    # Indexed by attempt (not by successful write) so an
                    # injected failure is transient: the next attempt has
                    # the next index and goes through.
                    self.fault_plan.maybe_fail_checkpoint(attempt)
                blob = pickle.dumps(
                    sim.save_checkpoint(), protocol=pickle.HIGHEST_PROTOCOL
                )
                atomic_write_bytes(path, blob)
        except Exception as exc:
            self.write_failures += 1
            self.metrics.inc("resilience.checkpoint_write_failures")
            if required:
                raise CheckpointError(
                    f"failed to write checkpoint {path}: {exc}"
                ) from exc
            return None
        self.writes += 1
        self._anchor_cycles = cycles
        self._last_save_time = time.monotonic()
        self.metrics.inc("resilience.checkpoints_written")
        self._prune()
        return path

    def _prune(self) -> None:
        entries = self._entries()
        for _cycles, name in entries[: max(0, len(entries) - self.keep)]:
            try:
                os.unlink(os.path.join(self.directory, name))
            except OSError:
                pass

    # -- loading ---------------------------------------------------------------

    def _entries(self):
        """(cycles, filename) of complete checkpoints, oldest first."""
        out = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        for name in names:
            m = _CKPT_RE.match(name)
            if m:  # temp files and foreign names never match
                out.append((int(m.group(1)), name))
        out.sort()
        return out

    def latest_path(self) -> Optional[str]:
        entries = self._entries()
        if not entries:
            return None
        return os.path.join(self.directory, entries[-1][1])

    @staticmethod
    def load(path: str) -> dict:
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except Exception as exc:
            # Corrupt or version-skewed pickles raise far more than
            # UnpicklingError (AttributeError / ImportError / KeyError /
            # ValueError / ... from inside the deserializer), so wrap
            # everything: callers get the documented CheckpointError and
            # their graceful resume-failure path, never a raw exception.
            raise CheckpointError(
                f"cannot load checkpoint {path}: {exc}"
            ) from exc

    def load_latest(self) -> Optional[dict]:
        """The newest complete checkpoint's payload, or None if empty."""
        path = self.latest_path()
        if path is None:
            return None
        ckpt = self.load(path)
        self.metrics.inc("resilience.resumes")
        return ckpt
