"""Watchdog timeouts and bounded retry with backoff.

The MCMC partitioner's compile-and-run trials and the pipeline group
chains are the two places a single wedged or crashed unit of work used to
take the whole run down.  :func:`run_with_timeout` bounds one attempt
with a daemon-thread watchdog; :func:`call_with_retry` layers bounded
retries with (deterministically testable) backoff on top and raises
:class:`~repro.utils.errors.RetryExhausted` only after every attempt
failed — callers then degrade (score the trial as rejected, fall back to
sequential execution) instead of aborting.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from repro.utils.errors import RetryExhausted, WatchdogTimeout

__all__ = ["RetryPolicy", "run_with_timeout", "call_with_retry"]

T = TypeVar("T")


@dataclass
class RetryPolicy:
    """How many attempts, how long each may run, how long to wait between.

    ``backoff_s`` doubles (``backoff_factor``) after every failed attempt,
    the standard bounded exponential backoff.  ``timeout_s=None`` disables
    the watchdog (attempts run to completion).
    """

    max_attempts: int = 2
    timeout_s: Optional[float] = None
    backoff_s: float = 0.0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")


def run_with_timeout(fn: Callable[[], T], timeout_s: Optional[float],
                     label: str = "guarded task") -> T:
    """Run ``fn`` under a watchdog; raise :class:`WatchdogTimeout` on expiry.

    The attempt runs in a daemon thread — Python cannot forcibly kill it,
    so a timed-out attempt may keep running in the background; its result
    is discarded and its side effects must be idempotent or disposable
    (true for MCMC trials, which only produce a cost number).
    """
    if timeout_s is None:
        return fn()
    box: dict = {}

    def runner() -> None:
        try:
            box["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised in caller
            box["error"] = exc

    t = threading.Thread(target=runner, daemon=True, name=f"watchdog:{label}")
    t.start()
    t.join(timeout_s)
    if t.is_alive():
        raise WatchdogTimeout(
            f"{label} exceeded its {timeout_s:.3g}s watchdog timeout"
        )
    if "error" in box:
        raise box["error"]
    return box["value"]


def call_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy,
    label: str = "guarded task",
    on_failure: Optional[Callable[[int, BaseException], None]] = None,
    sleep: Callable[[float], None] = None,
) -> T:
    """Run ``fn`` with the policy's watchdog + bounded retry/backoff.

    ``on_failure(attempt_index, exc)`` fires after every failed attempt
    (for metric counting); ``sleep`` is injectable so tests stay instant.
    Exhaustion raises :class:`RetryExhausted` carrying the last error.
    """
    if sleep is None:
        import time

        sleep = time.sleep
    delay = policy.backoff_s
    last: Optional[BaseException] = None
    for attempt in range(policy.max_attempts):
        try:
            return run_with_timeout(fn, policy.timeout_s, label=label)
        except Exception as exc:  # noqa: BLE001 - degradation is the point
            last = exc
            if on_failure is not None:
                on_failure(attempt, exc)
            if attempt + 1 < policy.max_attempts and delay > 0:
                sleep(delay)
                delay *= policy.backoff_factor
    raise RetryExhausted(
        f"{label} failed after {policy.max_attempts} attempt(s): {last}",
        last_error=last,
        attempts=policy.max_attempts,
    )
