"""Per-lane fault records and the quarantine mask.

A batch run carries thousands of independent stimulus lanes; one poisoned
lane (out-of-bounds memory address, divide-by-zero, undecodable stimulus,
failed coverage check) must not abort the other N-1.  The quarantine
keeps a boolean *active* mask over the batch axis: faulted lanes are
masked out of register/memory commits and input application from the
faulting cycle onward, so their state freezes while every surviving lane
continues bit-identically to a run that never contained the faulty
stimulus (lanes share no state — see docs/resilience.md).

Every quarantined lane produces exactly one structured :class:`LaneFault`
(first fault wins) so a failing campaign yields a machine-readable
post-mortem instead of a dead process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.utils.errors import SimulationError

__all__ = ["LaneFault", "LaneQuarantine", "LaneStimulusError"]

# Well-known fault reason codes (free-form strings are also accepted).
REASON_MEM_OOB = "mem-oob-write"
REASON_DIV_ZERO = "div-by-zero"
REASON_STIMULUS = "stimulus-decode"
REASON_COVERAGE = "coverage-check"
REASON_INJECTED = "injected"


@dataclass(frozen=True)
class LaneFault:
    """One lane's terminal fault: who, when, and why."""

    lane: int
    cycle: int
    reason: str
    task: Optional[str] = None
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "lane": self.lane,
            "cycle": self.cycle,
            "reason": self.reason,
            "task": self.task,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "LaneFault":
        return cls(
            lane=int(d["lane"]),
            cycle=int(d["cycle"]),
            reason=str(d["reason"]),
            task=d.get("task"),
            detail=d.get("detail", ""),
        )

    def __str__(self) -> str:
        where = f" in {self.task}" if self.task else ""
        tail = f": {self.detail}" if self.detail else ""
        return f"lane {self.lane} @ cycle {self.cycle}: {self.reason}{where}{tail}"


class LaneStimulusError(Exception):
    """A stimulus source could not decode one lane's input at one cycle.

    Raised by stimulus decoders (or the fault-injection harness) to mean
    "this lane's stimulus is poisoned" — the batch simulator quarantines
    the lane and re-fetches inputs rather than aborting the whole batch.
    """

    def __init__(self, lane: int, cycle: int, message: str = ""):
        self.lane = lane
        self.cycle = cycle
        super().__init__(
            message or f"undecodable stimulus for lane {lane} at cycle {cycle}"
        )


class LaneQuarantine:
    """The per-batch active mask plus the structured fault log.

    ``active`` is a boolean (N,) array — True means the lane is still
    live.  Quarantining is idempotent per lane: only the *first* fault is
    recorded, later faults on an already-dead lane are ignored (its state
    is frozen, anything it "computes" afterwards is garbage by design).
    """

    def __init__(self, n: int):
        if n <= 0:
            raise SimulationError(f"batch size must be positive, got {n}")
        self.n = n
        self.active = np.ones(n, dtype=bool)
        self.faults: List[LaneFault] = []
        # Cached so hot paths pay one attribute read, not an (N,) reduction.
        self._all_active = True

    # -- state ----------------------------------------------------------------

    @property
    def all_active(self) -> bool:
        return self._all_active

    @property
    def any_active(self) -> bool:
        """True while at least one lane is still live (O(1): every dead
        lane has exactly one fault record, so no mask reduction needed)."""
        return len(self.faults) < self.n

    @property
    def fault_count(self) -> int:
        return len(self.faults)

    def active_lanes(self) -> np.ndarray:
        """Indices of the lanes still live."""
        return np.nonzero(self.active)[0]

    def faulted_lanes(self) -> List[int]:
        """Lanes quarantined so far, in fault order."""
        return [f.lane for f in self.faults]

    # -- quarantining ---------------------------------------------------------

    def quarantine(
        self,
        lanes: Union[int, Sequence[int], np.ndarray],
        cycle: int,
        reason: str,
        task: Optional[str] = None,
        detail: str = "",
    ) -> List[int]:
        """Mask out ``lanes``; returns the lanes that were newly faulted."""
        arr = np.atleast_1d(np.asarray(lanes, dtype=np.int64))
        fresh: List[int] = []
        for lane in arr:
            lane = int(lane)
            if lane < 0 or lane >= self.n:
                raise SimulationError(
                    f"lane {lane} out of range for batch size {self.n}"
                )
            if not self.active[lane]:
                continue
            self.active[lane] = False
            self.faults.append(
                LaneFault(lane=lane, cycle=cycle, reason=reason,
                          task=task, detail=detail)
            )
            fresh.append(lane)
        if fresh:
            self._all_active = False
        return fresh

    # -- persistence (rides inside simulator checkpoints) ---------------------

    def state_dict(self) -> dict:
        return {
            "n": self.n,
            "active": self.active.copy(),
            "faults": [f.to_dict() for f in self.faults],
        }

    @classmethod
    def from_state(cls, state: dict) -> "LaneQuarantine":
        q = cls(int(state["n"]))
        active = np.asarray(state["active"], dtype=bool)
        if active.shape != (q.n,):
            raise SimulationError(
                f"quarantine state has mask shape {active.shape}, "
                f"expected ({q.n},)"
            )
        q.active[:] = active
        q.faults = [LaneFault.from_dict(d) for d in state["faults"]]
        q._all_active = bool(active.all())
        return q

    def load_state(self, state: dict) -> None:
        restored = LaneQuarantine.from_state(state)
        if restored.n != self.n:
            raise SimulationError(
                f"quarantine state is for batch size {restored.n}, not {self.n}"
            )
        self.active[:] = restored.active
        self.faults = restored.faults
        self._all_active = restored._all_active

    # -- reporting ------------------------------------------------------------

    def report(self) -> dict:
        """JSON-ready summary (the ``repro run --fault-report`` payload)."""
        return {
            "n": self.n,
            "active_lanes": int(self.active.sum()),
            "faulted_lanes": self.faulted_lanes(),
            "faults": [f.to_dict() for f in self.faults],
        }

    def summary(self) -> str:
        if not self.faults:
            return f"all {self.n} lanes healthy"
        lines = [f"{len(self.faults)}/{self.n} lanes quarantined:"]
        lines += [f"  {f}" for f in self.faults[:20]]
        if len(self.faults) > 20:
            lines.append(f"  ... (+{len(self.faults) - 20} more)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"LaneQuarantine(n={self.n}, "
                f"faulted={len(self.faults)})")


def merge_fault_lists(parts: Iterable[Iterable[LaneFault]]) -> List[LaneFault]:
    """Flatten per-group fault lists (pipeline groups) into cycle order."""
    out: List[LaneFault] = []
    for p in parts:
        out.extend(p)
    out.sort(key=lambda f: (f.cycle, f.lane))
    return out
