"""The repro stimulus text format.

One file per stimulus::

    # repro-stimulus v1
    # inputs: rst en din
    1 0 0
    0 1 a3
    0 1 7f

Values are unprefixed hex, one line per cycle, columns matching the
header's input order.  Clock inputs are never part of a stimulus — the
simulator toggles them (Listing 1).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.utils.errors import SimulationError

MAGIC = "# repro-stimulus v1"


def encode_stimulus_text(names: Sequence[str], rows: Sequence[Sequence[int]]) -> str:
    """Render one stimulus as text."""
    lines = [MAGIC, "# inputs: " + " ".join(names)]
    for row in rows:
        if len(row) != len(names):
            raise SimulationError(
                f"stimulus row has {len(row)} values for {len(names)} inputs"
            )
        lines.append(" ".join(format(int(v), "x") for v in row))
    return "\n".join(lines) + "\n"


def decode_stimulus_text(text: str) -> Tuple[List[str], np.ndarray]:
    """Parse one stimulus; returns (input names, values[cycles, inputs])."""
    lines = text.splitlines()
    if not lines or lines[0].strip() != MAGIC:
        raise SimulationError("not a repro-stimulus v1 file")
    if len(lines) < 2 or not lines[1].startswith("# inputs:"):
        raise SimulationError("missing '# inputs:' header")
    names = lines[1][len("# inputs:"):].split()
    rows: List[List[int]] = []
    for lineno, line in enumerate(lines[2:], start=3):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != len(names):
            raise SimulationError(
                f"line {lineno}: {len(parts)} values for {len(names)} inputs"
            )
        try:
            rows.append([int(p, 16) for p in parts])
        except ValueError:
            raise SimulationError(f"line {lineno}: bad hex value")
    values = np.array(rows, dtype=np.uint64) if rows else np.empty(
        (0, len(names)), dtype=np.uint64
    )
    return names, values


def write_stimulus_file(path: str, names: Sequence[str], rows) -> None:
    """Write one stimulus to ``path`` in the v1 text format."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(encode_stimulus_text(names, rows))


def read_stimulus_file(path: str) -> Tuple[List[str], np.ndarray]:
    """Read one stimulus file; returns (names, values)."""
    with open(path, "r", encoding="utf-8") as fh:
        return decode_stimulus_text(fh.read())
