"""Memory image files in ``$readmemh`` format.

The front end deliberately has no ``initial`` blocks (state preloads go
through the simulator API), so this module supplies the standard way to
get program/weight images into memories: the `$readmemh` text format —
whitespace-separated hex words, ``//`` and ``/* */`` comments, and
``@addr`` address jumps.

::

    // boot.hex
    @0
    00000093 00100113
    @10
    deadbeef
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.utils.errors import SimulationError


def parse_hex_image(text: str) -> Dict[int, int]:
    """Parse $readmemh text into an {address: word} map."""
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.S)
    text = re.sub(r"//[^\n]*", " ", text)
    out: Dict[int, int] = {}
    addr = 0
    for tok in text.split():
        if tok.startswith("@"):
            try:
                addr = int(tok[1:], 16)
            except ValueError:
                raise SimulationError(f"bad address directive {tok!r}")
            continue
        cleaned = tok.replace("_", "")
        # Two-state: x/z digits read as zero, as everywhere else.
        cleaned = re.sub(r"[xXzZ?]", "0", cleaned)
        try:
            out[addr] = int(cleaned, 16)
        except ValueError:
            raise SimulationError(f"bad hex word {tok!r} in memory image")
        addr += 1
    return out


def image_to_list(image: Dict[int, int], depth: int = 0) -> List[int]:
    """Dense word list from a sparse image (missing addresses are 0)."""
    if not image:
        return [0] * depth
    top = max(image)
    size = max(depth, top + 1)
    out = [0] * size
    for a, v in image.items():
        if a < 0:
            raise SimulationError(f"negative address {a} in memory image")
        out[a] = v
    return out


def read_hex_image(path: str, depth: int = 0) -> List[int]:
    """Load a $readmemh file as a dense word list."""
    with open(path, "r", encoding="utf-8") as fh:
        return image_to_list(parse_hex_image(fh.read()), depth)


def write_hex_image(path: str, words, per_line: int = 8) -> None:
    """Write words as a $readmemh file (round-trips with read_hex_image)."""
    lines = []
    row: List[str] = []
    for w in words:
        row.append(format(int(w), "x"))
        if len(row) == per_line:
            lines.append(" ".join(row))
            row = []
    if row:
        lines.append(" ".join(row))
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")
