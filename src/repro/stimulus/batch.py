"""Batch stimulus containers.

:class:`StimulusBatch` holds decoded arrays (cycles, N) per input — the
fast path.  :class:`TextStimulusBatch` keeps the raw per-stimulus text and
decodes lazily per (cycle, lane-range); its decode cost is the realistic
CPU-side ``set_inputs`` work of Fig. 2 that the pipeline scheduler (§3.2.3)
overlaps with GPU evaluation.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.stimulus.format import decode_stimulus_text, encode_stimulus_text
from repro.utils.errors import SimulationError


class StimulusBatch:
    """Decoded batch stimulus: per input, an array of shape (cycles, N)."""

    def __init__(self, data: Mapping[str, np.ndarray]):
        if not data:
            raise SimulationError("empty stimulus batch")
        shapes = {np.asarray(v).shape for v in data.values()}
        if len(shapes) != 1:
            raise SimulationError(f"inconsistent stimulus shapes: {shapes}")
        (shape,) = shapes
        if len(shape) != 2:
            raise SimulationError("stimulus arrays must be (cycles, N)")
        # Wide (>64-bit) input values keep Python-int object columns.
        self.data: Dict[str, np.ndarray] = {}
        for k, v in data.items():
            arr = np.asarray(v)
            if arr.dtype == object:
                self.data[k] = arr
            else:
                self.data[k] = np.ascontiguousarray(arr, dtype=np.uint64)
        self.cycles, self.n = shape

    def __len__(self) -> int:
        return self.cycles

    @property
    def names(self) -> List[str]:
        return list(self.data)

    def inputs_at(self, cycle: int) -> Dict[str, np.ndarray]:
        return {k: v[cycle] for k, v in self.data.items()}

    def inputs_at_range(self, cycle: int, lo: int, hi: int) -> Dict[str, np.ndarray]:
        """Inputs for one stimulus group (lanes [lo, hi))."""
        return {k: v[cycle, lo:hi] for k, v in self.data.items()}

    def lane(self, i: int) -> List[Dict[str, int]]:
        """One stimulus as per-cycle dicts (for the scalar engines)."""
        return [
            {k: int(v[c, i]) for k, v in self.data.items()}
            for c in range(self.cycles)
        ]

    def lanes(self, lo: int, hi: int) -> "StimulusBatch":
        return StimulusBatch({k: v[:, lo:hi] for k, v in self.data.items()})

    def to_texts(self) -> List[str]:
        """Encode each lane as a stimulus file text."""
        names = self.names
        out = []
        for i in range(self.n):
            rows = [
                [int(self.data[k][c, i]) for k in names]
                for c in range(self.cycles)
            ]
            out.append(encode_stimulus_text(names, rows))
        return out

    @classmethod
    def from_texts(cls, texts: Sequence[str]) -> "StimulusBatch":
        """Decode N stimulus files into a batch (they must agree on shape)."""
        if not texts:
            raise SimulationError("no stimulus texts")
        names0: Optional[List[str]] = None
        columns: List[np.ndarray] = []
        for t in texts:
            names, values = decode_stimulus_text(t)
            if names0 is None:
                names0 = names
            elif names != names0:
                raise SimulationError("stimulus files disagree on input names")
            columns.append(values)
        cyc = {c.shape[0] for c in columns}
        if len(cyc) != 1:
            raise SimulationError("stimulus files disagree on cycle count")
        stacked = np.stack(columns, axis=-1)  # (cycles, inputs, N)
        assert names0 is not None
        return cls({name: stacked[:, j, :] for j, name in enumerate(names0)})

    @classmethod
    def from_lane_dicts(cls, lanes: Sequence[Sequence[Mapping[str, int]]]) -> "StimulusBatch":
        """Build a batch from per-lane lists of per-cycle dicts."""
        if not lanes:
            raise SimulationError("no lanes")
        cycles = len(lanes[0])
        names = list(lanes[0][0].keys()) if cycles else []
        data = {
            k: np.zeros((cycles, len(lanes)), dtype=np.uint64) for k in names
        }
        for i, lane in enumerate(lanes):
            if len(lane) != cycles:
                raise SimulationError("lanes disagree on cycle count")
            for c, step in enumerate(lane):
                for k in names:
                    data[k][c, i] = step[k]
        return cls(data)


class TextStimulusBatch:
    """Batch stimulus kept as raw text, decoded lane by lane on demand.

    ``inputs_at_range`` performs the actual hex parsing for the requested
    lanes at the requested cycle — this is the CPU-intensive ``set_inputs``
    work that grows with the number of stimulus (Fig. 2).
    """

    def __init__(self, texts: Sequence[str]):
        if not texts:
            raise SimulationError("no stimulus texts")
        self.names: Optional[List[str]] = None
        self._lines: List[List[str]] = []
        for t in texts:
            lines = [
                ln for ln in t.splitlines()[2:] if ln.strip() and not ln.startswith("#")
            ]
            header = t.splitlines()
            names = header[1][len("# inputs:"):].split()
            if self.names is None:
                self.names = names
            elif names != self.names:
                raise SimulationError("stimulus files disagree on input names")
            self._lines.append(lines)
        counts = {len(l) for l in self._lines}
        if len(counts) != 1:
            raise SimulationError("stimulus files disagree on cycle count")
        self.cycles = counts.pop()
        self.n = len(self._lines)

    def __len__(self) -> int:
        return self.cycles

    def inputs_at(self, cycle: int) -> Dict[str, np.ndarray]:
        return self.inputs_at_range(cycle, 0, self.n)

    def lanes(self, lo: int, hi: int) -> "TextStimulusBatch":
        """Slice lanes [lo, hi) **without decoding**.

        The shard handoff path of :mod:`repro.cluster`: the coordinator
        carves a text-format batch into per-shard slices by moving raw
        line lists around; the hex parsing still happens lane-by-lane in
        the worker's ``inputs_at_range`` (the Fig. 2 ``set_inputs`` cost
        stays on the worker, not the coordinator).
        """
        if not (0 <= lo < hi <= self.n):
            raise SimulationError(
                f"invalid lane range [{lo}, {hi}) for {self.n} lanes"
            )
        out = TextStimulusBatch.__new__(TextStimulusBatch)
        out.names = list(self.names) if self.names is not None else None
        out._lines = self._lines[lo:hi]
        out.cycles = self.cycles
        out.n = hi - lo
        return out

    def inputs_at_range(self, cycle: int, lo: int, hi: int) -> Dict[str, np.ndarray]:
        assert self.names is not None
        cols = len(self.names)
        out = np.empty((cols, hi - lo), dtype=np.uint64)
        for j, lane in enumerate(range(lo, hi)):
            parts = self._lines[lane][cycle].split()
            for k in range(cols):
                out[k, j] = int(parts[k], 16)
        return {name: out[k] for k, name in enumerate(self.names)}

    def decode_all(self) -> StimulusBatch:
        data = {
            name: np.zeros((self.cycles, self.n), dtype=np.uint64)
            for name in (self.names or [])
        }
        for c in range(self.cycles):
            for name, arr in self.inputs_at(c).items():
                data[name][c] = arr
        return StimulusBatch(data)
