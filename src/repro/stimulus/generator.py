"""Stimulus generators.

The paper's benchmarks "generate multiple stimulus by randomly
concatenating stimulus offered by each design"; here each bundled design
ships a directed pattern library, and this module provides the generic
random and concatenating generators over a design's input ports.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.elaborate.symexec import LoweredDesign
from repro.stimulus.batch import StimulusBatch
from repro.utils import bitvec as bv
from repro.utils.errors import SimulationError

_CLOCK_RE = re.compile(r"(^|[._])(clk|clock|ck)\w*$", re.IGNORECASE)


def drivable_inputs(design: LoweredDesign) -> List[str]:
    """Input ports a stimulus drives (everything but clocks)."""
    return [
        s.name
        for s in design.inputs
        if not _CLOCK_RE.search(s.name) and s.name not in design.clocks()
    ]


def random_batch(
    design: LoweredDesign,
    n: int,
    cycles: int,
    seed: int = 0,
    overrides: Optional[Mapping[str, np.ndarray]] = None,
    reset_cycles: int = 1,
    reset_name_hint: str = "rst",
) -> StimulusBatch:
    """Uniform random stimulus over all drivable inputs.

    Any input whose name contains ``reset_name_hint`` is held high for the
    first ``reset_cycles`` cycles and low afterwards, so sequential designs
    start from a defined state.  ``overrides`` supplies explicit
    (cycles, N) arrays for chosen inputs.
    """
    rng = np.random.default_rng(seed)
    data: Dict[str, np.ndarray] = {}
    for name in drivable_inputs(design):
        width = design.signals[name].width
        m = bv.mask(width)
        if overrides and name in overrides:
            arr = np.asarray(overrides[name], dtype=np.uint64)
            if arr.shape != (cycles, n):
                raise SimulationError(
                    f"override for {name!r} has shape {arr.shape}, "
                    f"expected {(cycles, n)}"
                )
            data[name] = arr & np.uint64(m)
        elif reset_name_hint and reset_name_hint in name:
            arr = np.zeros((cycles, n), dtype=np.uint64)
            arr[: min(reset_cycles, cycles), :] = 1 if not name.endswith("_n") else 0
            if name.endswith("_n"):
                arr[min(reset_cycles, cycles):, :] = 1
            data[name] = arr
        elif width <= 64:
            # Sample in uint64 then mask: identical across platforms.
            raw = rng.integers(0, 1 << 32, size=(cycles, n), dtype=np.uint64)
            raw = (raw << np.uint64(32)) | rng.integers(
                0, 1 << 32, size=(cycles, n), dtype=np.uint64
            )
            data[name] = raw & np.uint64(m)
        else:
            # Wide input: compose Python ints from 64-bit draws so all
            # limbs are exercised (object-dtype column).
            limbs = (width + 63) // 64
            chunks = [
                rng.integers(0, 1 << 32, size=(cycles, n), dtype=np.uint64)
                for _ in range(2 * limbs)
            ]
            col = np.empty((cycles, n), dtype=object)
            for c in range(cycles):
                for lane in range(n):
                    v = 0
                    for ch in chunks:
                        v = (v << 32) | int(ch[c, lane])
                    col[c, lane] = v & m
            data[name] = col
    if not data:
        raise SimulationError("design has no drivable inputs")
    return StimulusBatch(data)


def directed_batch(
    design: LoweredDesign,
    patterns: Sequence[Mapping[str, Sequence[int]]],
    n: int,
    cycles: int,
    seed: int = 0,
) -> StimulusBatch:
    """Random concatenation of directed patterns (the paper's A.4 scheme).

    Each pattern is a dict input -> value sequence; per stimulus, patterns
    are drawn with replacement and concatenated until ``cycles`` cycles are
    filled.  Inputs missing from a pattern hold zero.
    """
    if not patterns:
        raise SimulationError("no patterns supplied")
    rng = np.random.default_rng(seed)
    names = drivable_inputs(design)
    data = {k: np.zeros((cycles, n), dtype=np.uint64) for k in names}
    for lane in range(n):
        c = 0
        while c < cycles:
            pat = patterns[int(rng.integers(len(patterns)))]
            plen = max(len(v) for v in pat.values())
            take = min(plen, cycles - c)
            for name in names:
                seq = pat.get(name)
                if seq is None:
                    continue
                m = np.uint64(bv.mask(design.signals[name].width))
                vals = np.asarray(seq[:take], dtype=np.uint64) & m
                data[name][c : c + len(vals), lane] = vals
            c += take
    return StimulusBatch(data)
