"""Stimulus generation, file format and batch packing.

A *stimulus* is a per-cycle sequence of input values for the DUT; a
*batch* is N of them simulated simultaneously (the paper's headline
workload).  The text file format mimics the per-stimulus files an
industrial flow reads, so the CPU-side ``set_inputs`` cost — the Fig. 2
bottleneck the pipeline scheduler overlaps — is real decode work.
"""

from repro.stimulus.format import (
    write_stimulus_file,
    read_stimulus_file,
    encode_stimulus_text,
    decode_stimulus_text,
)
from repro.stimulus.batch import StimulusBatch, TextStimulusBatch
from repro.stimulus.generator import random_batch, directed_batch

__all__ = [
    "write_stimulus_file",
    "read_stimulus_file",
    "encode_stimulus_text",
    "decode_stimulus_text",
    "StimulusBatch",
    "TextStimulusBatch",
    "random_batch",
    "directed_batch",
]
