"""Incremental GPU memory allocation (§3.1.2) and the batch memory layout.

Every design variable is assigned an *offset* into one of four fixed-width
pools — ``var8``, ``var16``, ``var32``, ``var64`` — choosing the smallest
element type that fits the variable's width (Fig. 7).  For N stimulus the
element of variable ``v`` for stimulus ``tid`` lives at::

    pool[offset(v) * N + tid]

so a vectorized operation over the batch axis touches one contiguous slice:
the Python/numpy analog of the paper's coalesced access (§3.1.3).

Allocation order inside each pool:

1. register *current* values (one contiguous block),
2. register *next* values (the same block shifted — commit is one slice copy
   per pool),
3. everything else (inputs, wires, outputs),
4. memory-write scratch (cond/addr/data per write port),
5. memories (``depth`` consecutive offsets each).

A layout built with ``pack_bits=True`` (the fused executor's layout)
additionally owns a fifth, *packed* pool ``P1``: every 1-bit design
signal moves out of ``var8`` into lane-packed uint64 words, one bit per
stimulus (see :mod:`repro.utils.packbits`).  A packed variable's offset
counts word *blocks*: with ``W = ceil(N / 64)`` words per batch, offset
``o`` occupies ``P1[o*W : (o+1)*W]``.  Memories and memory-write scratch
slots are never packed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.rtlir.graph import RtlGraph
from repro.utils import bitvec as bv
from repro.utils import packbits as pk
from repro.utils import widevec as wv
from repro.utils.errors import SimulationError

#: Pool index of the lane-packed 1-bit pool (pools 0..3 are var8..var64).
PACKED_POOL = 4


@dataclass
class VarSlot:
    """Placement of one design variable in the pools.

    Wide variables (width > 64) live in var64 as ``limbs`` consecutive
    offsets (little-endian limb order), mirroring Verilator's VL_WIDE
    word arrays over the batch layout.
    """

    name: str
    width: int
    pool: int  # 0..3 -> var8..var64
    offset: int
    is_state: bool = False
    next_offset: Optional[int] = None  # shadow slot for registers
    limbs: int = 1


@dataclass
class MemSlot:
    """Placement of one memory: ``depth`` consecutive offsets."""

    name: str
    width: int
    depth: int
    pool: int
    base: int


@dataclass
class ScratchSlot:
    """Scratch placement for one guarded memory write (cond/addr/data)."""

    node_id: int
    cond: VarSlot
    addr: VarSlot
    data: VarSlot


@dataclass
class MemoryLayout:
    """The complete offset assignment for a design."""

    slots: Dict[str, VarSlot] = field(default_factory=dict)
    mems: Dict[str, MemSlot] = field(default_factory=dict)
    scratch: Dict[int, ScratchSlot] = field(default_factory=dict)
    pool_sizes: List[int] = field(default_factory=lambda: [0, 0, 0, 0])
    # Lane-packed 1-bit pool (pool index PACKED_POOL): True when 1-bit
    # signals live bit-packed in uint64 words, packed_size counting word
    # *blocks* (one per 1-bit signal slot, W = ceil(N/64) words each).
    packed: bool = False
    packed_size: int = 0
    # Per pool: number of leading offsets that hold register current values
    # (the same count again holds their shadows immediately after).
    reg_counts: List[int] = field(default_factory=lambda: [0, 0, 0, 0, 0])
    # Per clock domain (clock, edge): list of (pool, start, count) ranges of
    # register *current* offsets; shadows sit at start + reg_counts[pool].
    reg_ranges: Dict[Tuple[str, str], List[Tuple[int, int, int]]] = field(
        default_factory=dict
    )

    def slot(self, name: str) -> VarSlot:
        try:
            return self.slots[name]
        except KeyError:
            raise SimulationError(f"no slot allocated for signal {name!r}")

    def mem(self, name: str) -> MemSlot:
        try:
            return self.mems[name]
        except KeyError:
            raise SimulationError(f"no slot allocated for memory {name!r}")

    @property
    def total_elements(self) -> int:
        return sum(self.pool_sizes)

    def footprint_bytes(self, n: int) -> int:
        """Device bytes needed for ``n`` stimulus."""
        itemsizes = (1, 2, 4, 8)
        base = sum(s * n * b for s, b in zip(self.pool_sizes, itemsizes))
        return base + self.packed_size * pk.words_for(n) * 8

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_graph(cls, graph: RtlGraph, pack_bits: bool = False) -> "MemoryLayout":
        """Assign every variable an offset.

        With ``pack_bits=True`` every 1-bit design signal (registers
        included) is placed in the lane-packed ``P1`` pool instead of
        ``var8``; memories and memory-write scratch stay unpacked.  This
        is the layout the fused-program executor runs against.
        """
        design = graph.design
        layout = cls(packed=pack_bits)
        cursors = [0, 0, 0, 0, 0]

        def pool_of(width: int) -> int:
            if pack_bits and width == 1:
                return PACKED_POOL
            return bv.pool_for_width(width)

        def alloc(pool: int, count: int = 1) -> int:
            off = cursors[pool]
            cursors[pool] += count
            return off

        # 1+2: registers and their shadows, pool by pool, grouped by clock
        # domain so an edge commits exactly its own registers with one
        # contiguous copy per (domain, pool) range.  Offsets [0, R) are
        # currents and [R, 2R) the matching shadows.
        domain_regs: Dict[Tuple[str, str], List[str]] = {}
        seen_regs = set()
        for blk in design.seq:
            key = (blk.clock, blk.edge)
            for upd in blk.updates:
                if upd.target in seen_regs:
                    continue
                seen_regs.add(upd.target)
                domain_regs.setdefault(key, []).append(upd.target)

        def limbs_of(width: int) -> int:
            return 1 if width <= 64 else wv.limbs_for(width)

        by_pool: Dict[int, List[Tuple[str, Tuple[str, str]]]] = {
            0: [], 1: [], 2: [], 3: [], PACKED_POOL: [],
        }
        for key, names in domain_regs.items():
            for name in names:
                pool = pool_of(design.signals[name].width)
                by_pool[pool].append((name, key))
        for pool, entries in by_pool.items():
            # Keep each domain contiguous within the pool.
            entries.sort(key=lambda e: (e[1][0], e[1][1]))
            # r counts OFFSETS (wide registers occupy several limbs).
            r = sum(
                limbs_of(design.signals[name].width) for name, _ in entries
            )
            layout.reg_counts[pool] = r
            i = 0
            off = 0
            n_entries = len(entries)
            while i < n_entries:
                key = entries[i][1]
                start = off
                while i < n_entries and entries[i][1] == key:
                    name = entries[i][0]
                    sig = design.signals[name]
                    limbs = limbs_of(sig.width)
                    layout.slots[name] = VarSlot(
                        name, sig.width, pool, off, is_state=True,
                        next_offset=r + off, limbs=limbs,
                    )
                    off += limbs
                    i += 1
                layout.reg_ranges.setdefault(key, []).append(
                    (pool, start, off - start)
                )
            cursors[pool] = 2 * r

        # 3: all remaining signals, incrementally (the paper's per-variable
        # incremental offset assignment).
        for name, sig in design.signals.items():
            if name in layout.slots:
                continue
            pool = pool_of(sig.width)
            limbs = limbs_of(sig.width)
            layout.slots[name] = VarSlot(
                name, sig.width, pool, alloc(pool, limbs), limbs=limbs
            )

        # 4: scratch for guarded memory writes.
        for node in graph.memw_nodes:
            mem = design.memories[node.target]
            cond = VarSlot(f"__memw{node.nid}.cond", 1, 0, alloc(0))
            # The address scratch is always a full uint64 so that wide or
            # out-of-range addresses stay out of range (commit drops them)
            # instead of wrapping back into the memory.
            addr = VarSlot(f"__memw{node.nid}.addr", 64, 3, alloc(3))
            dpool = bv.pool_for_width(mem.width)
            data = VarSlot(f"__memw{node.nid}.data", mem.width, dpool, alloc(dpool))
            layout.scratch[node.nid] = ScratchSlot(node.nid, cond, addr, data)

        # 5: memories (depth consecutive offsets each).
        for name, mem in design.memories.items():
            pool = bv.pool_for_width(mem.width)
            base = alloc(pool, mem.depth)
            layout.mems[name] = MemSlot(name, mem.width, mem.depth, pool, base)

        layout.pool_sizes = cursors[:4]
        layout.packed_size = cursors[PACKED_POOL]
        return layout


class DeviceArrays:
    """The four preallocated pools for one batch of N stimulus.

    This object stands in for the GPU global memory of the paper; the
    generated kernels index it exactly as Listing 3 does
    (``var8[N*offset + tid]``).

    With ``track_epochs=True`` every pool additionally carries one int64
    *write epoch* per offset (not per element — the batch axis shares a
    single epoch).  Host-side writes bump an offset's epoch only when the
    stored values actually change, and :meth:`commit_registers` compares
    shadow against current per offset before marking, so a quiescent
    design leaves the epochs untouched.  The conditional replay executor
    (:class:`repro.gpu.graphexec.ConditionalGraphExecutor`) reads the
    epochs to decide which macro tasks can be skipped.
    """

    def __init__(self, layout: MemoryLayout, n: int, track_epochs: bool = False):
        if n <= 0:
            raise SimulationError(f"batch size must be positive, got {n}")
        self.layout = layout
        self.n = n
        # Packed-pool geometry: W uint64 words per 1-bit signal block.
        self.words = pk.words_for(n)
        self.pools: List[np.ndarray] = [
            np.zeros(max(1, size) * n, dtype=dt)
            for size, dt in zip(layout.pool_sizes, bv.POOL_DTYPES)
        ]
        # Pool 4: lane-packed 1-bit signals.  Always present so
        # pools[PACKED_POOL] indexing is uniform, but exactly zero-length
        # when nothing is packed — tooling that reshapes pools per-lane
        # (e.g. survivor-identity checks) then skips it naturally.
        self.pools.append(
            np.zeros(layout.packed_size * self.words, dtype=np.uint64)
        )
        # LANE plays the role of the CUDA thread id within the batch.
        self.lane = np.arange(n, dtype=np.uint64)
        self.track_epochs = track_epochs
        # Optional host-write observer.  Contract: called with the
        # variable/memory name on every named mutation (write,
        # load_memory), and with None for bulk pool overwrites
        # (restore/rewind) meaning "assume everything changed".  Always
        # fires BEFORE the mutation.  Paths that mutate pools without a
        # name and without the hook must be provably cache-neutral: the
        # register/memory commit (writes only non-input state) and the
        # quarantine's lane masking of those commits, plus the simulator's
        # pre-packed stimulus fast path (statically clock-free columns;
        # see _prepack_stimulus).
        self.write_hook = None
        # Monotone write-epoch counter; offset epochs start at 0 and
        # executors start "never run" (-1), so everything is dirty once.
        self.epoch = 0
        self.write_epochs: Optional[List[np.ndarray]] = (
            [
                np.zeros(max(1, size), dtype=np.int64)
                for size in layout.pool_sizes + [layout.packed_size]
            ]
            if track_epochs
            else None
        )

    # -- write-epoch bookkeeping ---------------------------------------------

    def bump_epoch(self) -> int:
        """Advance and return the global write epoch."""
        self.epoch += 1
        return self.epoch

    def mark_written(
        self, pool: int, lo: int, hi: Optional[int] = None,
        epoch: Optional[int] = None,
    ) -> None:
        """Record that offsets ``[lo, hi)`` of ``pool`` were (re)written."""
        if not self.track_epochs:
            return
        e = self.bump_epoch() if epoch is None else epoch
        assert self.write_epochs is not None
        self.write_epochs[pool][lo : (lo + 1 if hi is None else hi)] = e

    def mark_all_written(self) -> None:
        """Dirty every offset (checkpoint restore, bulk loads)."""
        if not self.track_epochs:
            return
        e = self.bump_epoch()
        assert self.write_epochs is not None
        for ep in self.write_epochs:
            ep[:] = e

    def epoch_state(self) -> Optional[dict]:
        """Snapshot of the write-epoch bookkeeping (None when untracked).

        Rides inside simulator checkpoints so a resumed run restores the
        exact activity state instead of a conservatively-all-dirty one.
        """
        if not self.track_epochs:
            return None
        assert self.write_epochs is not None
        return {
            "epoch": self.epoch,
            "write_epochs": [ep.copy() for ep in self.write_epochs],
        }

    def restore_epochs(self, state: dict) -> None:
        """Restore epoch bookkeeping saved by :meth:`epoch_state`.

        Only valid right after :meth:`restore` of the matching pools, and
        the caller must also invalidate executor last-run epochs (see
        ``ConditionalGraphExecutor.reset_activity``): the restored epochs
        rewind time, so any cached "ran at epoch E" from beyond the
        checkpoint would wrongly mark tasks clean.
        """
        if not self.track_epochs:
            return
        assert self.write_epochs is not None
        saved = state["write_epochs"]
        if len(saved) != len(self.write_epochs) or any(
            s.shape != d.shape for s, d in zip(saved, self.write_epochs)
        ):
            raise SimulationError(
                "epoch state does not match this layout's pool shapes"
            )
        self.epoch = int(state["epoch"])
        for dst, src in zip(self.write_epochs, saved):
            np.copyto(dst, src)

    # -- scalar-signal access (host side; used by tests and set_inputs) -------

    def read(self, name: str) -> np.ndarray:
        """Batch values of a signal.

        Narrow signals return the live (N,) pool slice; wide signals
        return an object-dtype (N,) array of Python ints (a copy).
        Packed 1-bit signals return a freshly unpacked (N,) uint8 copy —
        never a live view (the truth lives bit-packed in pool ``P1``).
        """
        s = self.layout.slot(name)
        if s.pool == PACKED_POOL:
            w = self.words
            return pk.unpack_u8(
                self.pools[PACKED_POOL][s.offset * w : (s.offset + 1) * w], self.n
            )
        if s.limbs == 1:
            return self.pools[s.pool][s.offset * self.n : (s.offset + 1) * self.n]
        block = self.pools[3][
            s.offset * self.n : (s.offset + s.limbs) * self.n
        ].reshape(s.limbs, self.n)
        return np.array(wv.to_ints(block), dtype=object)

    def read_limbs(self, name: str) -> np.ndarray:
        """Wide signal as its raw (limbs, N) uint64 view."""
        s = self.layout.slot(name)
        return self.pools[s.pool][
            s.offset * self.n : (s.offset + s.limbs) * self.n
        ].reshape(s.limbs, self.n)

    def write(self, name: str, values) -> None:
        hook = self.write_hook
        if hook is not None:
            # Host-write observer (the simulator's clock-cache
            # invalidation); called with the variable name only.
            hook(name)
        s = self.layout.slot(name)
        if isinstance(values, pk.PackedWords) and s.pool != PACKED_POOL:
            # Pre-packed stimulus row aimed at an unpacked slot (e.g. a
            # layout change between pack and apply): fall back to lanes.
            values = pk.unpack_u64(values.words, self.n)
        if s.limbs > 1:
            m = bv.mask(s.width)
            if np.isscalar(values) or getattr(values, "ndim", 1) == 0:
                ints = [int(values) & m] * self.n
            else:
                if len(values) != self.n:
                    raise SimulationError(
                        f"expected {self.n} lane values for {name!r}, "
                        f"got {len(values)}"
                    )
                ints = [int(v) & m for v in values]
            block = self.pools[3][
                s.offset * self.n : (s.offset + s.limbs) * self.n
            ].reshape(s.limbs, self.n)
            new = wv.from_ints(ints, s.limbs)
            if self.track_epochs and np.array_equal(block, new):
                return  # unchanged write: keep the epochs quiet
            block[:] = new
            self.mark_written(3, s.offset, s.offset + s.limbs)
            return
        if s.pool == PACKED_POOL:
            w = self.words
            view = self.pools[PACKED_POOL][s.offset * w : (s.offset + 1) * w]
            if isinstance(values, pk.PackedWords):
                new = values.words
                if new.shape[0] != w:
                    raise SimulationError(
                        f"expected {w} packed words for {name!r}, "
                        f"got {new.shape[0]}"
                    )
                if self.track_epochs and np.array_equal(view, new):
                    return
                view[:] = new
                self.mark_written(PACKED_POOL, s.offset)
                return
            arr = np.asarray(values)
            if arr.ndim == 0:
                new = pk.fill(int(arr), self.n)
            else:
                if arr.shape[0] != self.n:
                    raise SimulationError(
                        f"expected {self.n} lane values for {name!r}, "
                        f"got {arr.shape[0]}"
                    )
                new = pk.pack(arr, self.n)
            if self.track_epochs and np.array_equal(view, new):
                return
            view[:] = new
            self.mark_written(PACKED_POOL, s.offset)
            return
        m = bv.mask(s.width)
        arr = np.asarray(values)
        view = self.pools[s.pool][s.offset * self.n : (s.offset + 1) * self.n]
        if arr.ndim == 0:
            val = int(arr) & m
            if self.track_epochs and bool((view == view.dtype.type(val)).all()):
                return
            view[:] = val
        else:
            if arr.shape[0] != self.n:
                raise SimulationError(
                    f"expected {self.n} lane values for {name!r}, got {arr.shape[0]}"
                )
            new = (np.asarray(arr, dtype=np.uint64) & np.uint64(m)).astype(
                view.dtype, copy=False
            )
            if self.track_epochs and np.array_equal(view, new):
                return
            view[:] = new
        self.mark_written(s.pool, s.offset)

    # -- memory access ----------------------------------------------------------

    def read_memory(self, name: str, lane: Optional[int] = None) -> np.ndarray:
        """Return memory contents, shape (depth, N) or (depth,) for one lane."""
        m = self.layout.mem(name)
        pool = self.pools[m.pool]
        block = pool[m.base * self.n : (m.base + m.depth) * self.n].reshape(
            m.depth, self.n
        )
        return block[:, lane] if lane is not None else block

    def load_memory(self, name: str, values, lane: Optional[int] = None) -> None:
        """Preload memory contents (e.g. a RISC-V program image).

        ``values`` may be 1-D (broadcast to all lanes) or 2-D (depth, N).
        """
        hook = self.write_hook
        if hook is not None:
            hook(name)
        m = self.layout.mem(name)
        pool = self.pools[m.pool]
        block = pool[m.base * self.n : (m.base + m.depth) * self.n].reshape(
            m.depth, self.n
        )
        arr = np.asarray(values, dtype=np.uint64) & np.uint64(bv.mask(m.width))
        if arr.ndim == 1:
            if arr.shape[0] > m.depth:
                raise SimulationError(
                    f"image of {arr.shape[0]} words exceeds depth {m.depth}"
                )
            if lane is not None:
                block[: arr.shape[0], lane] = arr
            else:
                block[: arr.shape[0], :] = arr[:, None]
        else:
            if arr.shape[0] > m.depth or arr.shape[1] != self.n:
                raise SimulationError(
                    f"bad memory image shape {arr.shape} for {name!r}"
                )
            block[: arr.shape[0], :] = arr
        self.mark_written(m.pool, m.base, m.base + m.depth)

    # -- register commit -----------------------------------------------------

    def commit_registers(
        self,
        domain: Optional[Tuple[str, str]] = None,
        active: Optional[np.ndarray] = None,
    ) -> None:
        """Copy register shadow (next) values over current values.

        With ``domain`` given, only that clock domain's registers commit —
        one contiguous slice copy per (domain, pool) range.  Without it,
        all registers commit (single-clock convenience).

        ``active`` is an optional boolean (N,) lane mask: False lanes are
        excluded from the copy, freezing their register state (the lane
        quarantine of :mod:`repro.resilience.faults`).
        """
        n = self.n
        if domain is None:
            for pool_idx, (pool, r) in enumerate(
                zip(self.pools, self.layout.reg_counts)
            ):
                if r:
                    self._commit_range(pool_idx, pool, 0, r, r, active)
            return
        for pool_idx, start, count in self.layout.reg_ranges.get(domain, ()):
            r = self.layout.reg_counts[pool_idx]
            self._commit_range(
                pool_idx, self.pools[pool_idx], start, count, r, active
            )

    def _commit_range(
        self, pool_idx: int, pool: np.ndarray, start: int, count: int, r: int,
        active: Optional[np.ndarray] = None,
    ) -> None:
        """Copy shadows ``[r+start, r+start+count)`` over currents, marking
        the offsets whose batch values actually changed."""
        if pool_idx == PACKED_POOL:
            self._commit_packed_range(pool, start, count, r, active)
            return
        n = self.n
        cur = pool[start * n : (start + count) * n]
        nxt = pool[(r + start) * n : (r + start + count) * n]
        if self.track_epochs:
            diff = cur.reshape(count, n) != nxt.reshape(count, n)
            if active is not None:
                # Quarantined lanes never commit, so their pending diffs
                # must not dirty the offsets (or tasks would re-run for
                # state that is frozen by design).
                diff = diff & active[None, :]
            changed = np.nonzero(diff.any(axis=1))[0]
            if changed.size:
                e = self.bump_epoch()
                assert self.write_epochs is not None
                self.write_epochs[pool_idx][start + changed] = e
            else:
                return  # nothing changed: skip the copy too
        if active is None:
            np.copyto(cur, nxt)
        else:
            np.copyto(
                cur.reshape(count, n), nxt.reshape(count, n),
                where=active[None, :],
            )

    def _commit_packed_range(
        self, pool: np.ndarray, start: int, count: int, r: int,
        active: Optional[np.ndarray] = None,
    ) -> None:
        """Packed-pool register commit: word-level diff + masked blend.

        One offset here is a block of ``self.words`` uint64 words; the
        quarantine mask packs once per commit and blends bitwise, so a
        frozen lane's current bit survives untouched.
        """
        w = self.words
        cur = pool[start * w : (start + count) * w].reshape(count, w)
        nxt = pool[(r + start) * w : (r + start + count) * w].reshape(count, w)
        mask_words = None
        if active is not None:
            mask_words = pk.pack_bool(np.asarray(active, dtype=bool), self.n)
        if self.track_epochs:
            diff = cur ^ nxt
            if mask_words is not None:
                diff = diff & mask_words[None, :]
            changed = np.nonzero(diff.any(axis=1))[0]
            if changed.size:
                e = self.bump_epoch()
                assert self.write_epochs is not None
                self.write_epochs[PACKED_POOL][start + changed] = e
            else:
                return  # nothing changed: skip the copy too
        if mask_words is None:
            np.copyto(cur, nxt)
        else:
            cur[:] = pk.blend(cur, nxt, mask_words[None, :])

    def uniform_value(self, name: str) -> Optional[int]:
        """Scalar value when every lane of ``name`` agrees, else None.

        The hot-path batch-uniform check used for clock levels; the
        packed pool answers it with a handful of word compares instead of
        materializing an (N,) slice.
        """
        s = self.layout.slot(name)
        if s.pool == PACKED_POOL:
            w = self.words
            return pk.uniform_level(
                self.pools[PACKED_POOL][s.offset * w : (s.offset + 1) * w], self.n
            )
        v = self.read(name)
        first = v[0]
        return int(first) if bool((v == first).all()) else None

    def snapshot(self) -> List[np.ndarray]:
        return [p.copy() for p in self.pools]

    def restore(self, snap: List[np.ndarray]) -> None:
        # Bulk invalidation BEFORE the copy: every named value (clock
        # levels included) is about to change, and observers must never
        # see post-restore pool state attributed to a stale cache entry.
        hook = self.write_hook
        if hook is not None:
            hook(None)
        for dst, src in zip(self.pools, snap):
            np.copyto(dst, src)
        self.mark_all_written()
