"""RTLflow core — the paper's primary contribution.

Kernel code transpilation (§3.1): AST annotation, incremental GPU memory
allocation, GPU memory index mapping, and batch-kernel code generation;
plus the end-to-end flow object and the batch simulator (§3.2 executors
live in :mod:`repro.gpu` and :mod:`repro.pipeline`).
"""

from repro.core.memory import MemoryLayout, VarSlot, MemSlot, DeviceArrays
from repro.core.codegen import KernelCodegen, CompiledModel, transpile
from repro.core.simulator import BatchSimulator
from repro.core.flow import RTLFlow

__all__ = [
    "MemoryLayout",
    "VarSlot",
    "MemSlot",
    "DeviceArrays",
    "KernelCodegen",
    "CompiledModel",
    "transpile",
    "BatchSimulator",
    "RTLFlow",
]
