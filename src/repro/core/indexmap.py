"""GPU memory index mapping (§3.1.3).

Maps every variable reference to its pool access string.  With offset
``o`` and batch size N, variable ``v`` for stimulus ``tid`` lives at
``pool[o*N + tid]``; the whole batch is the contiguous slice
``pool[o*N : (o+1)*N]`` — the coalesced-access property of Listing 3
carried over to the vectorized axis.

:class:`PackedIndexMapper` extends the mapping to the lane-packed 1-bit
pool ``P1`` of fused layouts: a packed variable's batch is the word
slice ``P1[o*W : (o+1)*W]`` with ``W = ceil(N/64)`` (the generated
programs bind ``W`` alongside ``N``), and a *unpacked* load of a packed
variable goes through :func:`repro.utils.packbits.unpack_u64`.
"""

from __future__ import annotations

from repro.core.memory import PACKED_POOL, MemoryLayout, VarSlot
from repro.utils.errors import SimulationError

POOL_VARS = ("P8", "P16", "P32", "P64", "P1")


class IndexMapper:
    """Renders pool accesses for the code generator."""

    def __init__(self, layout: MemoryLayout):
        self.layout = layout

    def pool_var(self, pool: int) -> str:
        return POOL_VARS[pool]

    def slice_of(self, slot: VarSlot, shadow: bool = False) -> str:
        """The writable slice for a variable (optionally its shadow slot)."""
        off = slot.next_offset if shadow else slot.offset
        if shadow and slot.next_offset is None:
            raise SimulationError(f"{slot.name!r} has no shadow slot")
        return f"{self.pool_var(slot.pool)}[{off}*N:{off + 1}*N]"

    def load(self, name: str) -> str:
        """A uint64 read of a variable's batch slice."""
        slot = self.layout.slot(name)
        return f"{self.slice_of(slot)}.astype(u64, copy=False)"

    def store_target(self, name: str, shadow: bool = False) -> str:
        return self.slice_of(self.layout.slot(name), shadow=shadow)

    def mem_read_call(self, name: str, idx_code: str) -> str:
        # Generated code consumes the read inside the enclosing
        # expression before any later store, so the zero-copy fast path
        # is safe here (see the aliasing contract on rt.mem_read).
        m = self.layout.mem(name)
        return (
            f"rt.mem_read({self.pool_var(m.pool)}, {m.base}, {m.depth}, "
            f"N, LANE, {idx_code}, copy=False)"
        )

    def comment_for(self, name: str) -> str:
        """Listing 3 style offset comment for one variable."""
        slot = self.layout.slot(name)
        return f"offset of {name} is {slot.offset} ({POOL_VARS[slot.pool]})"


class PackedIndexMapper(IndexMapper):
    """Index mapper for pack-bits layouts (fused-program codegen).

    Packed slots index by word blocks (stride ``W``), everything else
    falls through to the byte-per-lane mapping above.
    """

    def slice_of(self, slot: VarSlot, shadow: bool = False) -> str:
        if slot.pool != PACKED_POOL:
            return super().slice_of(slot, shadow=shadow)
        off = slot.next_offset if shadow else slot.offset
        if shadow and slot.next_offset is None:
            raise SimulationError(f"{slot.name!r} has no shadow slot")
        return f"P1[{off}*W:{off + 1}*W]"

    def load(self, name: str) -> str:
        slot = self.layout.slot(name)
        if slot.pool != PACKED_POOL:
            return super().load(name)
        return f"pk.unpack_u64({self.slice_of(slot)}, N)"

    def comment_for(self, name: str) -> str:
        slot = self.layout.slot(name)
        if slot.pool != PACKED_POOL:
            return super().comment_for(name)
        return f"offset of {name} is {slot.offset} (P1, word-packed)"
