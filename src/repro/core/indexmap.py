"""GPU memory index mapping (§3.1.3).

Maps every variable reference to its pool access string.  With offset
``o`` and batch size N, variable ``v`` for stimulus ``tid`` lives at
``pool[o*N + tid]``; the whole batch is the contiguous slice
``pool[o*N : (o+1)*N]`` — the coalesced-access property of Listing 3
carried over to the vectorized axis.
"""

from __future__ import annotations

from repro.core.memory import MemoryLayout, VarSlot
from repro.utils.errors import SimulationError

POOL_VARS = ("P8", "P16", "P32", "P64")


class IndexMapper:
    """Renders pool accesses for the code generator."""

    def __init__(self, layout: MemoryLayout):
        self.layout = layout

    def pool_var(self, pool: int) -> str:
        return POOL_VARS[pool]

    def slice_of(self, slot: VarSlot, shadow: bool = False) -> str:
        """The writable slice for a variable (optionally its shadow slot)."""
        off = slot.next_offset if shadow else slot.offset
        if shadow and slot.next_offset is None:
            raise SimulationError(f"{slot.name!r} has no shadow slot")
        return f"{self.pool_var(slot.pool)}[{off}*N:{off + 1}*N]"

    def load(self, name: str) -> str:
        """A uint64 read of a variable's batch slice."""
        slot = self.layout.slot(name)
        return f"{self.slice_of(slot)}.astype(u64, copy=False)"

    def store_target(self, name: str, shadow: bool = False) -> str:
        return self.slice_of(self.layout.slot(name), shadow=shadow)

    def mem_read_call(self, name: str, idx_code: str) -> str:
        m = self.layout.mem(name)
        return (
            f"rt.mem_read({self.pool_var(m.pool)}, {m.base}, {m.depth}, "
            f"N, LANE, {idx_code})"
        )

    def comment_for(self, name: str) -> str:
        """Listing 3 style offset comment for one variable."""
        slot = self.layout.slot(name)
        return f"offset of {name} is {slot.offset} ({POOL_VARS[slot.pool]})"
