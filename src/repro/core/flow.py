"""The end-to-end RTLflow pipeline (Fig. 3).

``RTLFlow`` chains every stage: preprocess/parse → elaborate (module
inlining, constant propagation) → lower → RTL graph → partition (default
weights or MCMC) → kernel codegen → compile, and hands out batch
simulators and stimulus generators.

Typical use::

    flow = RTLFlow.from_source(verilog_text, top="counter")
    sim = flow.simulator(n=1024)                    # CUDA-Graph executor
    stim = flow.random_stimulus(n=1024, cycles=10_000, seed=1)
    outs = sim.run(stim)
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.core.codegen import CompiledModel, KernelCodegen
from repro.core.simulator import BatchSimulator
from repro.elaborate.elaborator import elaborate
from repro.elaborate.symexec import LoweredDesign, lower
from repro.gpu.device import SimulatedDevice
from repro.partition.mcmc import Estimator, MCMCPartitioner, MCMCResult
from repro.partition.merge import DEFAULT_TARGET_WEIGHT, partition
from repro.partition.taskgraph import TaskGraph
from repro.partition.weights import WeightVector
from repro.rtlir.build import build_graph
from repro.rtlir.graph import RtlGraph
from repro.stimulus.batch import StimulusBatch
from repro.stimulus.generator import directed_batch, random_batch
from repro.verilog.parser import parse_source


class RTLFlow:
    """One design, transpiled once, simulated many ways."""

    def __init__(self, graph: RtlGraph):
        self.graph = graph
        self._models: Dict[tuple, CompiledModel] = {}
        self.mcmc_result: Optional[MCMCResult] = None
        self._mcmc_weights: Optional[WeightVector] = None
        # Filled by from_source when the embedded lint pass runs; None
        # when the flow was built directly from a graph or lint=False.
        self.lint_report = None

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_source(
        cls,
        text: str,
        top: str,
        defines: Optional[Mapping[str, str]] = None,
        optimize: bool = True,
        filename: str = "<input>",
        lint: bool = True,
    ) -> "RTLFlow":
        """Parse + elaborate ``text``.

        ``optimize`` enables the inherited Verilator-style passes (copy
        propagation, dead-code elimination, inverter pushing); disable it
        to keep every named signal observable via ``sim.get``.

        ``lint`` runs the static-analysis rule pack over the build
        artifacts: error-severity findings raise
        :class:`~repro.utils.errors.LintError` (a structurally bad design
        is never silently simulated); warnings collect on
        ``flow.lint_report``.  ``// repro lint_off RULE`` comments in the
        source waive findings (see :mod:`repro.lint`).
        """
        from repro.elaborate.optimize import optimize_design

        unit = parse_source(text, filename, defines=dict(defines) if defines else None)
        flat = elaborate(unit, top)
        lowered = lower(flat)
        optimized = optimize_design(lowered) if optimize else None
        graph = build_graph(optimized if optimized is not None else lowered)
        flow = cls(graph)
        if lint:
            from repro.lint import LintContext, lint_artifacts
            from repro.utils.errors import LintError

            report = lint_artifacts(
                LintContext(
                    top=top,
                    filename=filename,
                    unit=unit,
                    flat=flat,
                    lowered=lowered,
                    optimized=optimized,
                    graph=graph,
                ),
                text=text,
            )
            flow.lint_report = report
            if report.errors:
                first = report.errors[0]
                raise LintError(
                    f"lint: [{first.rule_id}] {first.message}"
                    + (
                        f" (+{len(report.errors) - 1} more error(s))"
                        if len(report.errors) > 1
                        else ""
                    ),
                    diagnostics=report.errors,
                    filename=first.loc.filename if first.loc else filename,
                    line=first.loc.line if first.loc else 0,
                    col=first.loc.col if first.loc else 0,
                )
        return flow

    @classmethod
    def from_files(
        cls,
        paths: Sequence[str],
        top: str,
        defines: Optional[Mapping[str, str]] = None,
        optimize: bool = True,
        lint: bool = True,
    ) -> "RTLFlow":
        chunks = []
        for p in paths:
            with open(p, "r", encoding="utf-8") as fh:
                chunks.append(fh.read())
        filename = paths[0] if len(paths) == 1 else "<input>"
        return cls.from_source(
            "\n".join(chunks), top, defines, optimize,
            filename=filename, lint=lint,
        )

    @property
    def design(self) -> LoweredDesign:
        return self.graph.design

    # -- transpilation -----------------------------------------------------------

    def taskgraph(
        self,
        weights: Optional[WeightVector] = None,
        target_weight: float = DEFAULT_TARGET_WEIGHT,
        strategy: str = "levelpack",
        use_mcmc: bool = False,
    ) -> TaskGraph:
        if use_mcmc:
            if weights is not None:
                raise ValueError("pass either weights or use_mcmc, not both")
            weights = self.mcmc_weights()
        return partition(
            self.graph, weights=weights, target_weight=target_weight, strategy=strategy
        )

    def compile(
        self,
        weights: Optional[WeightVector] = None,
        target_weight: float = DEFAULT_TARGET_WEIGHT,
        strategy: str = "levelpack",
        use_mcmc: bool = False,
    ) -> CompiledModel:
        """Transpile + compile (cached per configuration)."""
        key = (
            "mcmc" if use_mcmc else (id(weights) if weights is not None else "default"),
            target_weight,
            strategy,
        )
        if key not in self._models:
            tg = self.taskgraph(weights, target_weight, strategy, use_mcmc)
            self._models[key] = KernelCodegen(tg).compile()
        return self._models[key]

    # -- MCMC partition tuning ------------------------------------------------------

    def optimize_partition(
        self,
        n_stimulus: int = 256,
        cycles: int = 64,
        max_iter: int = 150,
        max_unimproved: int = 30,
        target_weight: float = DEFAULT_TARGET_WEIGHT,
        seed: int = 0,
    ) -> MCMCResult:
        """Run the GPU-aware MCMC sampler and remember the best weights."""
        est = Estimator(self.graph, n_stimulus=n_stimulus, cycles=cycles, seed=seed)
        opt = MCMCPartitioner(
            self.graph,
            estimator=est,
            target_weight=target_weight,
            seed=seed,
            max_iter=max_iter,
            max_unimproved=max_unimproved,
        )
        self.mcmc_result = opt.optimize()
        self._mcmc_weights = self.mcmc_result.weights
        return self.mcmc_result

    def mcmc_weights(self) -> WeightVector:
        if self._mcmc_weights is None:
            self.optimize_partition()
        assert self._mcmc_weights is not None
        return self._mcmc_weights

    # -- simulation --------------------------------------------------------------

    def simulator(
        self,
        n: int,
        executor: str = "graph",
        device: Optional[SimulatedDevice] = None,
        use_mcmc: bool = False,
        target_weight: float = DEFAULT_TARGET_WEIGHT,
        strategy: str = "levelpack",
        backend: Optional[str] = None,
    ) -> BatchSimulator:
        """Build a batch simulator for ``n`` stimulus.

        ``executor`` picks the replay engine: ``"graph"`` (unconditional
        CUDA-Graph-style replay, the default), ``"graph-fused"``,
        ``"graph-conditional"`` (activity-aware dirty-set replay that
        skips quiescent tasks — see docs/activity.md), or ``"stream"``.
        ``backend`` picks the lowering for the fused engine (see
        :mod:`repro.backends`; non-numpy backends require
        ``executor="graph-fused"``).
        """
        model = self.compile(
            target_weight=target_weight, strategy=strategy, use_mcmc=use_mcmc
        )
        return BatchSimulator(
            model, n, executor=executor, device=device, backend=backend
        )

    # -- stimulus ----------------------------------------------------------------

    def random_stimulus(self, n: int, cycles: int, seed: int = 0, **kw) -> StimulusBatch:
        return random_batch(self.design, n, cycles, seed=seed, **kw)

    def directed_stimulus(
        self, patterns, n: int, cycles: int, seed: int = 0
    ) -> StimulusBatch:
        return directed_batch(self.design, patterns, n, cycles, seed=seed)
