"""AST annotation (§3.1.1).

The paper's first transpilation stage walks the RTL AST and attaches
textual annotations to each node: the CUDA kernel qualifier for functions
(``__global__`` for macro tasks, ``__device__`` for node-level functions),
and the correctly parenthesized access syntax for recursive ARRSEL
subtrees (Fig. 5).

In this reproduction the executable code is Python, but the annotations
are still produced and embedded in the generated source as comments: they
document the kernel boundaries exactly as the CUDA output would, feed the
Table 1 code metrics, and are asserted on by tests as the record of the
annotation stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.partition.taskgraph import TaskGraph
from repro.verilog import ast_nodes as A


@dataclass
class NodeAnnotation:
    """Annotation attached to one RTL node."""

    qualifier: str  # '__global__' (task entry) or '__device__'
    signature: str  # rendered kernel-style signature
    arrsel_depth: int  # deepest recursive ARRSEL nesting in the node


def _arrsel_depth(e: A.Expr) -> int:
    """Depth of nested select subtrees (Fig. 5's recursive ARRSEL case)."""
    if isinstance(e, A.Index):
        return 1 + _arrsel_depth(e.index)
    if isinstance(e, A.Unary):
        return _arrsel_depth(e.operand)
    if isinstance(e, A.Binary):
        return max(_arrsel_depth(e.left), _arrsel_depth(e.right))
    if isinstance(e, A.Ternary):
        return max(
            _arrsel_depth(e.cond), _arrsel_depth(e.then), _arrsel_depth(e.other)
        )
    if isinstance(e, A.Concat):
        return max((_arrsel_depth(p) for p in e.parts), default=0)
    if isinstance(e, A.Repeat):
        return _arrsel_depth(e.value)
    if isinstance(e, (A.PartSelect, A.IndexedPartSelect)):
        return 1
    return 0


def annotate_tasks(taskgraph: TaskGraph) -> Dict[int, NodeAnnotation]:
    """Annotate every RTL node with its CUDA qualifier and signature.

    The first node of each task is the task's entry (``__global__``, since
    RTLflow launches macro tasks as kernels); the remaining nodes are
    ``__device__`` helpers called from it (§3.1.1).
    """
    out: Dict[int, NodeAnnotation] = {}
    g = taskgraph.graph
    for task in taskgraph.tasks:
        for i, nid in enumerate(task.nodes):
            node = g.nodes[nid]
            qualifier = "__global__" if i == 0 else "__device__"
            kind = node.kind.value
            sig = (
                f"{qualifier} void task_{task.tid}_{kind}_{nid}"
                "(var8, var16, var32, var64, N)"
            )
            depth = max((_arrsel_depth(e) for e in node.exprs()), default=0)
            out[nid] = NodeAnnotation(qualifier, sig, depth)
    return out


def render_header(taskgraph: TaskGraph) -> List[str]:
    """Human-readable annotation summary embedded in generated sources."""
    g = taskgraph.graph
    stats = taskgraph.stats()
    lines = [
        "# === RTLflow transpilation annotations ===",
        f"# design: {g.design.top}",
        f"# comb tasks: {stats['comb_tasks']}  seq tasks: {stats['seq_tasks']}"
        f"  levels: {stats['levels']}  max concurrency: {stats['max_width']}",
    ]
    return lines
