"""The multi-stimulus batch simulator (the runtime of Listing 1, batched).

Drives a :class:`~repro.core.codegen.CompiledModel` over a
:class:`~repro.core.memory.DeviceArrays` batch through one of the GPU
executors.  One instance simulates N stimulus simultaneously; the
stimulus axis is the vectorized numpy axis.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core import kernels as rt
from repro.core.codegen import CompiledModel
from repro.core.memory import DeviceArrays
from repro.gpu.device import SimulatedDevice
from repro.gpu.graphexec import CudaGraphExecutor
from repro.gpu.stream import StreamExecutor
from repro.utils import bitvec as bv
from repro.utils.errors import SimulationError
from repro.utils.timing import Stopwatch

ArrayLike = Union[int, np.ndarray, Sequence[int]]


def make_executor(
    model: CompiledModel,
    device: SimulatedDevice,
    kind: str = "graph",
    **kwargs,
):
    """Executor factory: 'graph' (default), 'graph-fused', or 'stream'."""
    if kind == "graph":
        return CudaGraphExecutor(model, device, fused=False)
    if kind in ("graph-fused", "fused"):
        return CudaGraphExecutor(model, device, fused=True)
    if kind == "stream":
        return StreamExecutor(model, device, **kwargs)
    raise SimulationError(f"unknown executor kind {kind!r}")


class BatchSimulator:
    """Simulates N stimulus of one design simultaneously."""

    def __init__(
        self,
        model: CompiledModel,
        n: int,
        executor: Union[str, object] = "graph",
        device: Optional[SimulatedDevice] = None,
        clock: Optional[str] = None,
    ):
        self.model = model
        self.n = n
        self.device = device or SimulatedDevice()
        self.executor = (
            make_executor(model, self.device, executor)
            if isinstance(executor, str)
            else executor
        )
        self.arrays = DeviceArrays(model.layout, n)
        design = model.design
        self._input_names = {s.name for s in design.inputs}
        self._widths = {s.name: s.width for s in design.signals.values()}
        clocks = design.clocks()
        self.clock = clock if clock is not None else (clocks[0] if clocks else None)
        self._prev_clock: Dict[str, int] = {c: 0 for c in clocks}
        self.stopwatch = Stopwatch()
        self.cycles_run = 0

    # -- state access -------------------------------------------------------------

    def set_input(self, name: str, values: ArrayLike) -> None:
        if name not in self._input_names:
            raise SimulationError(f"{name!r} is not an input of the design")
        self.arrays.write(name, values)

    def set_inputs(self, values: Mapping[str, ArrayLike]) -> None:
        for k, v in values.items():
            self.set_input(k, v)

    def get(self, name: str) -> np.ndarray:
        """Current batch values of a signal, shape (N,)."""
        return self.arrays.read(name)

    def load_memory(self, name: str, values, lane: Optional[int] = None) -> None:
        self.arrays.load_memory(name, values, lane=lane)

    def read_memory(self, name: str, lane: Optional[int] = None) -> np.ndarray:
        return self.arrays.read_memory(name, lane=lane)

    def set_clock(self, value: int) -> None:
        if self.clock is None:
            return
        self.arrays.write(self.clock, value & 1)

    # -- evaluation ---------------------------------------------------------------

    def _triggered_domains(self) -> List[Tuple[str, str]]:
        out: List[Tuple[str, str]] = []
        for clock, edge in self.model.clock_domains():
            prev = self._prev_clock.get(clock, 0)
            now = int(self.arrays.read(clock)[0]) & 1
            if edge == "posedge" and prev == 0 and now == 1:
                out.append((clock, edge))
            elif edge == "negedge" and prev == 1 and now == 0:
                out.append((clock, edge))
        return out

    def _commit(self, domain: Tuple[str, str]) -> None:
        arrays = self.arrays
        arrays.commit_registers(domain)
        n = arrays.n
        for b in self.model.mem_writes:
            if (b.clock, b.edge) != domain:
                continue
            pools = arrays.pools
            cond = pools[b.cond_pool][b.cond_off * n : (b.cond_off + 1) * n]
            addr = pools[b.addr_pool][b.addr_off * n : (b.addr_off + 1) * n]
            data = pools[b.data_pool][b.data_off * n : (b.data_off + 1) * n]
            rt.mem_commit(
                pools[b.mem_pool], b.mem_base, b.mem_depth, n, arrays.lane,
                cond, addr, data,
            )

    # -- checkpointing ------------------------------------------------------------

    def save_checkpoint(self) -> dict:
        """Snapshot the complete simulation state (all lanes).

        The checkpoint is a plain dict of numpy arrays plus clock phase —
        picklable, so long regressions can be resumed across processes.
        """
        return {
            "pools": self.arrays.snapshot(),
            "prev_clock": dict(self._prev_clock),
            "cycles_run": self.cycles_run,
            "n": self.n,
        }

    def restore_checkpoint(self, ckpt: dict) -> None:
        """Restore a checkpoint taken by :meth:`save_checkpoint`."""
        if ckpt.get("n") != self.n:
            raise SimulationError(
                f"checkpoint is for batch size {ckpt.get('n')}, not {self.n}"
            )
        self.arrays.restore(ckpt["pools"])
        self._prev_clock = dict(ckpt["prev_clock"])
        self.cycles_run = ckpt["cycles_run"]

    def evaluate(self) -> None:
        """One full-cycle evaluation (edge updates, then comb settle)."""
        triggered = self._triggered_domains()
        # Non-blocking semantics across domains: when several clocks edge
        # in the same evaluation, every domain's next-state computes from
        # the pre-edge state before any domain commits.
        for domain in triggered:
            self.executor.run_seq(self.arrays, *domain)
        for domain in triggered:
            self._commit(domain)
        self.executor.run_comb(self.arrays)
        for clock in self._prev_clock:
            self._prev_clock[clock] = int(self.arrays.read(clock)[0]) & 1

    def cycle(self, inputs: Optional[Mapping[str, ArrayLike]] = None) -> None:
        """Listing 1's loop body: set inputs, toggle the clock twice."""
        if inputs:
            with self.stopwatch.span("set_inputs"):
                self.set_inputs(inputs)
        with self.stopwatch.span("evaluate"):
            self.set_clock(0)
            self.evaluate()
            self.set_clock(1)
            self.evaluate()
        self.cycles_run += 1

    def run(
        self,
        stimulus: "object" = None,
        cycles: Optional[int] = None,
        watch: Optional[Iterable[str]] = None,
        trace_every: int = 0,
        stop: Optional[str] = None,
        stop_mode: str = "all",
        stop_check_every: int = 16,
    ) -> Dict[str, np.ndarray]:
        """Run a batch stimulus.

        ``stimulus`` is a :class:`repro.stimulus.batch.StimulusBatch` (or
        None to hold inputs constant for ``cycles``).  Returns final
        values of the watched signals (default: design outputs); with
        ``trace_every > 0``, per-sample traces of shape (samples, N).

        ``stop`` names a 1-bit signal that ends the run early — Listing
        1's ``while (!sim.stop ...)``.  ``stop_mode='all'`` stops once
        every lane asserts it (e.g. all CPUs halted), ``'any'`` on the
        first lane.  The signal is polled every ``stop_check_every``
        cycles to keep the host/device synchronization cost negligible
        (the batch analog of checking a device-side flag).
        """
        names = list(watch) if watch is not None else [
            s.name for s in self.model.design.outputs
        ]
        if stop is not None and stop_mode not in ("all", "any"):
            raise SimulationError(f"stop_mode must be 'all' or 'any', not {stop_mode!r}")
        total = cycles if cycles is not None else (
            len(stimulus) if stimulus is not None else 0
        )
        traces: Dict[str, List[np.ndarray]] = {n: [] for n in names}
        for c in range(total):
            if stimulus is not None and c < len(stimulus):
                with self.stopwatch.span("set_inputs"):
                    for name, arr in stimulus.inputs_at(c).items():
                        self.set_input(name, arr)
            with self.stopwatch.span("evaluate"):
                self.set_clock(0)
                self.evaluate()
                self.set_clock(1)
                self.evaluate()
            self.cycles_run += 1
            if trace_every and (c % trace_every == trace_every - 1):
                for n in names:
                    traces[n].append(self.get(n).copy())
            if stop is not None and (c % stop_check_every == stop_check_every - 1):
                flags = self.get(stop)
                done = flags.all() if stop_mode == "all" else flags.any()
                if done:
                    break
        if trace_every:
            return {n: np.stack(v) if v else np.empty((0, self.n)) for n, v in traces.items()}
        return {n: self.get(n).copy() for n in names}
